//! Property tests for the hand-rolled JSON codec: the parser must
//! never panic, whatever bytes arrive (it reads untrusted wire frames
//! in `randsync-svc`), and `parse ∘ render` must be the identity on
//! every value the codec can represent.

use proptest::prelude::*;
use randsync_obs::{parse_json, Json};

/// Characters deliberately chosen to stress the escape paths: quotes,
/// backslashes, control characters, multi-byte BMP characters, and an
/// astral-plane character (surrogate-pair territory in `\u` escapes).
const PALETTE: &[char] =
    &['a', 'Z', '0', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1b}', 'é', 'Ω', '€', '😀'];

fn string_from(mut w: u64) -> String {
    let len = (w % 9) as usize;
    let mut s = String::new();
    for _ in 0..len {
        w = w.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        s.push(PALETTE[(w >> 33) as usize % PALETTE.len()]);
    }
    s
}

/// Deterministically decode a word stream into one JSON value, with
/// nesting while the depth budget lasts. Exhausted streams fall back
/// to word 0, so every stream terminates.
fn build_json(words: &[u64], pos: &mut usize, depth: usize) -> Json {
    fn next(words: &[u64], pos: &mut usize) -> u64 {
        let w = words.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        w
    }
    let w = next(words, pos);
    match w % if depth == 0 { 5 } else { 7 } {
        0 => Json::Null,
        1 => Json::Bool(w & 8 != 0),
        2 => {
            let (hi, lo) = (next(words, pos), next(words, pos));
            Json::Int((i128::from(hi as i64) << 64) | i128::from(lo))
        }
        3 => {
            let f = f64::from_bits(next(words, pos));
            // The codec renders non-finite floats as null (JSON has no
            // NaN/Inf), so the identity property needs finite ones.
            Json::Float(if f.is_finite() { f } else { (w as f64) / 256.0 })
        }
        4 => Json::Str(string_from(next(words, pos))),
        5 => {
            let n = (w / 7) as usize % 4;
            Json::Arr((0..n).map(|_| build_json(words, pos, depth - 1)).collect())
        }
        _ => {
            let n = (w / 7) as usize % 4;
            Json::Obj(
                (0..n)
                    .map(|_| (string_from(next(words, pos)), build_json(words, pos, depth - 1)))
                    .collect(),
            )
        }
    }
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // Ok or Err both fine; reaching the assertion means no panic.
        let _ = parse_json(&String::from_utf8_lossy(&bytes));
        prop_assert!(true);
    }

    #[test]
    fn parser_never_panics_on_corrupted_documents(
        words in prop::collection::vec(any::<u64>(), 1..24),
        flip_at in any::<usize>(),
        flip_bits in any::<u8>(),
    ) {
        // Valid document, one mangled byte: exercises the deep parser
        // paths (strings, numbers, nesting) that random bytes rarely
        // reach past the first token.
        let doc = build_json(&words, &mut 0, 3).render();
        let mut bytes = doc.into_bytes();
        let at = flip_at % bytes.len();
        bytes[at] ^= flip_bits.max(1); // never a no-op flip
        let _ = parse_json(&String::from_utf8_lossy(&bytes));
        prop_assert!(true);
    }

    #[test]
    fn parse_render_is_the_identity(words in prop::collection::vec(any::<u64>(), 1..32)) {
        let value = build_json(&words, &mut 0, 3);
        let rendered = value.render();
        let reparsed = parse_json(&rendered);
        prop_assert_eq!(reparsed.as_ref(), Ok(&value), "rendered: {}", rendered);
        // And rendering is stable across the round trip.
        prop_assert_eq!(reparsed.unwrap().render(), rendered);
    }
}

#[test]
fn non_finite_floats_render_as_null() {
    for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(Json::Float(f).render(), "null");
    }
}
