//! A minimal, dependency-free JSON value, writer, and parser.
//!
//! The workspace builds offline, so `serde_json` is unavailable; every
//! observability artifact (metrics snapshots, trace lines, flight
//! recorder files) is encoded and decoded by this module instead. The
//! subset is deliberately small but *closed*: everything [`Json::render`]
//! emits, [`parse`] reads back to an equal value, with integers kept
//! exact ([`Json::Int`] is `i128`, wide enough for any `u64` seed) and
//! floats reserved for genuinely fractional measurements.

use core::fmt;

/// A parsed or to-be-rendered JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction, no exponent), kept exact.
    Int(i128),
    /// A fractional or exponent-bearing number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The value under `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a `usize`, if it is a non-negative integer in range.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Int(i) => usize::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value's array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let text = format!("{f}");
                    out.push_str(&text);
                    // `{}` on a whole f64 prints no dot; keep a marker
                    // so the round trip preserves the variant.
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed: a message and the byte offset it refers to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON value from `input` (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// [`JsonError`] on malformed input.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else { return Err(self.err("unterminated string")) };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: combine a high surrogate
                            // with the following \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; copy it through.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if fractional {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>().map(Json::Int).map_err(|_| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(u64::MAX as i128),
            Json::Float(1.5),
            Json::Str("he\"ll\\o\nworld".to_string()),
            Json::Str("π ≠ ⊥".to_string()),
        ] {
            assert_eq!(parse(&v.render()).unwrap(), v, "{}", v.render());
        }
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::Obj(vec![
            ("a".to_string(), Json::Arr(vec![Json::Int(1), Json::Null, Json::Bool(false)])),
            ("nested".to_string(), Json::Obj(vec![("x".to_string(), Json::Float(0.25))])),
            ("empty".to_string(), Json::Arr(Vec::new())),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        let seed = u64::MAX - 3;
        let v = Json::Obj(vec![("seed".to_string(), Json::Int(seed as i128))]);
        let back = parse(&v.render()).unwrap();
        assert_eq!(back.get("seed").and_then(Json::as_u64), Some(seed));
    }

    #[test]
    fn whole_floats_stay_floats() {
        let v = Json::Float(3.0);
        let rendered = v.render();
        assert!(rendered.contains('.'), "{rendered}");
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n": 3, "name": "cas", "xs": [1, 2]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("cas"));
        assert_eq!(v.get("xs").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_inputs_are_rejected_with_position() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\"", "nulll"] {
            let err = parse(bad).expect_err(bad);
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap(), Json::Str("Aé".to_string()));
        // A surrogate pair (😀).
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".to_string()));
    }
}
