//! Structured tracing: timestamped events and spans fanned out to a
//! pluggable [`TraceSink`].
//!
//! Emission is guarded the same way as metrics: [`tracing_active`] is
//! one relaxed atomic load, so call sites can skip field construction
//! entirely when no sink is installed. Timestamps are microseconds
//! since a process-wide monotonic base (`Instant`), never wall-clock,
//! so traces are immune to clock steps and cheap to subtract.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime};

use crate::json::{write_escaped, Json};

/// One typed field value attached to an event.
#[derive(Clone, PartialEq, Debug)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Field {
    fn to_json(&self) -> Json {
        match self {
            Field::U64(v) => Json::Int(i128::from(*v)),
            Field::I64(v) => Json::Int(i128::from(*v)),
            Field::F64(v) => Json::Float(*v),
            Field::Str(v) => Json::Str(v.clone()),
            Field::Bool(v) => Json::Bool(*v),
        }
    }
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I64(v)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

/// Microseconds elapsed since the process-wide monotonic base.
pub fn now_micros() -> u64 {
    static BASE: OnceLock<Instant> = OnceLock::new();
    let base = *BASE.get_or_init(Instant::now);
    Instant::now().duration_since(base).as_micros() as u64
}

/// Wall-clock microseconds since the Unix epoch — *informational
/// only*. Durations and orderings must come from the monotonic
/// [`now_micros`] / `Instant`; this exists so humans can line traces
/// up with external logs despite NTP steps.
pub fn wall_micros() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// SplitMix64 finalizer: the id generator's mixing function.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fresh nonzero trace/span id: SplitMix64 over the process id and
/// a process-global counter. No wall-clock input, so id generation is
/// immune to clock steps; distinct processes diverge through the pid.
pub fn fresh_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(splitmix64(u64::from(std::process::id())) ^ n);
    if id == 0 {
        1
    } else {
        id
    }
}

/// The causal identity a span-producing computation carries: which
/// trace it belongs to, which span is currently open, and that span's
/// parent. Propagated across threads and processes explicitly (wire
/// frames carry `trace`/`span`); within a thread it lives in a
/// thread-local that [`emit`] consults.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceContext {
    /// Identifies the whole causal tree; constant across processes.
    pub trace_id: u64,
    /// The currently open span (0 = none yet: the next span opened
    /// under this context becomes a root of the tree).
    pub span_id: u64,
    /// The open span's parent (0 = root / unknown).
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Start a brand-new trace. No span is open yet — the first span
    /// opened under this context becomes a root of the causal tree.
    pub fn root() -> Self {
        Self { trace_id: fresh_id(), span_id: 0, parent_span_id: 0 }
    }

    /// A child context: same trace, fresh span id, parented on the
    /// current span.
    pub fn child(&self) -> Self {
        Self { trace_id: self.trace_id, span_id: fresh_id(), parent_span_id: self.span_id }
    }

    /// Rehydrate a context received over the wire: the caller's trace
    /// id and open span id. The parent is unknown on this side (it
    /// lives in the caller's process), hence 0.
    pub fn remote(trace_id: u64, span_id: u64) -> Self {
        Self { trace_id, span_id, parent_span_id: 0 }
    }
}

thread_local! {
    static CURRENT_CONTEXT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// The calling thread's current trace context, if any.
pub fn current_context() -> Option<TraceContext> {
    CURRENT_CONTEXT.with(Cell::get)
}

/// Install `ctx` as the calling thread's current context; the guard
/// restores the previous context when dropped (drop it on the same
/// thread).
#[must_use = "dropping the guard immediately restores the previous context"]
pub fn push_context(ctx: TraceContext) -> ContextGuard {
    let prev = CURRENT_CONTEXT.with(|c| c.replace(Some(ctx)));
    ContextGuard { prev }
}

/// RAII restorer returned by [`push_context`].
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT_CONTEXT.with(|c| c.set(self.prev));
    }
}

/// Receives trace events. Implementations must tolerate concurrent
/// calls from many threads.
pub trait TraceSink: Send + Sync {
    /// Handle one event: a name, a timestamp from [`now_micros`], and
    /// typed fields.
    fn event(&self, name: &str, timestamp_micros: u64, fields: &[(&str, Field)]);

    /// Flush any buffering (default: nothing).
    fn flush(&self) {}
}

static TRACING_ACTIVE: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static Mutex<Option<Arc<dyn TraceSink>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn TraceSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Whether a sink is installed (one relaxed load — guard on this
/// before building fields).
#[inline]
pub fn tracing_active() -> bool {
    TRACING_ACTIVE.load(Ordering::Relaxed)
}

/// Install `sink` as the process-wide trace sink, replacing any
/// previous one (the previous sink is flushed first).
pub fn install_trace_sink(sink: Arc<dyn TraceSink>) {
    let mut slot = sink_slot().lock().expect("trace sink slot poisoned");
    if let Some(old) = slot.take() {
        old.flush();
    }
    *slot = Some(sink);
    TRACING_ACTIVE.store(true, Ordering::Relaxed);
}

/// Flush the installed sink, if any, without removing it. For
/// long-lived processes whose sink buffers to a file: the global slot
/// is never dropped, so nothing flushes it implicitly at exit.
pub fn flush_trace_sink() {
    let slot = sink_slot().lock().expect("trace sink slot poisoned");
    if let Some(sink) = &*slot {
        sink.flush();
    }
}

/// Remove and flush the installed sink, if any, and return it.
pub fn clear_trace_sink() -> Option<Arc<dyn TraceSink>> {
    let mut slot = sink_slot().lock().expect("trace sink slot poisoned");
    TRACING_ACTIVE.store(false, Ordering::Relaxed);
    let old = slot.take();
    if let Some(sink) = &old {
        sink.flush();
    }
    old
}

/// Emit one event to the installed sink (no-op when none is
/// installed). When the calling thread has a current [`TraceContext`],
/// `trace`/`span` (and `parent`, when known) id fields are appended so
/// sinks and the span-tree merger can stitch events causally.
pub fn emit(name: &str, fields: &[(&str, Field)]) {
    if !tracing_active() {
        return;
    }
    let sink = sink_slot().lock().expect("trace sink slot poisoned").clone();
    let Some(sink) = sink else { return };
    match current_context() {
        Some(ctx) => {
            let mut all: Vec<(&str, Field)> = Vec::with_capacity(fields.len() + 3);
            all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
            all.push(("trace", Field::U64(ctx.trace_id)));
            if ctx.span_id != 0 {
                all.push(("span", Field::U64(ctx.span_id)));
            }
            if ctx.parent_span_id != 0 {
                all.push(("parent", Field::U64(ctx.parent_span_id)));
            }
            sink.event(name, now_micros(), &all);
        }
        None => sink.event(name, now_micros(), fields),
    }
}

/// RAII span: emits `<name>.start` on creation and `<name>.end` (with
/// an `elapsed_micros` field appended) on drop.
///
/// If the creating thread has a current [`TraceContext`], the span
/// derives a child context (fresh span id, parented on the enclosing
/// span), installs it for its lifetime, and restores the previous
/// context on drop — so nested spans and plain [`emit`]s stitch into a
/// tree without any explicit threading of ids. Create and drop a span
/// on the same thread.
///
/// Timestamps (`ts`) and `elapsed_micros` come from the monotonic
/// clock; the `.start` event additionally carries an informational
/// [`wall_micros`] `wall` field for lining up with external logs.
#[derive(Debug)]
pub struct Span {
    name: String,
    started: Instant,
    fields: Vec<(String, Field)>,
    prev_ctx: Option<TraceContext>,
    installed_ctx: bool,
}

/// Open a span. Cheap when tracing is inactive (fields are still
/// cloned; guard on [`tracing_active`] in hot loops).
pub fn span(name: &str, fields: &[(&str, Field)]) -> Span {
    let prev_ctx = current_context();
    let installed_ctx = prev_ctx.is_some();
    if let Some(parent) = prev_ctx {
        CURRENT_CONTEXT.with(|c| c.set(Some(parent.child())));
    }
    let span = Span {
        name: name.to_string(),
        started: Instant::now(),
        fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        prev_ctx,
        installed_ctx,
    };
    if tracing_active() {
        let mut start_fields: Vec<(&str, Field)> = Vec::with_capacity(fields.len() + 1);
        start_fields.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        start_fields.push(("wall", Field::U64(wall_micros())));
        emit(&format!("{name}.start"), &start_fields);
    }
    span
}

impl Drop for Span {
    fn drop(&mut self) {
        if tracing_active() {
            let elapsed = self.started.elapsed().as_micros() as u64;
            let mut fields: Vec<(&str, Field)> =
                self.fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
            fields.push(("elapsed_micros", Field::U64(elapsed)));
            emit(&format!("{}.end", self.name), &fields);
        }
        if self.installed_ctx {
            CURRENT_CONTEXT.with(|c| c.set(self.prev_ctx));
        }
    }
}

/// Render one event as a single-line JSON object:
/// `{"ts":<micros>,"event":<name>,<field>...}`.
pub fn render_event_json(name: &str, timestamp_micros: u64, fields: &[(&str, Field)]) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"ts\":");
    let _ = fmt::Write::write_fmt(&mut out, format_args!("{timestamp_micros}"));
    out.push_str(",\"event\":");
    write_escaped(name, &mut out);
    for (key, value) in fields {
        out.push(',');
        write_escaped(key, &mut out);
        out.push(':');
        out.push_str(&value.to_json().render());
    }
    out.push('}');
    out
}

/// A sink that appends one JSON object per line to a file.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) `path` and return a sink writing to it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self { writer: Mutex::new(BufWriter::new(File::create(path)?)) })
    }
}

impl TraceSink for JsonlSink {
    fn event(&self, name: &str, timestamp_micros: u64, fields: &[(&str, Field)]) {
        let line = render_event_json(name, timestamp_micros, fields);
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

/// A bounded in-memory sink keeping the most recent `capacity` rendered
/// event lines — always-on capture with O(capacity) memory.
#[derive(Debug)]
pub struct RingSink {
    lines: Mutex<VecDeque<String>>,
    capacity: usize,
}

impl RingSink {
    /// A ring buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self { lines: Mutex::new(VecDeque::new()), capacity: capacity.max(1) }
    }

    /// The buffered event lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("ring sink poisoned").iter().cloned().collect()
    }
}

impl TraceSink for RingSink {
    fn event(&self, name: &str, timestamp_micros: u64, fields: &[(&str, Field)]) {
        let line = render_event_json(name, timestamp_micros, fields);
        let mut lines = self.lines.lock().expect("ring sink poisoned");
        if lines.len() == self.capacity {
            lines.pop_front();
        }
        lines.push_back(line);
    }
}

/// Replicates every event to several sinks. The global sink slot holds
/// exactly one sink, so a process that needs both (say) the svc
/// progress router *and* a JSONL file installs a fanout over them.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl fmt::Debug for FanoutSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FanoutSink").field("sinks", &self.sinks.len()).finish()
    }
}

impl FanoutSink {
    /// A sink fanning out to `sinks` in order.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Self { sinks }
    }
}

impl TraceSink for FanoutSink {
    fn event(&self, name: &str, timestamp_micros: u64, fields: &[(&str, Field)]) {
        for sink in &self.sinks {
            sink.event(name, timestamp_micros, fields);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink slot is process-global; tests that install one are
    // serialized behind this lock so they do not observe each other.
    fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn event_renders_as_one_json_line() {
        let line = render_event_json(
            "explore.level",
            42,
            &[
                ("depth", Field::U64(3)),
                ("frontier", Field::U64(128)),
                ("note", Field::Str("a\"b".to_string())),
                ("done", Field::Bool(false)),
            ],
        );
        assert!(!line.contains('\n'));
        let v = crate::json::parse(&line).expect("event line parses");
        assert_eq!(v.get("ts").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("event").and_then(Json::as_str), Some("explore.level"));
        assert_eq!(v.get("depth").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("note").and_then(Json::as_str), Some("a\"b"));
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let _g = test_guard();
        let ring = Arc::new(RingSink::new(2));
        install_trace_sink(ring.clone());
        assert!(tracing_active());
        emit("one", &[]);
        emit("two", &[]);
        emit("three", &[("k", Field::U64(9))]);
        clear_trace_sink();
        assert!(!tracing_active());
        let lines = ring.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"two\""), "{lines:?}");
        assert!(lines[1].contains("\"three\""), "{lines:?}");
    }

    #[test]
    fn emit_without_sink_is_a_noop() {
        let _g = test_guard();
        clear_trace_sink();
        emit("ignored", &[("x", Field::U64(1))]);
    }

    #[test]
    fn spans_emit_start_and_end_with_elapsed() {
        let _g = test_guard();
        let ring = Arc::new(RingSink::new(8));
        install_trace_sink(ring.clone());
        {
            let _span = span("phase", &[("depth", Field::U64(1))]);
            emit("inner", &[]);
        }
        clear_trace_sink();
        let lines = ring.lines();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains("phase.start"));
        assert!(lines[1].contains("\"inner\""));
        assert!(lines[2].contains("phase.end"));
        assert!(lines[2].contains("elapsed_micros"));
        let end = crate::json::parse(&lines[2]).unwrap();
        assert_eq!(end.get("depth").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let _g = test_guard();
        let path = std::env::temp_dir().join("randsync_obs_trace_test.jsonl");
        let sink = Arc::new(JsonlSink::create(&path).expect("create sink"));
        install_trace_sink(sink);
        emit("a", &[("n", Field::U64(1))]);
        emit("b", &[("f", Field::F64(0.5))]);
        clear_trace_sink();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).expect("line parses");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }

    #[test]
    fn fresh_ids_are_nonzero_and_distinct() {
        let a = fresh_id();
        let b = fresh_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn context_guard_nests_and_restores() {
        assert_eq!(current_context(), None);
        let root = TraceContext::root();
        assert_eq!(root.span_id, 0, "no span open yet on a fresh trace");
        {
            let _g = push_context(root);
            assert_eq!(current_context(), Some(root));
            let child = root.child();
            assert_eq!(child.trace_id, root.trace_id);
            assert_eq!(child.parent_span_id, 0, "first span under a root context is a root");
            assert_ne!(child.span_id, 0);
            {
                let _g2 = push_context(child);
                assert_eq!(current_context(), Some(child));
            }
            assert_eq!(current_context(), Some(root));
        }
        assert_eq!(current_context(), None);
    }

    #[test]
    fn spans_inside_a_context_stitch_into_a_tree() {
        let _g = test_guard();
        let ring = Arc::new(RingSink::new(16));
        install_trace_sink(ring.clone());
        let root = TraceContext::root();
        {
            let _ctx = push_context(root);
            let _outer = span("outer", &[]);
            let outer_ctx = current_context().expect("outer span installed a context");
            assert_eq!(outer_ctx.trace_id, root.trace_id);
            assert_eq!(outer_ctx.parent_span_id, 0, "outer is a tree root");
            {
                let _inner = span("inner", &[]);
                emit("leaf", &[]);
            }
        }
        clear_trace_sink();
        let lines = ring.lines();
        assert_eq!(lines.len(), 5, "{lines:?}");
        let parsed: Vec<Json> =
            lines.iter().map(|l| crate::json::parse(l).expect("parses")).collect();
        // Every event belongs to the same trace.
        for v in &parsed {
            assert_eq!(v.get("trace").and_then(Json::as_u64), Some(root.trace_id));
        }
        let outer_span = parsed[0].get("span").and_then(Json::as_u64).expect("outer span id");
        assert!(parsed[0].get("parent").is_none(), "outer is a tree root");
        // inner.start is parented on outer; the leaf emit carries
        // inner's span id; inner.end matches inner.start.
        let inner_span = parsed[1].get("span").and_then(Json::as_u64).expect("inner span id");
        assert_eq!(parsed[1].get("parent").and_then(Json::as_u64), Some(outer_span));
        assert_eq!(parsed[2].get("span").and_then(Json::as_u64), Some(inner_span));
        assert_eq!(parsed[3].get("span").and_then(Json::as_u64), Some(inner_span));
        assert_eq!(parsed[4].get("span").and_then(Json::as_u64), Some(outer_span));
        // Start events carry the informational wall-clock field.
        assert!(parsed[0].get("wall").is_some());
        assert!(parsed[4].get("wall").is_none(), "end events carry no wall field");
    }

    #[test]
    fn spans_without_a_context_carry_no_ids() {
        let _g = test_guard();
        let ring = Arc::new(RingSink::new(4));
        install_trace_sink(ring.clone());
        {
            let _span = span("plain", &[]);
        }
        clear_trace_sink();
        for line in ring.lines() {
            let v = crate::json::parse(&line).unwrap();
            assert!(v.get("trace").is_none(), "{line}");
            assert!(v.get("span").is_none(), "{line}");
        }
    }

    #[test]
    fn fanout_replicates_to_all_sinks() {
        let _g = test_guard();
        let a = Arc::new(RingSink::new(4));
        let b = Arc::new(RingSink::new(4));
        install_trace_sink(Arc::new(FanoutSink::new(vec![a.clone(), b.clone()])));
        emit("both", &[("k", Field::U64(1))]);
        clear_trace_sink();
        assert_eq!(a.lines().len(), 1);
        assert_eq!(a.lines(), b.lines());
    }
}
