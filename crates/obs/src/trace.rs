//! Structured tracing: timestamped events and spans fanned out to a
//! pluggable [`TraceSink`].
//!
//! Emission is guarded the same way as metrics: [`tracing_active`] is
//! one relaxed atomic load, so call sites can skip field construction
//! entirely when no sink is installed. Timestamps are microseconds
//! since a process-wide monotonic base (`Instant`), never wall-clock,
//! so traces are immune to clock steps and cheap to subtract.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::{write_escaped, Json};

/// One typed field value attached to an event.
#[derive(Clone, PartialEq, Debug)]
pub enum Field {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Field {
    fn to_json(&self) -> Json {
        match self {
            Field::U64(v) => Json::Int(i128::from(*v)),
            Field::I64(v) => Json::Int(i128::from(*v)),
            Field::F64(v) => Json::Float(*v),
            Field::Str(v) => Json::Str(v.clone()),
            Field::Bool(v) => Json::Bool(*v),
        }
    }
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I64(v)
    }
}

impl From<f64> for Field {
    fn from(v: f64) -> Self {
        Field::F64(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

/// Microseconds elapsed since the process-wide monotonic base.
pub fn now_micros() -> u64 {
    static BASE: OnceLock<Instant> = OnceLock::new();
    let base = *BASE.get_or_init(Instant::now);
    Instant::now().duration_since(base).as_micros() as u64
}

/// Receives trace events. Implementations must tolerate concurrent
/// calls from many threads.
pub trait TraceSink: Send + Sync {
    /// Handle one event: a name, a timestamp from [`now_micros`], and
    /// typed fields.
    fn event(&self, name: &str, timestamp_micros: u64, fields: &[(&str, Field)]);

    /// Flush any buffering (default: nothing).
    fn flush(&self) {}
}

static TRACING_ACTIVE: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static Mutex<Option<Arc<dyn TraceSink>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn TraceSink>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Whether a sink is installed (one relaxed load — guard on this
/// before building fields).
#[inline]
pub fn tracing_active() -> bool {
    TRACING_ACTIVE.load(Ordering::Relaxed)
}

/// Install `sink` as the process-wide trace sink, replacing any
/// previous one (the previous sink is flushed first).
pub fn install_trace_sink(sink: Arc<dyn TraceSink>) {
    let mut slot = sink_slot().lock().expect("trace sink slot poisoned");
    if let Some(old) = slot.take() {
        old.flush();
    }
    *slot = Some(sink);
    TRACING_ACTIVE.store(true, Ordering::Relaxed);
}

/// Remove and flush the installed sink, if any, and return it.
pub fn clear_trace_sink() -> Option<Arc<dyn TraceSink>> {
    let mut slot = sink_slot().lock().expect("trace sink slot poisoned");
    TRACING_ACTIVE.store(false, Ordering::Relaxed);
    let old = slot.take();
    if let Some(sink) = &old {
        sink.flush();
    }
    old
}

/// Emit one event to the installed sink (no-op when none is installed).
pub fn emit(name: &str, fields: &[(&str, Field)]) {
    if !tracing_active() {
        return;
    }
    let sink = sink_slot().lock().expect("trace sink slot poisoned").clone();
    if let Some(sink) = sink {
        sink.event(name, now_micros(), fields);
    }
}

/// RAII span: emits `<name>.start` on creation and `<name>.end` (with
/// an `elapsed_micros` field appended) on drop.
#[derive(Debug)]
pub struct Span {
    name: String,
    started: Instant,
    fields: Vec<(String, Field)>,
}

/// Open a span. Cheap when tracing is inactive (fields are still
/// cloned; guard on [`tracing_active`] in hot loops).
pub fn span(name: &str, fields: &[(&str, Field)]) -> Span {
    let span = Span {
        name: name.to_string(),
        started: Instant::now(),
        fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
    };
    if tracing_active() {
        emit(&format!("{name}.start"), fields);
    }
    span
}

impl Drop for Span {
    fn drop(&mut self) {
        if !tracing_active() {
            return;
        }
        let elapsed = self.started.elapsed().as_micros() as u64;
        let mut fields: Vec<(&str, Field)> =
            self.fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        fields.push(("elapsed_micros", Field::U64(elapsed)));
        emit(&format!("{}.end", self.name), &fields);
    }
}

/// Render one event as a single-line JSON object:
/// `{"ts":<micros>,"event":<name>,<field>...}`.
pub fn render_event_json(name: &str, timestamp_micros: u64, fields: &[(&str, Field)]) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"ts\":");
    let _ = fmt::Write::write_fmt(&mut out, format_args!("{timestamp_micros}"));
    out.push_str(",\"event\":");
    write_escaped(name, &mut out);
    for (key, value) in fields {
        out.push(',');
        write_escaped(key, &mut out);
        out.push(':');
        out.push_str(&value.to_json().render());
    }
    out.push('}');
    out
}

/// A sink that appends one JSON object per line to a file.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) `path` and return a sink writing to it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self { writer: Mutex::new(BufWriter::new(File::create(path)?)) })
    }
}

impl TraceSink for JsonlSink {
    fn event(&self, name: &str, timestamp_micros: u64, fields: &[(&str, Field)]) {
        let line = render_event_json(name, timestamp_micros, fields);
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink poisoned").flush();
    }
}

/// A bounded in-memory sink keeping the most recent `capacity` rendered
/// event lines — always-on capture with O(capacity) memory.
#[derive(Debug)]
pub struct RingSink {
    lines: Mutex<VecDeque<String>>,
    capacity: usize,
}

impl RingSink {
    /// A ring buffer holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        Self { lines: Mutex::new(VecDeque::new()), capacity: capacity.max(1) }
    }

    /// The buffered event lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("ring sink poisoned").iter().cloned().collect()
    }
}

impl TraceSink for RingSink {
    fn event(&self, name: &str, timestamp_micros: u64, fields: &[(&str, Field)]) {
        let line = render_event_json(name, timestamp_micros, fields);
        let mut lines = self.lines.lock().expect("ring sink poisoned");
        if lines.len() == self.capacity {
            lines.pop_front();
        }
        lines.push_back(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink slot is process-global; tests that install one are
    // serialized behind this lock so they do not observe each other.
    fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn event_renders_as_one_json_line() {
        let line = render_event_json(
            "explore.level",
            42,
            &[
                ("depth", Field::U64(3)),
                ("frontier", Field::U64(128)),
                ("note", Field::Str("a\"b".to_string())),
                ("done", Field::Bool(false)),
            ],
        );
        assert!(!line.contains('\n'));
        let v = crate::json::parse(&line).expect("event line parses");
        assert_eq!(v.get("ts").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("event").and_then(Json::as_str), Some("explore.level"));
        assert_eq!(v.get("depth").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("note").and_then(Json::as_str), Some("a\"b"));
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let _g = test_guard();
        let ring = Arc::new(RingSink::new(2));
        install_trace_sink(ring.clone());
        assert!(tracing_active());
        emit("one", &[]);
        emit("two", &[]);
        emit("three", &[("k", Field::U64(9))]);
        clear_trace_sink();
        assert!(!tracing_active());
        let lines = ring.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"two\""), "{lines:?}");
        assert!(lines[1].contains("\"three\""), "{lines:?}");
    }

    #[test]
    fn emit_without_sink_is_a_noop() {
        let _g = test_guard();
        clear_trace_sink();
        emit("ignored", &[("x", Field::U64(1))]);
    }

    #[test]
    fn spans_emit_start_and_end_with_elapsed() {
        let _g = test_guard();
        let ring = Arc::new(RingSink::new(8));
        install_trace_sink(ring.clone());
        {
            let _span = span("phase", &[("depth", Field::U64(1))]);
            emit("inner", &[]);
        }
        clear_trace_sink();
        let lines = ring.lines();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains("phase.start"));
        assert!(lines[1].contains("\"inner\""));
        assert!(lines[2].contains("phase.end"));
        assert!(lines[2].contains("elapsed_micros"));
        let end = crate::json::parse(&lines[2]).unwrap();
        assert_eq!(end.get("depth").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let _g = test_guard();
        let path = std::env::temp_dir().join("randsync_obs_trace_test.jsonl");
        let sink = Arc::new(JsonlSink::create(&path).expect("create sink"));
        install_trace_sink(sink);
        emit("a", &[("n", Field::U64(1))]);
        emit("b", &[("f", Field::F64(0.5))]);
        clear_trace_sink();
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::parse(line).expect("line parses");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = now_micros();
        let b = now_micros();
        assert!(b >= a);
    }
}
