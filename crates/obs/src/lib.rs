//! Zero-dependency observability for the randsync workspace.
//!
//! The build environment is offline, so this crate fills the role
//! `metrics`/`tracing`/`serde_json` would normally play, with three
//! pillars (DESIGN.md §12):
//!
//! - [`metrics`] — a process-global [`metrics::MetricsRegistry`] of
//!   lock-free counters, gauges, and power-of-two histograms. Hot
//!   paths guard on [`metrics::metrics_enabled`] (one relaxed atomic
//!   load) so instrumentation costs nothing when off.
//! - [`trace`] — structured events and spans through a pluggable
//!   [`trace::TraceSink`]: a JSONL file writer for post-mortem
//!   analysis and a bounded ring buffer for always-on capture.
//! - [`flight`] — the flight recorder artifact
//!   [`flight::ExecutionTrace`]: the full schedule + coin stream of
//!   one execution as JSONL, which `randsync replay` re-executes
//!   deterministically.
//!
//! [`json`] is the shared hand-rolled JSON value/parser/writer that
//! keeps all of the above dependency-free. This crate is a leaf: it
//! depends on nothing in the workspace, so every other crate may
//! depend on it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod spantree;
pub mod trace;

pub use flight::{ExecutionTrace, TraceError, TRACE_SCHEMA_VERSION};
pub use json::{parse as parse_json, Json, JsonError};
pub use metrics::{
    global as global_metrics, metrics_enabled, quantile_from_buckets, set_metrics_enabled,
    Counter, Gauge, Histogram, MetricValue, MetricsRegistry, Snapshot,
};
pub use spantree::{merge as merge_spans, SpanForest, SpanRec, TraceTree};
pub use trace::{
    clear_trace_sink, current_context, emit, flush_trace_sink, fresh_id, install_trace_sink,
    now_micros,
    push_context, span, tracing_active, wall_micros, ContextGuard, FanoutSink, Field, JsonlSink,
    RingSink, Span, TraceContext, TraceSink,
};
