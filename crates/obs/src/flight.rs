//! The flight recorder's on-disk artifact: a complete, replayable
//! record of one execution.
//!
//! An execution of a randomized protocol is fully determined by its
//! schedule and coin stream — the sequence of `(process, coin)` pairs
//! in linearization order (DESIGN.md §12). [`ExecutionTrace`] captures
//! exactly that, plus the header needed to rebuild the protocol
//! instance, as JSONL: one header object, one object per step, one
//! footer with the observed decisions for cross-checking a replay.
//!
//! This crate is a leaf (no dependency on the model crate), so steps
//! are plain `(pid, coin)` tuples; the model and binary layers convert
//! to and from their richer `Step` type.

use std::fmt;
use std::path::Path;

use crate::json::{parse, Json, JsonError};

/// Current trace file schema version, bumped on incompatible change.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// A serializable record of one execution: everything needed to
/// replay it deterministically and check the outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExecutionTrace {
    /// Schema version of the file this was read from / will write.
    pub schema_version: u32,
    /// Registry name of the protocol (e.g. `"cas"`).
    pub protocol: String,
    /// Number of processes the protocol instance was built with.
    pub n: usize,
    /// Range parameter the instance was built with (protocols that
    /// ignore it carry their default).
    pub r: usize,
    /// Seed the original run used (informational; replay does not
    /// draw coins).
    pub seed: u64,
    /// Which interpreter produced the trace: `"runtime"`, `"sim"`, ...
    pub interpreter: String,
    /// Per-process inputs. May be longer than `n` for witness pools.
    pub inputs: Vec<u8>,
    /// The schedule and coin stream, in linearization order:
    /// `(process id, coin)` per step.
    pub steps: Vec<(u32, u32)>,
    /// Decision observed for each process (`None` = undecided), for
    /// verifying a replay reproduces the run bit-for-bit.
    pub decisions: Vec<Option<u8>>,
}

/// Why reading a trace failed.
#[derive(Clone, PartialEq, Debug)]
pub enum TraceError {
    /// A line was not valid JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// The underlying parse error.
        error: JsonError,
    },
    /// A line parsed but did not match the schema.
    Schema {
        /// 1-based line number (0 = whole-file problem).
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file could not be read or written.
    Io(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Json { line, error } => write!(f, "trace line {line}: {error}"),
            TraceError::Schema { line: 0, message } => write!(f, "trace: {message}"),
            TraceError::Schema { line, message } => write!(f, "trace line {line}: {message}"),
            TraceError::Io(message) => write!(f, "trace I/O: {message}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl ExecutionTrace {
    /// Serialize to JSONL: header, one line per step, footer.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.steps.len() * 24);
        let header = Json::Obj(vec![
            ("type".to_string(), Json::Str("header".to_string())),
            ("schema_version".to_string(), Json::Int(i128::from(self.schema_version))),
            ("protocol".to_string(), Json::Str(self.protocol.clone())),
            ("n".to_string(), Json::Int(self.n as i128)),
            ("r".to_string(), Json::Int(self.r as i128)),
            ("seed".to_string(), Json::Int(i128::from(self.seed))),
            ("interpreter".to_string(), Json::Str(self.interpreter.clone())),
            (
                "inputs".to_string(),
                Json::Arr(self.inputs.iter().map(|&i| Json::Int(i128::from(i))).collect()),
            ),
        ]);
        out.push_str(&header.render());
        out.push('\n');
        for &(pid, coin) in &self.steps {
            // Hand-rolled for speed and stable field order; the parser
            // below accepts exactly this shape.
            out.push_str("{\"type\":\"step\",\"pid\":");
            let _ = fmt::Write::write_fmt(&mut out, format_args!("{pid}"));
            out.push_str(",\"coin\":");
            let _ = fmt::Write::write_fmt(&mut out, format_args!("{coin}"));
            out.push_str("}\n");
        }
        let footer = Json::Obj(vec![
            ("type".to_string(), Json::Str("footer".to_string())),
            ("steps".to_string(), Json::Int(self.steps.len() as i128)),
            (
                "decisions".to_string(),
                Json::Arr(
                    self.decisions
                        .iter()
                        .map(|d| match d {
                            Some(v) => Json::Int(i128::from(*v)),
                            None => Json::Null,
                        })
                        .collect(),
                ),
            ),
        ]);
        out.push_str(&footer.render());
        out.push('\n');
        out
    }

    /// Parse a JSONL trace produced by [`ExecutionTrace::to_jsonl`].
    ///
    /// # Errors
    ///
    /// [`TraceError`] on malformed JSON, schema violations, a missing
    /// header/footer, or a footer step count that disagrees with the
    /// number of step lines (truncation detection).
    pub fn from_jsonl(text: &str) -> Result<Self, TraceError> {
        let schema = |line: usize, message: &str| TraceError::Schema {
            line,
            message: message.to_string(),
        };
        let mut header: Option<ExecutionTrace> = None;
        let mut steps: Vec<(u32, u32)> = Vec::new();
        let mut footer: Option<(usize, Vec<Option<u8>>)> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            if raw.trim().is_empty() {
                continue;
            }
            let v = parse(raw).map_err(|error| TraceError::Json { line, error })?;
            let kind = v
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| schema(line, "missing \"type\" field"))?;
            match kind {
                "header" => {
                    if header.is_some() {
                        return Err(schema(line, "duplicate header"));
                    }
                    let field_u64 = |name: &str| {
                        v.get(name)
                            .and_then(Json::as_u64)
                            .ok_or_else(|| schema(line, &format!("header missing {name:?}")))
                    };
                    let field_str = |name: &str| {
                        v.get(name)
                            .and_then(Json::as_str)
                            .map(str::to_string)
                            .ok_or_else(|| schema(line, &format!("header missing {name:?}")))
                    };
                    let schema_version = field_u64("schema_version")? as u32;
                    if schema_version != TRACE_SCHEMA_VERSION {
                        return Err(schema(
                            line,
                            &format!(
                                "unsupported schema_version {schema_version} \
                                 (this build reads {TRACE_SCHEMA_VERSION})"
                            ),
                        ));
                    }
                    let inputs = v
                        .get("inputs")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| schema(line, "header missing \"inputs\""))?
                        .iter()
                        .map(|i| {
                            i.as_u64()
                                .and_then(|u| u8::try_from(u).ok())
                                .ok_or_else(|| schema(line, "inputs must be bytes"))
                        })
                        .collect::<Result<Vec<u8>, _>>()?;
                    header = Some(ExecutionTrace {
                        schema_version,
                        protocol: field_str("protocol")?,
                        n: field_u64("n")? as usize,
                        r: field_u64("r")? as usize,
                        seed: field_u64("seed")?,
                        interpreter: field_str("interpreter")?,
                        inputs,
                        steps: Vec::new(),
                        decisions: Vec::new(),
                    });
                }
                "step" => {
                    if header.is_none() {
                        return Err(schema(line, "step before header"));
                    }
                    if footer.is_some() {
                        return Err(schema(line, "step after footer"));
                    }
                    let pid = v
                        .get("pid")
                        .and_then(Json::as_u64)
                        .and_then(|p| u32::try_from(p).ok())
                        .ok_or_else(|| schema(line, "step missing \"pid\""))?;
                    let coin = v
                        .get("coin")
                        .and_then(Json::as_u64)
                        .and_then(|c| u32::try_from(c).ok())
                        .ok_or_else(|| schema(line, "step missing \"coin\""))?;
                    steps.push((pid, coin));
                }
                "footer" => {
                    if footer.is_some() {
                        return Err(schema(line, "duplicate footer"));
                    }
                    let count = v
                        .get("steps")
                        .and_then(Json::as_usize)
                        .ok_or_else(|| schema(line, "footer missing \"steps\""))?;
                    let decisions = v
                        .get("decisions")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| schema(line, "footer missing \"decisions\""))?
                        .iter()
                        .map(|d| match d {
                            Json::Null => Ok(None),
                            other => other
                                .as_u64()
                                .and_then(|u| u8::try_from(u).ok())
                                .map(Some)
                                .ok_or_else(|| schema(line, "decisions must be bytes or null")),
                        })
                        .collect::<Result<Vec<Option<u8>>, _>>()?;
                    footer = Some((count, decisions));
                }
                other => return Err(schema(line, &format!("unknown line type {other:?}"))),
            }
        }
        let mut trace = header.ok_or_else(|| schema(0, "missing header line"))?;
        let (count, decisions) = footer.ok_or_else(|| schema(0, "missing footer line"))?;
        if count != steps.len() {
            return Err(schema(
                0,
                &format!("footer claims {count} steps but file has {}", steps.len()),
            ));
        }
        trace.steps = steps;
        trace.decisions = decisions;
        Ok(trace)
    }

    /// Write the trace to `path` (truncating).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] with the path in the message.
    pub fn write_to(&self, path: &Path) -> Result<(), TraceError> {
        std::fs::write(path, self.to_jsonl())
            .map_err(|e| TraceError::Io(format!("writing {}: {e}", path.display())))
    }

    /// Read and parse a trace from `path`.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] if the file is unreadable, otherwise the
    /// parse errors of [`ExecutionTrace::from_jsonl`].
    pub fn read_from(path: &Path) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| TraceError::Io(format!("reading {}: {e}", path.display())))?;
        Self::from_jsonl(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionTrace {
        ExecutionTrace {
            schema_version: TRACE_SCHEMA_VERSION,
            protocol: "cas".to_string(),
            n: 2,
            r: 2,
            seed: u64::MAX - 7,
            interpreter: "runtime".to_string(),
            inputs: vec![0, 1],
            steps: vec![(0, 0), (1, 3), (0, 1), (1, 0)],
            decisions: vec![Some(0), None],
        }
    }

    #[test]
    fn jsonl_round_trip_is_identity() {
        let trace = sample();
        let text = trace.to_jsonl();
        assert_eq!(text.lines().count(), 2 + trace.steps.len());
        let back = ExecutionTrace::from_jsonl(&text).expect("parses");
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_execution_round_trips() {
        let mut trace = sample();
        trace.steps.clear();
        trace.decisions = vec![None, None];
        let back = ExecutionTrace::from_jsonl(&trace.to_jsonl()).expect("parses");
        assert_eq!(back, trace);
    }

    #[test]
    fn file_round_trip() {
        let path = std::env::temp_dir().join("randsync_obs_flight_test.jsonl");
        let trace = sample();
        trace.write_to(&path).expect("write");
        let back = ExecutionTrace::read_from(&path).expect("read");
        assert_eq!(back, trace);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_is_detected() {
        let trace = sample();
        let text = trace.to_jsonl();
        // Drop one step line but keep the footer: count mismatch.
        let mut lines: Vec<&str> = text.lines().collect();
        lines.remove(2);
        let err = ExecutionTrace::from_jsonl(&lines.join("\n")).expect_err("must fail");
        assert!(err.to_string().contains("footer claims"), "{err}");
        // Drop the footer entirely.
        let no_footer: Vec<&str> = text.lines().take(3).collect();
        let err = ExecutionTrace::from_jsonl(&no_footer.join("\n")).expect_err("must fail");
        assert!(err.to_string().contains("missing footer"), "{err}");
    }

    #[test]
    fn schema_violations_are_reported_with_line_numbers() {
        let cases = [
            ("{\"type\":\"step\",\"pid\":0,\"coin\":0}\n", "step before header"),
            ("{\"pid\":0}\n", "missing \"type\""),
            ("not json\n", "JSON error"),
        ];
        for (text, needle) in cases {
            let err = ExecutionTrace::from_jsonl(text).expect_err(text);
            assert!(err.to_string().contains(needle), "{err} !~ {needle}");
        }
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let mut text = sample().to_jsonl();
        text = text.replace("\"schema_version\":1", "\"schema_version\":999");
        let err = ExecutionTrace::from_jsonl(&text).expect_err("must fail");
        assert!(err.to_string().contains("unsupported schema_version"), "{err}");
    }

    #[test]
    fn seed_survives_at_u64_extremes() {
        let mut trace = sample();
        trace.seed = u64::MAX;
        let back = ExecutionTrace::from_jsonl(&trace.to_jsonl()).expect("parses");
        assert_eq!(back.seed, u64::MAX);
    }
}
