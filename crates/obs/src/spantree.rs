//! Merging per-process JSONL trace sinks into causal span trees.
//!
//! Each process in a distributed run writes its own [`crate::trace::JsonlSink`]
//! file; span events carry `trace`/`span`/`parent` ids from the
//! propagated [`crate::trace::TraceContext`], so the union of files
//! contains one causal tree per trace id. [`merge`] stitches them:
//! `X.start`/`X.end` pairs (matched by span id) become [`SpanRec`]s,
//! plain emits attach to their enclosing span as event counts, and
//! spans whose parent id appears in *no* input are flagged as orphans
//! (an unstitchable tree — usually a missing file).
//!
//! Timestamps are per-process monotonic micros and are **never
//! compared across processes**; durations come from each span's own
//! `elapsed_micros`, and sibling ordering falls back to source order
//! when siblings come from different processes. The critical path of
//! a root is the chain found by descending into the longest-elapsed
//! child at every step.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use crate::json::Json;

/// One reconstructed span: a matched `.start`/`.end` pair (or an
/// unfinished `.start` when the process died before closing it).
#[derive(Clone, Debug)]
pub struct SpanRec {
    /// The span's own id.
    pub span_id: u64,
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Span name with the `.start`/`.end` suffix stripped.
    pub name: String,
    /// Monotonic start timestamp — meaningful only within `source`.
    pub start_ts: u64,
    /// Informational wall-clock micros from the `.start` event.
    pub wall: u64,
    /// Duration from the `.end` event; `None` if no end was seen.
    pub elapsed_micros: Option<u64>,
    /// Rendered payload fields from the `.start` event (ids and
    /// timestamps excluded).
    pub fields: Vec<(String, String)>,
    /// Index into [`SpanForest::labels`]: which input file held it.
    pub source: usize,
    /// Plain (non-span) emits that carried this span's id.
    pub events: u64,
    /// Child span ids, in input order.
    pub children: Vec<u64>,
}

/// All spans of one trace id, linked into a tree.
#[derive(Clone, Debug)]
pub struct TraceTree {
    /// The shared trace id.
    pub trace_id: u64,
    /// Spans with no known parent in this trace (parent id 0).
    pub roots: Vec<u64>,
    /// Spans whose parent id was *not* found in any input — the tree
    /// is unstitchable (a contributing process's file is missing).
    pub orphans: Vec<u64>,
    /// Every span, keyed by span id.
    pub spans: BTreeMap<u64, SpanRec>,
    /// Which input files contributed spans to this trace.
    pub processes: BTreeSet<usize>,
}

impl TraceTree {
    /// Total plain events attached to this trace's spans.
    pub fn event_count(&self) -> u64 {
        self.spans.values().map(|s| s.events).sum()
    }
}

/// The merged result: one [`TraceTree`] per trace id seen.
#[derive(Clone, Debug)]
pub struct SpanForest {
    /// One label per input, in the order given to [`merge`].
    pub labels: Vec<String>,
    /// Trees sorted by trace id.
    pub traces: Vec<TraceTree>,
    /// Input lines that were not parseable JSON objects.
    pub skipped_lines: usize,
}

/// Metadata keys that are structure, not payload.
const RESERVED: [&str; 7] = ["ts", "event", "trace", "span", "parent", "wall", "elapsed_micros"];

fn render_field(v: &Json) -> String {
    match v {
        Json::Str(s) => s.clone(),
        other => other.render(),
    }
}

/// Merge `(label, jsonl-content)` inputs into span trees.
pub fn merge(inputs: &[(String, String)]) -> SpanForest {
    struct Pending {
        rec: SpanRec,
        seen_start: bool,
    }
    let mut spans: BTreeMap<u64, Pending> = BTreeMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut plain_events: BTreeMap<u64, u64> = BTreeMap::new();
    let mut skipped = 0usize;

    for (source, (_, content)) in inputs.iter().enumerate() {
        for line in content.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(v) = crate::json::parse(line) else {
                skipped += 1;
                continue;
            };
            let Some(event) = v.get("event").and_then(Json::as_str) else {
                skipped += 1;
                continue;
            };
            let (Some(trace_id), Some(span_id)) = (
                v.get("trace").and_then(Json::as_u64),
                v.get("span").and_then(Json::as_u64),
            ) else {
                continue; // contextless event: not part of any tree
            };
            if let Some(name) = event.strip_suffix(".start") {
                let entry = spans.entry(span_id).or_insert_with(|| {
                    order.push(span_id);
                    Pending {
                        rec: SpanRec {
                            span_id,
                            trace_id,
                            parent: 0,
                            name: String::new(),
                            start_ts: 0,
                            wall: 0,
                            elapsed_micros: None,
                            fields: Vec::new(),
                            source,
                            events: 0,
                            children: Vec::new(),
                        },
                        seen_start: false,
                    }
                });
                if entry.seen_start {
                    continue; // duplicate id: keep the first start
                }
                entry.seen_start = true;
                entry.rec.name = name.to_string();
                entry.rec.trace_id = trace_id;
                entry.rec.parent = v.get("parent").and_then(Json::as_u64).unwrap_or(0);
                entry.rec.start_ts = v.get("ts").and_then(Json::as_u64).unwrap_or(0);
                entry.rec.wall = v.get("wall").and_then(Json::as_u64).unwrap_or(0);
                entry.rec.source = source;
                if let Json::Obj(fields) = &v {
                    for (k, fv) in fields {
                        if !RESERVED.contains(&k.as_str()) {
                            entry.rec.fields.push((k.clone(), render_field(fv)));
                        }
                    }
                }
            } else if event.strip_suffix(".end").is_some() {
                if let Some(entry) = spans.get_mut(&span_id) {
                    if entry.rec.elapsed_micros.is_none() {
                        entry.rec.elapsed_micros = v.get("elapsed_micros").and_then(Json::as_u64);
                    }
                }
                // An .end whose .start lives in an unread file is
                // indistinguishable from noise; ignore it.
            } else {
                *plain_events.entry(span_id).or_insert(0) += 1;
            }
        }
    }

    let mut recs: BTreeMap<u64, SpanRec> = spans
        .into_iter()
        .filter(|(_, p)| p.seen_start)
        .map(|(id, p)| (id, p.rec))
        .collect();
    for (span_id, n) in plain_events {
        if let Some(rec) = recs.get_mut(&span_id) {
            rec.events += n;
        }
        // Plain events on spans we never saw started (e.g. a remote
        // process emitting under the caller's span id when the
        // caller's file is absent) are dropped, not errors: the
        // orphan check below covers genuine unstitchability.
    }

    // Link children in input order, then split per trace.
    let known: BTreeSet<u64> = recs.keys().copied().collect();
    let mut trees: BTreeMap<u64, TraceTree> = BTreeMap::new();
    for span_id in &order {
        let Some(rec) = recs.get(span_id) else { continue };
        let tree = trees.entry(rec.trace_id).or_insert_with(|| TraceTree {
            trace_id: rec.trace_id,
            roots: Vec::new(),
            orphans: Vec::new(),
            spans: BTreeMap::new(),
            processes: BTreeSet::new(),
        });
        tree.processes.insert(rec.source);
        if rec.parent == 0 {
            tree.roots.push(*span_id);
        } else if known.contains(&rec.parent) {
            // parent linked below once all spans are placed
        } else {
            tree.orphans.push(*span_id);
        }
    }
    for span_id in &order {
        let Some(rec) = recs.get(span_id) else { continue };
        let (parent, id) = (rec.parent, rec.span_id);
        if parent != 0 && known.contains(&parent) {
            if let Some(parent_rec) = recs.get_mut(&parent) {
                parent_rec.children.push(id);
            }
        }
    }
    for (id, rec) in recs {
        if let Some(tree) = trees.get_mut(&rec.trace_id) {
            tree.spans.insert(id, rec);
        }
    }

    SpanForest {
        labels: inputs.iter().map(|(l, _)| l.clone()).collect(),
        traces: trees.into_values().collect(),
        skipped_lines: skipped,
    }
}

/// Human-readable duration.
fn human_micros(us: u64) -> String {
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

impl SpanForest {
    /// Total spans across all traces whose parent id was never seen.
    pub fn orphan_count(&self) -> usize {
        self.traces.iter().map(|t| t.orphans.len()).sum()
    }

    /// The tree for `trace_id`, if present.
    pub fn trace(&self, trace_id: u64) -> Option<&TraceTree> {
        self.traces.iter().find(|t| t.trace_id == trace_id)
    }

    /// Render every trace as an indented tree with per-span durations
    /// and `*` marking the critical path (the longest-elapsed child at
    /// each step from the root down).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for tree in &self.traces {
            let _ = writeln!(
                out,
                "trace {:016x} — {} process{}, {} span{}, {} event{}",
                tree.trace_id,
                tree.processes.len(),
                if tree.processes.len() == 1 { "" } else { "es" },
                tree.spans.len(),
                if tree.spans.len() == 1 { "" } else { "s" },
                tree.event_count(),
                if tree.event_count() == 1 { "" } else { "s" },
            );
            let mut critical: BTreeSet<u64> = BTreeSet::new();
            for root in &tree.roots {
                let mut cursor = *root;
                loop {
                    critical.insert(cursor);
                    let Some(rec) = tree.spans.get(&cursor) else { break };
                    let next = rec
                        .children
                        .iter()
                        .filter_map(|c| tree.spans.get(c))
                        .max_by_key(|c| c.elapsed_micros.unwrap_or(0));
                    match next {
                        Some(child) => cursor = child.span_id,
                        None => break,
                    }
                }
            }
            for root in &tree.roots {
                self.render_span(tree, *root, 1, &critical, &mut out);
            }
            for orphan in &tree.orphans {
                if let Some(rec) = tree.spans.get(orphan) {
                    let _ = writeln!(
                        out,
                        "  ORPHAN (parent {:016x} not in any input):",
                        rec.parent
                    );
                    self.render_span(tree, *orphan, 2, &critical, &mut out);
                }
            }
        }
        if self.skipped_lines > 0 {
            let _ = writeln!(out, "({} unparseable line(s) skipped)", self.skipped_lines);
        }
        out
    }

    fn render_span(
        &self,
        tree: &TraceTree,
        span_id: u64,
        depth: usize,
        critical: &BTreeSet<u64>,
        out: &mut String,
    ) {
        let Some(rec) = tree.spans.get(&span_id) else { return };
        let indent = "  ".repeat(depth);
        let label = self.labels.get(rec.source).map(String::as_str).unwrap_or("?");
        let mut line = format!("{indent}[{label}] {}", rec.name);
        for (k, v) in &rec.fields {
            let _ = write!(line, " {k}={v}");
        }
        if rec.events > 0 {
            let _ = write!(line, " ({} events)", rec.events);
        }
        let dur = match rec.elapsed_micros {
            Some(us) => human_micros(us),
            None => "unfinished".to_string(),
        };
        let marker = if critical.contains(&span_id) { "  *" } else { "" };
        let _ = writeln!(out, "{line}  {dur}{marker}");
        for child in &rec.children {
            self.render_span(tree, *child, depth + 1, critical, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{
        clear_trace_sink, install_trace_sink, push_context, span, RingSink, TraceContext,
    };
    use std::sync::{Arc, Mutex};

    fn test_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Emit a little two-level trace through the real span machinery
    /// and return (trace_id, jsonl).
    fn recorded_trace() -> (u64, String) {
        let ring = Arc::new(RingSink::new(64));
        install_trace_sink(ring.clone());
        let root = TraceContext::root();
        {
            let _ctx = push_context(root);
            let _outer = span("job", &[("kind", "explore".into())]);
            {
                let _inner = span("probe", &[("shard", 0u64.into())]);
                crate::trace::emit("tick", &[]);
            }
            let _inner2 = span("merge", &[]);
        }
        clear_trace_sink();
        (root.trace_id, ring.lines().join("\n"))
    }

    #[test]
    fn stitches_one_process_into_a_tree() {
        let _g = test_guard();
        let (trace_id, jsonl) = recorded_trace();
        let forest = merge(&[("p0".to_string(), jsonl)]);
        assert_eq!(forest.traces.len(), 1);
        assert_eq!(forest.orphan_count(), 0);
        let tree = forest.trace(trace_id).expect("trace present");
        assert_eq!(tree.spans.len(), 3);
        assert_eq!(tree.roots.len(), 1);
        let root = &tree.spans[&tree.roots[0]];
        assert_eq!(root.name, "job");
        assert_eq!(root.children.len(), 2, "probe and merge under job");
        assert_eq!(tree.event_count(), 1, "the tick emit attached to probe");
        let rendered = forest.render();
        assert!(rendered.contains("1 process"), "{rendered}");
        assert!(rendered.contains("[p0] job kind=explore"), "{rendered}");
        assert!(rendered.contains("  *"), "critical path is marked: {rendered}");
    }

    #[test]
    fn spans_split_across_files_still_stitch() {
        let _g = test_guard();
        let (trace_id, jsonl) = recorded_trace();
        let lines: Vec<&str> = jsonl.lines().collect();
        let (a, b) = lines.split_at(lines.len() / 2);
        let forest =
            merge(&[("a".to_string(), a.join("\n")), ("b".to_string(), b.join("\n"))]);
        assert_eq!(forest.orphan_count(), 0);
        assert_eq!(forest.trace(trace_id).expect("trace").spans.len(), 3);
    }

    #[test]
    fn missing_parent_is_an_orphan() {
        let _g = test_guard();
        let (trace_id, jsonl) = recorded_trace();
        // Drop the root span's start: its children become orphans.
        let pruned: Vec<&str> =
            jsonl.lines().filter(|l| !l.contains("job.start")).collect();
        let forest = merge(&[("p0".to_string(), pruned.join("\n"))]);
        assert!(forest.orphan_count() >= 1, "children of the dropped span are orphans");
        let rendered = forest.render();
        assert!(rendered.contains("ORPHAN"), "{rendered}");
        let _ = trace_id;
    }

    #[test]
    fn garbage_lines_are_counted_not_fatal() {
        let forest = merge(&[(
            "x".to_string(),
            "not json\n{\"no_event\":1}\n".to_string(),
        )]);
        assert_eq!(forest.traces.len(), 0);
        assert_eq!(forest.skipped_lines, 2);
        assert!(forest.render().contains("2 unparseable"));
    }
}
