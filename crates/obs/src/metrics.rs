//! Lock-free metrics: counters, gauges, power-of-two histograms, and a
//! registry that snapshots them all into JSON or aligned text.
//!
//! The hot-path contract: a [`Counter`] increment is one relaxed atomic
//! add, and callers that want *zero* cost when observability is off
//! guard on [`metrics_enabled`] — a single relaxed load of a process
//! global — before touching any handle at all. Handles are `Arc`s into
//! the registry's storage, so they can be hoisted out of loops and
//! cloned into worker threads freely.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;

/// Global switch consulted by instrumented hot paths.
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metrics collection is currently enabled (one relaxed load).
#[inline]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turn global metrics collection on or off.
///
/// Instrumented code guards per-operation updates on
/// [`metrics_enabled`]; batch-level instrumentation (for example the
/// explorer's per-depth flush) may record regardless, since its cost is
/// already amortized away.
pub fn set_metrics_enabled(enabled: bool) {
    METRICS_ENABLED.store(enabled, Ordering::Relaxed);
}

/// A monotonically increasing `u64` counter handle.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge handle: a value that can move both ways.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (monotone max).
    pub fn record_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i < 64` counts values whose
/// bit length is `i` (i.e. `v == 0` → bucket 0, otherwise
/// `floor(log2 v) + 1`), so bucket boundaries are powers of two.
const HISTOGRAM_BUCKETS: usize = 65;

/// Shared storage behind [`Histogram`] handles.
#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A power-of-two-bucket histogram handle for `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = (u64::BITS - v.leading_zeros()) as usize;
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Estimate the `p`-quantile (`0.0..=1.0`) of recorded samples by
    /// linear interpolation inside the power-of-two bucket containing
    /// the target rank. Returns 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        let buckets: Vec<(u64, u64)> = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let le = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                Some((le, n))
            })
            .collect();
        quantile_from_buckets(&buckets, self.max(), p)
    }
}

/// Bucket lower bound for an inclusive power-of-two upper bound.
fn bucket_lower_bound(upper: u64) -> u64 {
    if upper == 0 {
        0
    } else {
        (upper >> 1) + 1
    }
}

/// The `p`-quantile of a power-of-two-bucket histogram given its
/// `(inclusive upper bound, count)` pairs (ascending) and the largest
/// recorded sample, by linear interpolation within the target bucket.
/// The result is clamped to `max` so sparse top buckets cannot report
/// a value beyond anything actually observed.
pub fn quantile_from_buckets(buckets: &[(u64, u64)], max: u64, p: f64) -> u64 {
    let total: u64 = buckets.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return 0;
    }
    let p = p.clamp(0.0, 1.0);
    let target = ((p * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for &(upper, n) in buckets {
        if cum + n >= target {
            let lo = bucket_lower_bound(upper);
            let hi = if max > 0 { upper.min(max) } else { upper };
            let hi = hi.max(lo);
            let into = (target - cum) as f64 / n as f64;
            let value = lo as f64 + into * (hi - lo) as f64;
            return value.round() as u64;
        }
        cum += n;
    }
    max
}

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time value of one metric, captured by [`MetricsRegistry::snapshot`].
#[derive(Clone, PartialEq, Debug)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram reading: non-empty buckets as `(upper_bound, count)`
    /// pairs (`upper_bound` is inclusive, `2^k - 1`), plus aggregates.
    Histogram {
        /// Total samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Largest sample.
        max: u64,
        /// Non-empty `(inclusive upper bound, count)` buckets, ascending.
        buckets: Vec<(u64, u64)>,
    },
}

impl MetricValue {
    /// For histograms, the estimated `p`-quantile
    /// ([`quantile_from_buckets`]); `None` for counters and gauges.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        match self {
            MetricValue::Histogram { max, buckets, .. } => {
                Some(quantile_from_buckets(buckets, *max, p))
            }
            _ => None,
        }
    }
}

/// A sorted point-in-time capture of every metric in a registry.
#[derive(Clone, PartialEq, Debug)]
pub struct Snapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// True when no metrics were registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find(|(n, _)| n == name).and_then(|(_, v)| match v {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        })
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find(|(n, _)| n == name).and_then(|(_, v)| match v {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        })
    }

    /// The value named `name`, whatever its type.
    pub fn value(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// What happened between `earlier` and `self`: counters and
    /// histogram counts/sums/buckets are subtracted (saturating, so a
    /// restarted source degrades to "everything is new"), gauges keep
    /// their current reading (a gauge *is* a point-in-time value), and
    /// a histogram's `max` keeps the later lifetime max. Entries only
    /// present in `earlier` are dropped.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, value)| {
                let new_value = match (value, earlier.value(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (
                        MetricValue::Histogram { count, sum, max, buckets },
                        Some(MetricValue::Histogram {
                            count: then_count,
                            buckets: then_buckets,
                            sum: then_sum,
                            ..
                        }),
                    ) => {
                        let then_of = |upper: u64| {
                            then_buckets.iter().find(|(le, _)| *le == upper).map_or(0, |(_, n)| *n)
                        };
                        let buckets = buckets
                            .iter()
                            .filter_map(|(le, n)| {
                                let d = n.saturating_sub(then_of(*le));
                                if d == 0 {
                                    None
                                } else {
                                    Some((*le, d))
                                }
                            })
                            .collect();
                        MetricValue::Histogram {
                            count: count.saturating_sub(*then_count),
                            sum: sum.saturating_sub(*then_sum),
                            max: *max,
                            buckets,
                        }
                    }
                    _ => value.clone(),
                };
                (name.clone(), new_value)
            })
            .collect();
        Snapshot { entries }
    }

    /// Decode a snapshot previously encoded with [`Snapshot::to_json`]
    /// (for example one fetched over the wire from a svc `metrics`
    /// frame). Scalar ints decode as counters when non-negative and
    /// gauges when negative — the wire format does not distinguish
    /// them, and rendering/deltas treat both identically.
    pub fn from_json(json: &Json) -> Option<Snapshot> {
        let Json::Obj(fields) = json else { return None };
        let mut entries = Vec::with_capacity(fields.len());
        for (name, value) in fields {
            let metric = match value {
                Json::Int(v) if *v >= 0 => MetricValue::Counter(u64::try_from(*v).ok()?),
                Json::Int(v) => MetricValue::Gauge(i64::try_from(*v).ok()?),
                Json::Obj(_) => {
                    let count = value.get("count")?.as_u64()?;
                    let sum = value.get("sum")?.as_u64()?;
                    let max = value.get("max")?.as_u64()?;
                    let mut buckets = Vec::new();
                    for pair in value.get("buckets")?.as_arr()? {
                        let pair = pair.as_arr()?;
                        if pair.len() != 2 {
                            return None;
                        }
                        buckets.push((pair[0].as_u64()?, pair[1].as_u64()?));
                    }
                    MetricValue::Histogram { count, sum, max, buckets }
                }
                _ => return None,
            };
            entries.push((name.clone(), metric));
        }
        Some(Snapshot { entries })
    }

    /// Encode as a JSON object keyed by metric name.
    pub fn to_json(&self) -> Json {
        let fields = self
            .entries
            .iter()
            .map(|(name, value)| {
                let v = match value {
                    MetricValue::Counter(c) => Json::Int(i128::from(*c)),
                    MetricValue::Gauge(g) => Json::Int(i128::from(*g)),
                    MetricValue::Histogram { count, sum, max, buckets } => Json::Obj(vec![
                        ("count".to_string(), Json::Int(i128::from(*count))),
                        ("sum".to_string(), Json::Int(i128::from(*sum))),
                        ("max".to_string(), Json::Int(i128::from(*max))),
                        (
                            "buckets".to_string(),
                            Json::Arr(
                                buckets
                                    .iter()
                                    .map(|(le, n)| {
                                        Json::Arr(vec![
                                            Json::Int(i128::from(*le)),
                                            Json::Int(i128::from(*n)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                };
                (name.clone(), v)
            })
            .collect();
        Json::Obj(fields)
    }

    /// Render as aligned `name value` text lines for terminals.
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (name, value) in &self.entries {
            let _ = write!(out, "{name:width$}  ");
            match value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{g}");
                }
                MetricValue::Histogram { count, sum, max, buckets } => {
                    let mean = if *count == 0 { 0.0 } else { *sum as f64 / *count as f64 };
                    let p50 = quantile_from_buckets(buckets, *max, 0.50);
                    let p90 = quantile_from_buckets(buckets, *max, 0.90);
                    let p99 = quantile_from_buckets(buckets, *max, 0.99);
                    let _ = writeln!(
                        out,
                        "count={count} sum={sum} max={max} mean={mean:.1} \
                         p50={p50} p90={p90} p99={p99}"
                    );
                }
            }
        }
        out
    }
}

/// A named collection of metrics with get-or-register semantics.
///
/// Registration takes a mutex; the returned handles are lock-free.
/// Names are conventionally dot-separated, lowest-frequency component
/// first: `explore.dedup_hits`, `bridge.ops.register`, `sim.trials`.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it at zero if new.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// The gauge named `name`, registering it at zero if new.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicI64::new(0)))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// The histogram named `name`, registering it empty if new.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map.entry(name.to_string()).or_insert_with(|| {
            Metric::Histogram(Histogram(Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            })))
        }) {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Capture every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().expect("metrics registry poisoned");
        let entries = map
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => {
                        let buckets = h
                            .0
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(i, b)| {
                                let n = b.load(Ordering::Relaxed);
                                if n == 0 {
                                    return None;
                                }
                                // Bucket i holds values of bit length i:
                                // inclusive upper bound 2^i - 1.
                                let le = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                                Some((le, n))
                            })
                            .collect();
                        MetricValue::Histogram {
                            count: h.count(),
                            sum: h.sum(),
                            max: h.max(),
                            buckets,
                        }
                    }
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { entries }
    }

    /// Drop every registered metric (handles keep their storage alive
    /// but disappear from future snapshots).
    pub fn clear(&self) {
        self.inner.lock().expect("metrics registry poisoned").clear();
    }
}

/// The process-wide registry used by all built-in instrumentation.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x.total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("x.total").get(), 5, "same name shares storage");
        let g = reg.gauge("x.depth");
        g.set(7);
        g.add(-2);
        g.record_max(3);
        assert_eq!(g.get(), 5);
        g.record_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("x.sizes");
        for v in [0, 1, 1, 3, 8, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), u64::MAX);
        let snap = reg.snapshot();
        let MetricValue::Histogram { buckets, count, .. } = &snap.entries[0].1 else {
            panic!("expected histogram");
        };
        assert_eq!(*count, 6);
        // 0 → le 0; 1,1 → le 1; 3 → le 3; 8 → le 15; MAX → le MAX.
        assert_eq!(
            buckets,
            &vec![(0, 1), (1, 2), (3, 1), (15, 1), (u64::MAX, 1)]
        );
    }

    #[test]
    fn snapshot_is_sorted_and_queriable() {
        let reg = MetricsRegistry::new();
        reg.counter("b.second").add(2);
        reg.counter("a.first").inc();
        reg.gauge("c.third").set(-4);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "b.second", "c.third"]);
        assert_eq!(snap.counter("a.first"), Some(1));
        assert_eq!(snap.gauge("c.third"), Some(-4));
        assert_eq!(snap.counter("c.third"), None, "type mismatch is None");
        assert!(!snap.is_empty());
    }

    #[test]
    fn snapshot_encodes_to_json_and_text() {
        let reg = MetricsRegistry::new();
        reg.counter("n.ops").add(3);
        reg.histogram("n.sizes").observe(5);
        let snap = reg.snapshot();
        let json = snap.to_json().render();
        assert!(json.contains("\"n.ops\":3"), "{json}");
        assert!(json.contains("\"n.sizes\""), "{json}");
        crate::json::parse(&json).expect("snapshot JSON parses back");
        let text = snap.to_text();
        assert!(text.contains("n.ops"), "{text}");
        assert!(text.contains("count=1"), "{text}");
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q.us");
        for v in 1..=100u64 {
            h.observe(v);
        }
        // Exact values are bucket interpolations, so assert envelopes:
        // the p-quantile of 1..=100 is ~p*100 and each estimate must
        // land within the true value's bucket neighborhood.
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        assert!((32..=64).contains(&p50), "p50={p50}");
        assert!((64..=100).contains(&p90), "p90={p90}");
        assert!((90..=100).contains(&p99), "p99={p99}");
        assert!(p50 <= p90 && p90 <= p99, "quantiles are monotone");
        assert_eq!(h.quantile(1.0), 100, "p100 is the max");
        assert_eq!(reg.histogram("q.empty").quantile(0.99), 0, "empty histogram");
        // The snapshot-side estimator agrees with the handle-side one.
        let snap = reg.snapshot();
        assert_eq!(snap.value("q.us").and_then(|v| v.quantile(0.99)), Some(p99));
    }

    #[test]
    fn quantile_is_clamped_to_observed_max() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("q.sparse");
        h.observe(1025); // bucket upper bound 2047
        assert_eq!(h.quantile(0.99), 1025, "never reports beyond the observed max");
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_histograms() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("d.ops");
        let g = reg.gauge("d.depth");
        let h = reg.histogram("d.us");
        c.add(5);
        g.set(3);
        h.observe(10);
        let before = reg.snapshot();
        c.add(7);
        g.set(11);
        h.observe(10);
        h.observe(3000);
        let after = reg.snapshot();
        let delta = after.delta(&before);
        assert_eq!(delta.counter("d.ops"), Some(7));
        assert_eq!(delta.gauge("d.depth"), Some(11), "gauges keep the current reading");
        let Some(MetricValue::Histogram { count, sum, buckets, .. }) = delta.value("d.us") else {
            panic!("histogram survives the delta");
        };
        assert_eq!(*count, 2);
        assert_eq!(*sum, 3010);
        assert_eq!(buckets, &vec![(15, 1), (4095, 1)]);
        // A metric only present in `earlier` disappears from the delta.
        assert!(before.delta(&after).counter("d.ops") == Some(0));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = MetricsRegistry::new();
        reg.counter("r.ops").add(9);
        reg.gauge("r.neg").set(-4);
        reg.histogram("r.us").observe(100);
        let snap = reg.snapshot();
        let decoded = Snapshot::from_json(&snap.to_json()).expect("decodes");
        assert_eq!(decoded.counter("r.ops"), Some(9));
        assert_eq!(decoded.gauge("r.neg"), Some(-4));
        assert_eq!(
            decoded.value("r.us").and_then(|v| v.quantile(0.5)),
            snap.value("r.us").and_then(|v| v.quantile(0.5))
        );
        assert!(Snapshot::from_json(&Json::Arr(vec![])).is_none(), "non-object is rejected");
    }

    #[test]
    fn text_rendering_includes_quantile_columns() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("t.us");
        for v in 1..=100u64 {
            h.observe(v);
        }
        let text = reg.snapshot().to_text();
        assert!(text.contains("p50="), "{text}");
        assert!(text.contains("p90="), "{text}");
        assert!(text.contains("p99="), "{text}");
    }

    #[test]
    fn enable_flag_round_trips() {
        // Global state: restore it so other tests are unaffected.
        let before = metrics_enabled();
        set_metrics_enabled(true);
        assert!(metrics_enabled());
        set_metrics_enabled(false);
        assert!(!metrics_enabled());
        set_metrics_enabled(before);
    }

    #[test]
    fn clear_empties_future_snapshots() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("gone");
        c.inc();
        reg.clear();
        assert!(reg.snapshot().is_empty());
        c.inc(); // handle still works, just unregistered
        assert_eq!(c.get(), 2);
    }
}
