//! A minimal, dependency-free property-testing shim that is
//! **API-compatible with the subset of [proptest] this workspace
//! uses**. The build environment has no access to crates.io, so the
//! workspace vendors this stand-in instead of the real crate; test
//! files written against proptest compile unchanged.
//!
//! Scope (deliberately small):
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header and `name in strategy`
//!   parameters;
//! * strategies: integer ranges (`2usize..5`, `-5i64..=5`),
//!   [`any`] for primitive types and [`sample::Index`],
//!   [`collection::vec`], [`sample::select`], [`Just`],
//!   [`Strategy::prop_map`], and [`prop_oneof!`];
//! * assertions: [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`].
//!
//! Unlike real proptest there is **no shrinking** and no persistence:
//! failures report the case's seed so a run can be replayed by rerunning
//! the (fully deterministic) test binary. Generation is driven by a
//! fixed-keyed SplitMix64, so every `cargo test` run sees the same
//! inputs — a property the rest of this workspace relies on anyway.
//!
//! [proptest]: https://docs.rs/proptest

#![warn(missing_docs)]

use core::fmt;

/// Deterministic generator state handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one test case. Derivation is fixed so runs are
    /// reproducible.
    pub fn for_case(case: u64) -> Self {
        // Decorrelate consecutive case indices through one mix round.
        TestRng { state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED_CAFE_F00D_5EED }
    }

    /// Next 64 uniformly distributed bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n`. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Value generators. The real crate's `Strategy` is a tree of
/// shrinkable value sources; here it is simply "something that can
/// produce a value from a [`TestRng`]".
pub mod strategy {
    use super::TestRng;

    /// A source of generated values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> core::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (see [`prop_oneof!`]).
    #[derive(Debug)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of the given alternatives. Panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Types with a canonical "generate any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`](crate::any).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<A>(core::marker::PhantomData<A>);

    impl<A> Any<A> {
        pub(crate) fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

/// A strategy producing any value of `A` (primitives and
/// [`sample::Index`]).
pub fn any<A: strategy::Arbitrary>() -> strategy::Any<A> {
    strategy::Any::new()
}

/// Re-export of [`strategy::Just`] at the crate root, as in proptest.
pub use strategy::Just;
pub use strategy::Strategy;

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A length range for [`vec`], as in proptest: built from
    /// `usize` ranges (or a single exact length), so plain `0..6`
    /// literals infer as `usize`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty length range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `elem`.
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// `vec(elem, 1..4)`: vectors of 1–3 elements from `elem`.
    pub fn vec<S>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S>
    where
        S: Strategy,
    {
        VecStrategy { elem, len: len.into() }
    }

    impl<S> Strategy for VecStrategy<S>
    where
        S: Strategy,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.max - self.len.min) as u64 + 1;
            let n = self.len.min + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::strategy::{Arbitrary, Strategy};
    use super::TestRng;

    /// An index into a collection whose length is only known at use
    /// time: `ix.index(len)` is uniform in `0..len`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Map this index into `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index(0)");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Uniform choice of one element of `items`.
    #[derive(Clone, Debug)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// `select(items)`: a strategy choosing one element uniformly.
    /// Panics at generation time if `items` is empty.
    pub fn select<T: Clone>(items: impl Into<Vec<T>>) -> Select<T> {
        Select { items: items.into() }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.items.is_empty(), "select over an empty collection");
            let i = rng.below(self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

/// `prop::` paths, as re-exported by the real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The test runner: configuration, case errors, and the driving loop
/// used by the [`proptest!`] macro.
pub mod test_runner {
    use super::TestRng;

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
        /// Accepted for compatibility with the real crate's config;
        /// this shim does not shrink failing inputs.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_shrink_iters: 0 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case's inputs did not satisfy a [`prop_assume!`]
        /// precondition; the runner draws a fresh case instead.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Drive `f` until `config.cases` cases pass. Panics on the first
    /// failing case (no shrinking), reporting the case index so the
    /// deterministic run can be replayed.
    pub fn run_cases<F>(config: ProptestConfig, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while accepted < config.cases {
            let mut rng = TestRng::for_case(case);
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    let budget = config.cases.saturating_mul(16).saturating_add(256);
                    assert!(
                        rejected <= budget,
                        "too many prop_assume! rejections ({rejected}) — \
                         strategy and precondition are incompatible"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case #{case} failed: {msg}");
                }
            }
            case += 1;
        }
    }
}

pub use test_runner::{ProptestConfig, TestCaseError};

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Everything a proptest-style test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
    };
}

/// Define property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases($config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                let mut __case = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Choose uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Like `assert!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, "{:?} != {:?}", __l, __r)
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "{:?} != {:?}: {}", __l, __r, format!($($fmt)*)
                )
            }
        }
    };
}

/// Like `assert_ne!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(*__l != *__r, "{:?} == {:?}", __l, __r)
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l != *__r,
                    "{:?} == {:?}: {}", __l, __r, format!($($fmt)*)
                )
            }
        }
    };
}

/// Reject the current case unless `cond` holds (drawn again instead of
/// failing).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let s = 0u64..1000;
        let mut a = crate::TestRng::for_case(3);
        let mut b = crate::TestRng::for_case(3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(1);
        for _ in 0..200 {
            let v = (-5i64..=5).generate(&mut rng);
            assert!((-5..=5).contains(&v));
            let u = (2usize..5).generate(&mut rng);
            assert!((2..5).contains(&u));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro wires strategies, assume and assert together.
        #[test]
        fn macro_end_to_end(
            n in 1usize..6,
            xs in prop::collection::vec(any::<u8>(), 0..4),
            ix in any::<prop::sample::Index>(),
            flip in any::<bool>(),
        ) {
            prop_assume!(n != 3);
            prop_assert!((1..6).contains(&n));
            prop_assert!(xs.len() < 4);
            prop_assert_eq!(ix.index(n) < n, true);
            let choice = prop_oneof![Just(0u8), 1u8..3].generate(
                &mut crate::TestRng::for_case(n as u64),
            );
            let bound = if flip { 3 } else { 4 };
            prop_assert!(choice < bound);
        }
    }
}
