//! A minimal, dependency-free benchmarking shim that is
//! **API-compatible with the subset of [criterion] this workspace
//! uses**. The build environment has no access to crates.io, so the
//! workspace vendors this stand-in; the `crates/bench/benches/*` targets
//! compile unchanged.
//!
//! Timing is a plain wall-clock sample loop (warm-up round, then
//! `sample_size` timed samples of an adaptively chosen batch size) with
//! mean/min/max reported on stdout. There is no statistical analysis,
//! no HTML report, and no baseline comparison — the bench targets in
//! this workspace use Criterion for order-of-magnitude timings next to
//! the tables they print, and that is exactly what this provides.
//!
//! [criterion]: https://docs.rs/criterion

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement throughput annotation (accepted, unused).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `name` or `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{param}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId { id: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured
/// routine.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, measured: Vec::new() }
    }

    /// Measure `f`, recording per-iteration wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: aim for samples of >= ~1ms so the
        // clock resolution does not dominate very fast routines.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed();
        let batch = if once >= Duration::from_millis(1) {
            1
        } else {
            let per = once.as_nanos().max(1) as u64;
            (1_000_000 / per).clamp(1, 100_000) as usize
        };
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.measured.push(start.elapsed() / batch as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.measured.is_empty() {
            println!("bench {label:<44} (no samples)");
            return;
        }
        let total: Duration = self.measured.iter().sum();
        let mean = total / self.measured.len() as u32;
        let min = self.measured.iter().min().copied().unwrap_or_default();
        let max = self.measured.iter().max().copied().unwrap_or_default();
        println!(
            "bench {label:<44} mean {mean:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
            self.measured.len()
        );
    }
}

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; command-line filtering is not
    /// implemented.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Measure a single function.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&name.to_string());
        self
    }

    /// Accepted for compatibility; results are reported as each
    /// benchmark completes, so there is no deferred summary to print.
    pub fn final_summary(&self) {}
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Accepted for compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Measure `f` with the given input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Measure a named function within the group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Re-export of [`std::hint::black_box`], as in criterion.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| runs += 1);
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2).configure_from_args();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        for n in [1u32, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| n * 2);
            });
        }
        group.bench_function("named", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("fair", 4).to_string(), "fair/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
