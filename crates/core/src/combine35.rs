//! The Lemma 3.5 combiner and the Lemma 3.6 adversary — the general
//! historyless case behind Theorem 3.7.
//!
//! Lemma 3.5 combines a 0-deciding interruptible execution α (initial
//! object set V, process set 𝒫) with a 1-deciding one β (set W,
//! disjoint process set 𝒬), both starting at the same configuration,
//! into a single execution deciding both values:
//!
//! * **V ⊆ W**: execute α's first piece. Its nontrivial operations are
//!   confined to V ⊆ W, so β's opening block write to W obliterates
//!   them — β remains valid. If α already decided, run β and be done;
//!   otherwise recurse on α's remaining pieces.
//! * **V, W incomparable**: enlarge to U = V ∪ W. Processes poised at
//!   W − V (outside 𝒬 — β's *excess capacity*) extend 𝒫 to 𝒫′, and
//!   Lemma 3.4 builds a fresh interruptible execution α′ with initial
//!   set U. Whichever value α′ decides, it replaces the matching side
//!   (constructing the symmetric β′ when needed), and the recursion
//!   continues with strictly larger object sets.
//!
//! Lemma 3.6 instantiates this at the initial configuration with
//! V = W = ∅, half the processes holding input 0 (they form 𝒫) and
//! half holding 1 (𝒬): by validity α decides 0 and β decides 1, so the
//! combination breaks any purported consensus with enough processes —
//! which is Theorem 3.7's Ω(√n).
//!
//! Deviation note (recorded in DESIGN.md): the paper threads exact
//! excess-capacity arithmetic through every construction; this
//! implementation re-derives the needed poised processes concretely
//! from the pool at each recursion step and reports
//! [`IeError::InsufficientProcesses`] when the pool is genuinely too
//! small. The witnesses produced are verified by replay either way.

use std::collections::BTreeSet;

use randsync_model::{
    Configuration, Decision, Execution, ExploreLimits, ModelError, ObjectId, ProcessId,
    Protocol, Step,
};

use crate::interruptible::{
    construct_interruptible, ExcessCapacity, IeError, InterruptibleExecution,
};
use crate::poised::all_objects_historyless;
use crate::witness::InconsistencyWitness;

/// A growing execution over a fixed pool configuration (the general
/// case spawns no clones, so no weaving is needed).
#[derive(Clone, Debug)]
struct Run<'a, P: Protocol> {
    protocol: &'a P,
    config: Configuration<P::State>,
    steps: Vec<Step>,
}

impl<'a, P: Protocol> Run<'a, P> {
    fn new(protocol: &'a P, config: Configuration<P::State>) -> Self {
        Run { protocol, config, steps: Vec::new() }
    }

    /// Append a step verbatim.
    fn append(&mut self, step: Step) -> Result<(), ModelError> {
        self.config.step(self.protocol, step.pid, step.coin)?;
        self.steps.push(step);
        Ok(())
    }

    /// Append a block-write step, clamping its coin into the (possibly
    /// different) domain — the writer takes no further steps, so its
    /// post-write state is irrelevant.
    fn append_block_write(&mut self, step: Step) -> Result<(), ModelError> {
        let mut used = 0u32;
        self.config.step_with(self.protocol, step.pid, |domain| {
            used = step.coin.min(domain - 1);
            used
        })?;
        self.steps.push(Step::with_coin(step.pid, used));
        Ok(())
    }

    fn append_piece(&mut self, piece: &crate::interruptible::Piece) -> Result<(), ModelError> {
        for (step, _) in &piece.block_write {
            self.append_block_write(*step)?;
        }
        for step in &piece.body {
            self.append(*step)?;
        }
        Ok(())
    }

    fn append_all_pieces(&mut self, ie: &InterruptibleExecution) -> Result<(), ModelError> {
        for piece in &ie.pieces {
            self.append_piece(piece)?;
        }
        Ok(())
    }
}

/// Statistics from a general-case combination.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeneralStats {
    /// Subset-case piece executions.
    pub pieces_executed: usize,
    /// Incomparable-case resolutions (fresh Lemma 3.4 constructions).
    pub reconstructions: usize,
    /// Deepest recursion reached.
    pub max_depth: usize,
}

/// Why the general adversary failed.
#[derive(Clone, Debug)]
pub enum GeneralError {
    /// The protocol uses a non-historyless object; Theorem 3.7 does not
    /// apply (and the attack would be unsound).
    NotHistoryless,
    /// Extending the pool beyond the protocol's own process count
    /// requires a symmetric protocol.
    PoolNeedsSymmetry,
    /// An interruptible-execution construction failed.
    Construction(IeError),
    /// A replayed step failed (invariant violation).
    Model(ModelError),
    /// The recursion exceeded its depth cap.
    DepthExceeded,
    /// The final execution did not decide both values (a bug).
    Unverified(String),
}

impl From<IeError> for GeneralError {
    fn from(e: IeError) -> Self {
        GeneralError::Construction(e)
    }
}

impl From<ModelError> for GeneralError {
    fn from(e: ModelError) -> Self {
        GeneralError::Model(e)
    }
}

impl core::fmt::Display for GeneralError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GeneralError::NotHistoryless => {
                write!(f, "protocol uses non-historyless objects; theorem 3.7 does not apply")
            }
            GeneralError::PoolNeedsSymmetry => {
                write!(f, "extending the pool requires a symmetric protocol")
            }
            GeneralError::Construction(e) => write!(f, "construction failed: {e}"),
            GeneralError::Model(e) => write!(f, "replay failed: {e}"),
            GeneralError::DepthExceeded => write!(f, "combination recursion too deep"),
            GeneralError::Unverified(m) => write!(f, "witness failed verification: {m}"),
        }
    }
}

impl std::error::Error for GeneralError {}

/// What the general adversary produced.
#[derive(Clone, Debug)]
pub enum GeneralOutcome {
    /// A replay-verified execution deciding both values.
    Inconsistent {
        /// The witness.
        witness: InconsistencyWitness,
        /// Which cases fired.
        stats: GeneralStats,
    },
    /// A same-input-only interruptible execution decided the wrong
    /// value: a validity violation.
    InvalidExecution {
        /// The offending execution (replayable from the pool
        /// configuration).
        execution: Execution,
        /// The unanimous input of the participating processes.
        input: Decision,
        /// The value decided.
        decided: Decision,
    },
}

/// A pool size ample for this implementation's realization of the
/// Lemma 3.6 construction over `r` objects.
///
/// The paper's threshold is `3r² + r`; our pool-based realization
/// re-derives reservations concretely instead of threading the exact
/// capacity arithmetic, and is comfortable at twice that (see the
/// deviation note in the module docs and DESIGN.md).
pub fn ample_pool(r: usize) -> usize {
    2 * (3 * r * r + r)
}

/// Run the Lemma 3.6 adversary: break a historyless-object protocol by
/// combining a 0-deciding and a 1-deciding interruptible execution.
///
/// `pool` is the total number of processes made available (half with
/// input 0, half with input 1). Use [`ample_pool`] for a size at which
/// the construction is comfortable; smaller pools may still succeed or
/// may return [`GeneralError::Construction`] with an insufficiency
/// report — which is itself the space/process trade-off the lemma
/// quantifies.
///
/// # Errors
///
/// See [`GeneralError`].
pub fn attack_historyless<P: Protocol>(
    protocol: &P,
    pool: usize,
    limits: &ExploreLimits,
) -> Result<GeneralOutcome, GeneralError> {
    if !all_objects_historyless(protocol) {
        return Err(GeneralError::NotHistoryless);
    }
    if pool > protocol.num_processes() && !protocol.is_symmetric() {
        return Err(GeneralError::PoolNeedsSymmetry);
    }
    let pool = pool.max(2);
    let inputs: Vec<Decision> = (0..pool).map(|i| if i < pool / 2 { 0 } else { 1 }).collect();
    let base = Configuration::initial_with_pool(protocol, &inputs, pool);
    let p_set: BTreeSet<ProcessId> = (0..pool / 2).map(ProcessId).collect();
    let q_set: BTreeSet<ProcessId> = (pool / 2..pool).map(ProcessId).collect();

    // Lemma 3.6 applies Lemma 3.4 with excess capacity w̄ for W̄ where
    // W = ∅ — i.e. capacity r over the whole object set. The
    // construction withdraws spare poised processes at every
    // object-set growth, which is what the incomparable case of
    // Lemma 3.5 later consumes.
    let excess = capacity_for(protocol, &BTreeSet::new());
    let (alpha, _) = construct_interruptible(
        protocol,
        &base,
        BTreeSet::new(),
        p_set,
        &excess,
        limits,
    )?;
    if alpha.decides != 0 {
        return Ok(GeneralOutcome::InvalidExecution {
            execution: Execution::from_steps(alpha.steps()),
            input: 0,
            decided: alpha.decides,
        });
    }
    let (beta, _) = construct_interruptible(
        protocol,
        &base,
        BTreeSet::new(),
        q_set,
        &excess,
        limits,
    )?;
    if beta.decides != 1 {
        return Ok(GeneralOutcome::InvalidExecution {
            execution: Execution::from_steps(beta.steps()),
            input: 1,
            decided: beta.decides,
        });
    }

    let mut run = Run::new(protocol, base.clone());
    let mut stats = GeneralStats::default();
    combine_rec(&mut run, alpha, beta, limits, &mut stats, 0)?;

    let decisions = run.config.decisions();
    let zero = decisions
        .iter()
        .find(|(_, d)| *d == 0)
        .map(|(p, _)| *p)
        .ok_or_else(|| GeneralError::Unverified("no process decided 0".into()))?;
    let one = decisions
        .iter()
        .find(|(_, d)| *d == 1)
        .map(|(p, _)| *p)
        .ok_or_else(|| GeneralError::Unverified("no process decided 1".into()))?;
    let mut used: Vec<ProcessId> = run.steps.iter().map(|s| s.pid).collect();
    used.sort_unstable();
    used.dedup();
    let witness = InconsistencyWitness {
        inputs,
        execution: Execution::from_steps(run.steps.clone()),
        decides_zero: zero,
        decides_one: one,
        processes_used: used.len(),
    };
    witness.verify(protocol).map_err(|e| GeneralError::Unverified(e.to_string()))?;
    Ok(GeneralOutcome::Inconsistent { witness, stats })
}

/// Definition 3.2's parameter for a side facing `other`: capacity
/// `|other̄|` for the complement of `other`.
fn capacity_for<P: Protocol>(
    protocol: &P,
    other: &BTreeSet<ObjectId>,
) -> ExcessCapacity {
    let r = protocol.objects().len();
    let watched: BTreeSet<ObjectId> =
        (0..r).map(ObjectId).filter(|o| !other.contains(o)).collect();
    ExcessCapacity { spare: watched.len(), watched }
}

fn combine_rec<P: Protocol>(
    run: &mut Run<'_, P>,
    alpha: InterruptibleExecution,
    beta: InterruptibleExecution,
    limits: &ExploreLimits,
    stats: &mut GeneralStats,
    depth: usize,
) -> Result<(), GeneralError> {
    stats.max_depth = stats.max_depth.max(depth);
    let r = run.protocol.objects().len();
    if depth > 4 * r + 8 {
        return Err(GeneralError::DepthExceeded);
    }
    let v = alpha.initial_objects().clone();
    let w = beta.initial_objects().clone();

    if v.is_subset(&w) {
        subset_case(run, alpha, beta, limits, stats, depth)
    } else if w.is_subset(&v) {
        subset_case(run, beta, alpha, limits, stats, depth)
    } else {
        incomparable_case(run, alpha, beta, limits, stats, depth)
    }
}

/// V ⊆ W: execute α's first piece; recurse or finish with β.
fn subset_case<P: Protocol>(
    run: &mut Run<'_, P>,
    inner: InterruptibleExecution,
    outer: InterruptibleExecution,
    limits: &ExploreLimits,
    stats: &mut GeneralStats,
    depth: usize,
) -> Result<(), GeneralError> {
    run.append_piece(&inner.pieces[0]).map_err(GeneralError::Model)?;
    stats.pieces_executed += 1;
    if inner.pieces.len() == 1 {
        // α decided; β's opening block write to W ⊇ V obliterates
        // everything α did to shared memory.
        run.append_all_pieces(&outer).map_err(GeneralError::Model)?;
        stats.pieces_executed += outer.pieces.len();
        if run.config.is_inconsistent() {
            Ok(())
        } else {
            Err(GeneralError::Unverified(
                "subset-case splice did not decide both values".into(),
            ))
        }
    } else {
        combine_rec(run, inner.rest(), outer, limits, stats, depth + 1)
    }
}

/// Neither contains the other: rebuild one side with initial set
/// U = V ∪ W via Lemma 3.4, preserving process-set disjointness.
fn incomparable_case<P: Protocol>(
    run: &mut Run<'_, P>,
    alpha: InterruptibleExecution,
    beta: InterruptibleExecution,
    limits: &ExploreLimits,
    stats: &mut GeneralStats,
    depth: usize,
) -> Result<(), GeneralError> {
    stats.reconstructions += 1;
    let protocol = run.protocol;
    let v = alpha.initial_objects().clone();
    let w = beta.initial_objects().clone();
    let u: BTreeSet<ObjectId> = v.union(&w).copied().collect();
    let r = protocol.objects().len();

    // 𝒫′ = 𝒫 plus processes poised at W − V drawn from outside 𝒬
    // (β's excess capacity, realized concretely from the pool).
    let mut p_prime = alpha.processes.clone();
    for &obj in w.difference(&v) {
        let mut added = 0usize;
        for i in 0..run.config.num_processes() {
            if added > r {
                break;
            }
            let pid = ProcessId(i);
            if beta.processes.contains(&pid) || p_prime.contains(&pid) {
                continue;
            }
            if run.config.poised_at(protocol, pid) == Some(obj) {
                p_prime.insert(pid);
                added += 1;
            }
        }
    }

    // Per the lemma, α′ is built with excess capacity w̄ for W̄ — its
    // first piece's capacity check lands on U ∩ W̄ = V − W, whose
    // spares are exactly α's own earlier withdrawals (the p′ additions
    // above consumed only W − V spares).
    let excess_a = capacity_for(protocol, &w);
    let (alpha2, _) = construct_interruptible(
        protocol,
        &run.config,
        u.clone(),
        p_prime.clone(),
        &excess_a,
        limits,
    )?;
    if alpha2.decides == alpha.decides {
        return combine_rec(run, alpha2, beta, limits, stats, depth + 1);
    }

    // α′ decided β's value; construct the symmetric β′ (initial set U,
    // processes disjoint from both 𝒫 and 𝒫′).
    let mut q_prime = beta.processes.clone();
    for &obj in v.difference(&w) {
        let mut added = 0usize;
        for i in 0..run.config.num_processes() {
            if added > r {
                break;
            }
            let pid = ProcessId(i);
            if alpha.processes.contains(&pid)
                || p_prime.contains(&pid)
                || q_prime.contains(&pid)
            {
                continue;
            }
            if run.config.poised_at(protocol, pid) == Some(obj) {
                q_prime.insert(pid);
                added += 1;
            }
        }
    }
    let excess_b = capacity_for(protocol, &v);
    let (beta2, _) =
        construct_interruptible(protocol, &run.config, u, q_prime, &excess_b, limits)?;
    if beta2.decides == beta.decides {
        // α (0, V ⊆ U) against β′ (1, U).
        combine_rec(run, alpha, beta2, limits, stats, depth + 1)
    } else {
        // β′ decided 0 and α′ decided 1; both have initial set U.
        combine_rec(run, beta2, alpha2, limits, stats, depth + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::max_processes_historyless;
    use randsync_consensus::model_protocols::{CasModel, NaiveWriteRead, Optimistic};

    fn limits() -> ExploreLimits {
        ExploreLimits::default()
    }

    #[test]
    fn general_attack_breaks_the_naive_protocol() {
        let p = NaiveWriteRead::new(2);
        match attack_historyless(&p, 8, &limits()).expect("attack runs") {
            GeneralOutcome::Inconsistent { witness, stats } => {
                witness.verify(&p).unwrap();
                assert!(stats.pieces_executed >= 2);
            }
            GeneralOutcome::InvalidExecution { .. } => {
                panic!("naive protocol is valid; expected inconsistency")
            }
        }
    }

    #[test]
    fn general_attack_breaks_optimistic_protocols() {
        for r in 1..=3usize {
            let p = Optimistic::new(2, r);
            let pool = ample_pool(r);
            assert!(pool as u64 >= max_processes_historyless(r as u64));
            match attack_historyless(&p, pool, &limits()) {
                Ok(GeneralOutcome::Inconsistent { witness, .. }) => {
                    witness.verify(&p).unwrap();
                }
                Ok(GeneralOutcome::InvalidExecution { .. }) => {
                    panic!("optimistic is valid")
                }
                Err(e) => panic!("r={r}: {e}"),
            }
        }
    }

    #[test]
    fn general_attack_rejects_cas() {
        let p = CasModel::new(4);
        assert!(matches!(
            attack_historyless(&p, 8, &limits()),
            Err(GeneralError::NotHistoryless)
        ));
    }

    #[test]
    fn asymmetric_pool_extension_is_rejected() {
        let p = randsync_consensus::model_protocols::TasTwoModel;
        assert!(matches!(
            attack_historyless(&p, 10, &limits()),
            Err(GeneralError::PoolNeedsSymmetry)
        ));
    }

    #[test]
    fn error_display_is_nonempty() {
        for e in [
            GeneralError::NotHistoryless,
            GeneralError::PoolNeedsSymmetry,
            GeneralError::DepthExceeded,
            GeneralError::Unverified("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
