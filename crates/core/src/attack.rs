//! The Lemma 3.2 adversary: break any identical-process register
//! "consensus".
//!
//! "There is no implementation of consensus satisfying nondeterministic
//! solo termination from r read-write registers using r² − r + 2 or
//! more identical processes." The proof is constructive, and this
//! module runs it:
//!
//! 1. take a process P with input 0 and a process Q with input 1;
//! 2. obtain terminating solo executions α (by P) and β (by Q) — they
//!    exist by nondeterministic solo termination and must decide 0 and
//!    1 respectively by validity;
//! 3. if either contains no write, simply run one after the other
//!    (the write-free one is invisible to the other);
//! 4. otherwise cut both at their first writes: the read-only prefixes
//!    commute into a common configuration C, each side becomes a
//!    singleton block-write cover plus its solo continuation, and the
//!    Lemma 3.1 combiner ([`crate::combine31`]) splices them into an
//!    execution deciding both values.
//!
//! The result is a replay-verified [`InconsistencyWitness`].

use randsync_model::{
    Decision, Execution, Explorer, ObjectId, ProcessId, Protocol, Step,
};

use crate::combine31::{combine, CombineError, CombineLimits, CombineStats, Side};
use crate::poised::{all_objects_registers, block_write_steps};
use crate::weave::Weaver;
use crate::witness::InconsistencyWitness;

/// What the adversary produced.
#[derive(Clone, Debug)]
pub enum AttackOutcome {
    /// An execution deciding both 0 and 1 (the protocol violates
    /// consistency), with the proof-case statistics.
    Inconsistent {
        /// The replay-verified witness.
        witness: InconsistencyWitness,
        /// Which Lemma 3.1 cases fired.
        stats: CombineStats,
    },
    /// A solo execution in which a process decides a value that is not
    /// its own input while running entirely alone — a validity
    /// violation, found before any combination was necessary.
    InvalidSolo {
        /// The solo execution.
        execution: Execution,
        /// The process running solo.
        pid: ProcessId,
        /// Its input.
        input: Decision,
        /// What it decided.
        decided: Decision,
    },
}

/// Why the adversary failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttackError {
    /// The protocol is not symmetric; Section 3.1's cloning technique
    /// does not apply (use the general historyless machinery instead).
    NotSymmetric,
    /// The protocol uses objects other than plain read–write registers;
    /// Section 3.1 is register-specific.
    NotRegisters,
    /// No terminating solo execution was found within the exploration
    /// budget (the protocol may not satisfy nondeterministic solo
    /// termination, or the budget is too small).
    SoloSearchExhausted(ProcessId),
    /// The Lemma 3.1 combination failed.
    Combine(CombineError),
    /// The final witness did not verify (an internal bug — this should
    /// never escape the crate's test suite).
    Unverified(String),
}

impl From<CombineError> for AttackError {
    fn from(e: CombineError) -> Self {
        AttackError::Combine(e)
    }
}

impl core::fmt::Display for AttackError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AttackError::NotSymmetric => {
                write!(f, "protocol is not symmetric (identical processes required)")
            }
            AttackError::NotRegisters => {
                write!(f, "protocol uses non-register objects (section 3.1 is register-only)")
            }
            AttackError::SoloSearchExhausted(p) => {
                write!(f, "no terminating solo execution found for {p:?} within budget")
            }
            AttackError::Combine(e) => write!(f, "combination failed: {e}"),
            AttackError::Unverified(m) => write!(f, "witness failed verification: {m}"),
        }
    }
}

impl std::error::Error for AttackError {}

/// Run the Lemma 3.2 adversary against a symmetric register protocol.
///
/// On success the returned witness has been verified by replay. The
/// pool starts with two processes (inputs 0 and 1) and grows only by
/// cloning, exactly as in the paper; the witness's `processes_used`
/// reports how many processes the construction consumed.
///
/// # Errors
///
/// See [`AttackError`].
pub fn attack_identical<P: Protocol>(
    protocol: &P,
    limits: &CombineLimits,
) -> Result<AttackOutcome, AttackError> {
    if !protocol.is_symmetric() {
        return Err(AttackError::NotSymmetric);
    }
    if !all_objects_registers(protocol) {
        return Err(AttackError::NotRegisters);
    }

    let explorer = Explorer::new(limits.explore);
    let mut weaver = Weaver::new(protocol, vec![0, 1]);
    let p0 = ProcessId(0);
    let p1 = ProcessId(1);

    // Terminating solo executions from the initial configuration.
    let (alpha, a_decides) = explorer
        .solo_deciding(protocol, weaver.config(), p0)
        .ok_or(AttackError::SoloSearchExhausted(p0))?;
    if a_decides != 0 {
        return Ok(AttackOutcome::InvalidSolo {
            execution: alpha,
            pid: p0,
            input: 0,
            decided: a_decides,
        });
    }
    let (beta, b_decides) = explorer
        .solo_deciding(protocol, weaver.config(), p1)
        .ok_or(AttackError::SoloSearchExhausted(p1))?;
    if b_decides != 1 {
        return Ok(AttackOutcome::InvalidSolo {
            execution: beta,
            pid: p1,
            input: 1,
            decided: b_decides,
        });
    }

    // Locate each solo's first write.
    let first_write = |weaver: &Weaver<'_, P>,
                       steps: &[Step]|
     -> Result<Option<(usize, ObjectId)>, AttackError> {
        let mut scratch = weaver.clone();
        let specs = protocol.objects();
        for (idx, step) in steps.iter().enumerate() {
            let record =
                scratch.append(*step).map_err(|e| AttackError::Combine(e.into()))?;
            if let Some((obj, op, _)) = record.op {
                if !specs[obj.0].kind.is_trivial(&op) {
                    return Ok(Some((idx, obj)));
                }
            }
        }
        Ok(None)
    };

    let a_first = first_write(&weaver, alpha.steps())?;
    let b_first = first_write(&weaver, beta.steps())?;

    // If either solo never writes, it is invisible to the other: run
    // the write-free one first, the other after it.
    match (a_first, b_first) {
        (None, _) => {
            return splice_trivially(weaver, alpha.steps(), beta.steps());
        }
        (_, None) => {
            return splice_trivially(weaver, beta.steps(), alpha.steps());
        }
        _ => {}
    }
    let (ka, va) = a_first.expect("handled above");
    let (kb, vb) = b_first.expect("handled above");

    // γ: both read-only prefixes, in either order (they commute — no
    // writes).
    weaver.append_all(&alpha.steps()[..ka]).map_err(CombineError::from)?;
    weaver.append_all(&beta.steps()[..kb]).map_err(CombineError::from)?;

    let side0 = Side {
        cover: vec![(alpha.steps()[ka], va)],
        objects: [va].into(),
        solo: p0,
        cont: alpha.steps()[ka + 1..].to_vec(),
        decides: 0,
    };
    let side1 = Side {
        cover: vec![(beta.steps()[kb], vb)],
        objects: [vb].into(),
        solo: p1,
        cont: beta.steps()[kb + 1..].to_vec(),
        decides: 1,
    };

    let mut stats = CombineStats::default();
    combine(&mut weaver, side0, side1, limits, &mut stats)?;
    finish(weaver, stats)
}

/// The degenerate combination when one solo contains no writes.
fn splice_trivially<P: Protocol>(
    mut weaver: Weaver<'_, P>,
    first: &[Step],
    second: &[Step],
) -> Result<AttackOutcome, AttackError> {
    weaver.append_all(first).map_err(CombineError::from)?;
    weaver.append_all(second).map_err(CombineError::from)?;
    finish(weaver, CombineStats::default())
}

/// Package and verify the witness.
fn finish<P: Protocol>(
    weaver: Weaver<'_, P>,
    stats: CombineStats,
) -> Result<AttackOutcome, AttackError> {
    let decisions = weaver.config().decisions();
    let zero = decisions
        .iter()
        .find(|(_, d)| *d == 0)
        .map(|(p, _)| *p)
        .ok_or_else(|| AttackError::Unverified("no process decided 0".into()))?;
    let one = decisions
        .iter()
        .find(|(_, d)| *d == 1)
        .map(|(p, _)| *p)
        .ok_or_else(|| AttackError::Unverified("no process decided 1".into()))?;
    let witness = InconsistencyWitness {
        inputs: weaver.inputs().to_vec(),
        execution: weaver.execution(),
        decides_zero: zero,
        decides_one: one,
        processes_used: weaver.processes_used(),
    };
    witness
        .verify(weaver.protocol())
        .map_err(|e| AttackError::Unverified(e.to_string()))?;
    Ok(AttackOutcome::Inconsistent { witness, stats })
}

/// Convenience: run the attack and return just the witness, panicking
/// on validity violations (useful in benches over protocols known to be
/// consistent-but-attackable).
///
/// # Errors
///
/// See [`attack_identical`].
///
/// # Panics
///
/// Panics if the protocol turned out to violate validity instead.
pub fn attack_for_witness<P: Protocol>(
    protocol: &P,
    limits: &CombineLimits,
) -> Result<(InconsistencyWitness, CombineStats), AttackError> {
    match attack_identical(protocol, limits)? {
        AttackOutcome::Inconsistent { witness, stats } => Ok((witness, stats)),
        AttackOutcome::InvalidSolo { .. } => {
            panic!("protocol violates validity; no combination was needed")
        }
    }
}

/// [`attack_for_witness`] followed by schedule shrinking: run the
/// Lemma 3.2 adversary and hand back the **minimized** witness (steps
/// deleted and independent neighbors commuted until a fixpoint,
/// re-verified) together with what the shrink removed. The constructed
/// witness carries clone scaffolding — block writes covering every
/// register, spliced solo runs — that the minimal counterexample
/// usually does not need, so this is the form worth archiving as a
/// flight trace.
///
/// # Errors
///
/// See [`attack_identical`].
///
/// # Panics
///
/// Panics if the protocol turned out to violate validity instead.
pub fn attack_minimized<P: Protocol>(
    protocol: &P,
    limits: &CombineLimits,
) -> Result<(InconsistencyWitness, crate::witness::MinimizeStats), AttackError> {
    let (witness, _) = attack_for_witness(protocol, limits)?;
    Ok(witness.minimize_report(protocol))
}

/// A reference to keep `block_write_steps` exercised from this module's
/// tests (the combiner builds its block writes inline).
#[allow(dead_code)]
fn _block_write_alias(cover: &[(ProcessId, ObjectId)]) -> Execution {
    block_write_steps(cover)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::max_identical_processes;
    use randsync_consensus::model_protocols::{NaiveWriteRead, Optimistic};

    #[test]
    fn naive_write_read_is_broken() {
        let p = NaiveWriteRead::new(2);
        let (witness, stats) =
            attack_for_witness(&p, &CombineLimits::default()).expect("attack succeeds");
        witness.verify(&p).unwrap();
        assert!(stats.base_splices >= 1);
        // The naive protocol has one register; the bound says at most
        // r²−r+1 = 1 identical process — so breaking it with a handful
        // is consistent with Theorem 3.3.
        assert!(witness.processes_used as u64 > max_identical_processes(1));
    }

    #[test]
    fn optimistic_protocols_are_broken_for_every_register_count() {
        for r in 1..=4 {
            let p = Optimistic::new(2, r);
            let (witness, stats) =
                attack_for_witness(&p, &CombineLimits::default()).unwrap_or_else(|e| {
                    panic!("attack on r={r} failed: {e}");
                });
            witness.verify(&p).unwrap();
            // Figure-3 style splits occur as soon as the solo writes
            // beyond the first register.
            if r >= 2 {
                assert!(
                    stats.subset_splits + stats.incomparable_resolutions > 0,
                    "r={r}: expected nontrivial proof cases, got {stats:?}"
                );
            }
        }
    }

    #[test]
    fn process_usage_respects_the_lemma31_budget() {
        // Lemma 3.1 bounds the processes used by
        // r² − r + (3v + 3w − v² − w²)/2 with v = w = 1 initially:
        // r² − r + 2.
        for r in 1..=4u64 {
            let p = Optimistic::new(2, r as usize);
            let (witness, _) = attack_for_witness(&p, &CombineLimits::default()).unwrap();
            let budget = r * r - r + 2;
            assert!(
                (witness.processes_used as u64) <= budget,
                "r={r}: used {} > budget {budget}",
                witness.processes_used
            );
        }
    }

    #[test]
    fn attack_rejects_non_register_protocols() {
        let p = randsync_consensus::model_protocols::CasModel::new(2);
        assert_eq!(
            attack_identical(&p, &CombineLimits::default()).unwrap_err(),
            AttackError::NotRegisters
        );
    }

    #[test]
    fn attack_rejects_asymmetric_protocols() {
        let p = randsync_consensus::model_protocols::TasTwoModel;
        assert_eq!(
            attack_identical(&p, &CombineLimits::default()).unwrap_err(),
            AttackError::NotSymmetric
        );
    }

    #[test]
    fn depth_limit_is_honoured() {
        // A depth cap of zero cannot accommodate the recursion the
        // 3-register protocol needs; the combiner reports it cleanly.
        let p = Optimistic::new(2, 3);
        let limits = CombineLimits { max_depth: 0, ..CombineLimits::default() };
        match attack_identical(&p, &limits) {
            Err(AttackError::Combine(crate::combine31::CombineError::DepthExceeded)) => {}
            other => panic!("expected DepthExceeded, got {other:?}"),
        }
    }

    #[test]
    fn tiny_solo_budgets_fail_cleanly() {
        let p = Optimistic::new(2, 2);
        let limits = CombineLimits {
            explore: randsync_model::ExploreLimits { max_configs: 1, max_depth: 1 },
            ..CombineLimits::default()
        };
        assert!(matches!(
            attack_identical(&p, &limits),
            Err(AttackError::SoloSearchExhausted(_))
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        for e in [
            AttackError::NotSymmetric,
            AttackError::NotRegisters,
            AttackError::SoloSearchExhausted(ProcessId(0)),
            AttackError::Unverified("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
