//! Section 4: the separation between deterministic and randomized
//! power, as queryable data.
//!
//! The deterministic "wait-free hierarchy" ranks primitives by the
//! largest n for which they solve n-process consensus deterministically
//! (Herlihy \[20\]). The paper's randomized measure ranks them instead by
//! the **number of object instances** required for randomized
//! n-process consensus. The two orders disagree — that disagreement is
//! the paper's headline:
//!
//! * *swap* and *fetch&add* both have deterministic consensus number 2,
//!   yet one fetch&add register solves randomized n-consensus
//!   (Theorem 4.4) while Ω(√n) swap registers are needed
//!   (Theorem 3.7);
//! * *compare&swap* (deterministically universal) and *fetch&add*
//!   (deterministically weak) are **equivalent** under the randomized
//!   measure: one instance each.

use randsync_model::ObjectKind;

use crate::bounds::{min_historyless_objects, registers_upper_bound};

/// The deterministic consensus number of a primitive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConsensusNumber {
    /// Solves deterministic wait-free consensus for exactly this many
    /// processes.
    Finite(u64),
    /// Solves deterministic consensus for any number of processes
    /// (Herlihy's "universal" level, e.g. compare&swap).
    Infinite,
}

impl core::fmt::Display for ConsensusNumber {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConsensusNumber::Finite(k) => write!(f, "{k}"),
            ConsensusNumber::Infinite => write!(f, "∞"),
        }
    }
}

/// An asymptotic space bound, evaluable at a concrete n.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpaceBound {
    /// A constant number of instances.
    Constant(u64),
    /// Θ(√n) instances (evaluated as the paper's exact threshold
    /// inverse).
    SqrtN,
    /// O(n) instances.
    LinearN,
}

impl SpaceBound {
    /// Evaluate the bound for `n` processes.
    pub fn eval(&self, n: u64) -> u64 {
        match self {
            SpaceBound::Constant(c) => *c,
            SpaceBound::SqrtN => min_historyless_objects(n),
            SpaceBound::LinearN => registers_upper_bound(n),
        }
    }
}

impl core::fmt::Display for SpaceBound {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SpaceBound::Constant(c) => write!(f, "{c}"),
            SpaceBound::SqrtN => write!(f, "Θ(√n)"),
            SpaceBound::LinearN => write!(f, "O(n)"),
        }
    }
}

/// One row of the separation table.
#[derive(Clone, Debug)]
pub struct PrimitiveProfile {
    /// The primitive.
    pub kind: ObjectKind,
    /// Whether it is historyless (the lower bound's hypothesis).
    pub historyless: bool,
    /// Its deterministic consensus number.
    pub consensus_number: ConsensusNumber,
    /// Instances sufficient for randomized n-process consensus.
    pub randomized_upper: SpaceBound,
    /// Instances necessary for randomized n-process consensus.
    pub randomized_lower: SpaceBound,
    /// Where the bounds come from.
    pub provenance: &'static str,
}

impl PrimitiveProfile {
    /// Whether upper and lower bounds match asymptotically at `n`
    /// within the paper's gap (√n lower vs n upper for historyless —
    /// the paper conjectures Θ(n)).
    pub fn bounds_consistent(&self, n: u64) -> bool {
        self.randomized_lower.eval(n) <= self.randomized_upper.eval(n)
    }
}

/// The Section 4 separation table, one row per primitive the paper
/// discusses.
pub fn separation_table() -> Vec<PrimitiveProfile> {
    vec![
        PrimitiveProfile {
            kind: ObjectKind::Register,
            historyless: true,
            consensus_number: ConsensusNumber::Finite(1),
            randomized_upper: SpaceBound::LinearN,
            randomized_lower: SpaceBound::SqrtN,
            provenance: "upper: Aspnes-Herlihy [9] / our snapshot-counter walk; \
                         lower: Theorem 3.7",
        },
        PrimitiveProfile {
            kind: ObjectKind::SwapRegister,
            historyless: true,
            consensus_number: ConsensusNumber::Finite(2),
            randomized_upper: SpaceBound::LinearN,
            randomized_lower: SpaceBound::SqrtN,
            provenance: "upper: swap subsumes read-write; lower: Theorem 3.7 — \
                         the paper's headline separation vs fetch&add",
        },
        PrimitiveProfile {
            kind: ObjectKind::TestAndSet,
            historyless: true,
            consensus_number: ConsensusNumber::Finite(2),
            randomized_upper: SpaceBound::LinearN,
            randomized_lower: SpaceBound::SqrtN,
            provenance: "upper: O(n·w) flags simulate registers (with READ); \
                         lower: Theorem 3.7",
        },
        PrimitiveProfile {
            kind: ObjectKind::FetchAdd,
            historyless: false,
            consensus_number: ConsensusNumber::Finite(2),
            randomized_upper: SpaceBound::Constant(1),
            randomized_lower: SpaceBound::Constant(1),
            provenance: "Theorem 4.4 (one fetch&add register suffices)",
        },
        PrimitiveProfile {
            kind: ObjectKind::FetchIncrement,
            historyless: false,
            consensus_number: ConsensusNumber::Finite(2),
            randomized_upper: SpaceBound::Constant(1),
            randomized_lower: SpaceBound::Constant(1),
            provenance: "Theorem 4.4",
        },
        PrimitiveProfile {
            kind: ObjectKind::FetchDecrement,
            historyless: false,
            consensus_number: ConsensusNumber::Finite(2),
            randomized_upper: SpaceBound::Constant(1),
            randomized_lower: SpaceBound::Constant(1),
            provenance: "Theorem 4.4",
        },
        PrimitiveProfile {
            kind: ObjectKind::Counter,
            historyless: false,
            consensus_number: ConsensusNumber::Finite(1),
            randomized_upper: SpaceBound::Constant(1),
            randomized_lower: SpaceBound::Constant(1),
            provenance: "Theorem 4.2 (Aspnes): one bounded counter suffices",
        },
        PrimitiveProfile {
            kind: ObjectKind::BoundedCounter { lo: -6, hi: 6 },
            historyless: false,
            consensus_number: ConsensusNumber::Finite(1),
            randomized_upper: SpaceBound::Constant(1),
            randomized_lower: SpaceBound::Constant(1),
            provenance: "Theorem 4.2",
        },
        PrimitiveProfile {
            kind: ObjectKind::CompareSwap,
            historyless: false,
            consensus_number: ConsensusNumber::Infinite,
            randomized_upper: SpaceBound::Constant(1),
            randomized_lower: SpaceBound::Constant(1),
            provenance: "Herlihy [20, Thm 5]: one bounded CAS register, \
                         deterministically",
        },
    ]
}

/// Corollaries 4.1 / 4.3 / 4.5: the number of historyless objects
/// needed by any randomized non-blocking implementation of `target`
/// for `n` processes. `None` when the paper's argument does not apply
/// (i.e. no single instance of `target` solves randomized consensus).
pub fn implementation_lower_bound(target: ObjectKind, n: u64) -> Option<u64> {
    let single_instance_suffices = matches!(
        target,
        ObjectKind::CompareSwap
            | ObjectKind::Counter
            | ObjectKind::BoundedCounter { .. }
            | ObjectKind::FetchAdd
            | ObjectKind::FetchIncrement
            | ObjectKind::FetchDecrement
    );
    single_instance_suffices.then(|| min_historyless_objects(n))
}

/// Render the separation table for `n` processes, evaluating the
/// asymptotic bounds (used by the `separation_table` bench and the
/// `space_separation` example).
pub fn render_table(n: u64) -> String {
    use core::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<28} {:>12} {:>12} {:>10} {:>10}",
        "primitive", "historyless", "det. cons#", "rand ≤", "rand ≥"
    );
    for p in separation_table() {
        let _ = writeln!(
            s,
            "{:<28} {:>12} {:>12} {:>10} {:>10}",
            p.kind.name(),
            p.historyless,
            p.consensus_number.to_string(),
            p.randomized_upper.eval(n),
            p.randomized_lower.eval(n),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn historyless_flags_match_the_kind_algebra() {
        for p in separation_table() {
            assert_eq!(p.historyless, p.kind.is_historyless(), "{}", p.kind.name());
        }
    }

    #[test]
    fn the_headline_separation_swap_vs_fetch_add() {
        let table = separation_table();
        let swap = table.iter().find(|p| p.kind == ObjectKind::SwapRegister).unwrap();
        let fa = table.iter().find(|p| p.kind == ObjectKind::FetchAdd).unwrap();
        // Same deterministic power...
        assert_eq!(swap.consensus_number, fa.consensus_number);
        // ...different randomized space, and the gap grows with n.
        for n in [16u64, 256, 4096] {
            assert_eq!(fa.randomized_lower.eval(n), 1);
            assert!(swap.randomized_lower.eval(n) > fa.randomized_lower.eval(n));
        }
        assert!(swap.randomized_lower.eval(4096) > swap.randomized_lower.eval(16));
    }

    #[test]
    fn cas_and_fetch_add_are_equivalent_randomized() {
        let table = separation_table();
        let cas = table.iter().find(|p| p.kind == ObjectKind::CompareSwap).unwrap();
        let fa = table.iter().find(|p| p.kind == ObjectKind::FetchAdd).unwrap();
        // Deterministically incomparable...
        assert_eq!(cas.consensus_number, ConsensusNumber::Infinite);
        assert_eq!(fa.consensus_number, ConsensusNumber::Finite(2));
        // ...randomized-space equivalent (Theorem 4.4's point).
        for n in [4u64, 64, 1024] {
            assert_eq!(cas.randomized_upper.eval(n), fa.randomized_upper.eval(n));
        }
    }

    #[test]
    fn every_row_has_consistent_bounds() {
        for p in separation_table() {
            for n in [2u64, 10, 100, 10_000] {
                assert!(p.bounds_consistent(n), "{} at n={n}", p.kind.name());
            }
        }
    }

    #[test]
    fn corollaries_apply_exactly_to_single_instance_solvers() {
        assert!(implementation_lower_bound(ObjectKind::CompareSwap, 100).is_some());
        assert!(implementation_lower_bound(ObjectKind::Counter, 100).is_some());
        assert!(implementation_lower_bound(ObjectKind::FetchAdd, 100).is_some());
        assert!(implementation_lower_bound(ObjectKind::Register, 100).is_none());
        assert!(implementation_lower_bound(ObjectKind::SwapRegister, 100).is_none());
        assert_eq!(
            implementation_lower_bound(ObjectKind::FetchAdd, 10_000),
            Some(min_historyless_objects(10_000))
        );
    }

    #[test]
    fn rendered_table_mentions_every_primitive() {
        let s = render_table(1024);
        for p in separation_table() {
            assert!(s.contains(p.kind.name()), "missing {}", p.kind.name());
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(ConsensusNumber::Infinite.to_string(), "∞");
        assert_eq!(ConsensusNumber::Finite(2).to_string(), "2");
        assert_eq!(SpaceBound::Constant(1).to_string(), "1");
        assert_eq!(SpaceBound::SqrtN.to_string(), "Θ(√n)");
        assert_eq!(SpaceBound::LinearN.to_string(), "O(n)");
    }
}
