//! # randsync-core
//!
//! The contribution of Fich, Herlihy and Shavit's *"On the Space
//! Complexity of Randomized Synchronization"* (PODC 1993), made
//! executable:
//!
//! * [`bounds`] — the paper's closed forms: Theorem 3.3's
//!   `r² − r + 1` identical-process ceiling, Lemma 3.6's `3r² + r`
//!   historyless threshold and its Ω(√n) inverse (Theorem 3.7), and the
//!   Theorem 2.1 composition bound `h(n) ≥ g(n)/f(n)`;
//! * [`poised`] — poised processes and **block writes** (Section 3's
//!   basic tool for fixing the values of a set of historyless objects);
//! * [`weave`] — the Section 3.1 **cloning** technique as an executable
//!   transformation: duplicate steps woven into an execution in
//!   lockstep are invisible to every other process, so clones can be
//!   left behind poised to re-perform past writes;
//! * [`combine31`] / [`attack`] — Lemma 3.1 and Lemma 3.2 as a working
//!   adversary: given any symmetric register protocol that claims to
//!   solve consensus while satisfying nondeterministic solo
//!   termination, *construct* an execution that decides both 0 and 1
//!   (Figures 1–4 of the paper, replayed concretely);
//! * [`interruptible`] / [`combine35`] — Definitions 3.1/3.2 and
//!   Lemmas 3.4/3.5: interruptible executions with excess capacity over
//!   arbitrary historyless objects, and their combination (the general
//!   case behind Theorem 3.7);
//! * [`witness`] — replay-verified [`InconsistencyWitness`]es: every
//!   claim the adversary makes is checked by re-executing the trace
//!   from the initial configuration;
//! * [`hierarchy`] — Section 4's separation results as queryable data:
//!   deterministic consensus numbers versus randomized space, with the
//!   corollaries 4.1/4.3/4.5 derived through Theorem 2.1.
//!
//! ## Example: the bounds
//!
//! ```
//! use randsync_core::bounds;
//!
//! // Theorem 3.3: at most r² − r + 1 identical processes can solve
//! // randomized consensus using r read–write registers.
//! assert_eq!(bounds::max_identical_processes(3), 7);
//!
//! // Theorem 3.7: Ω(√n) historyless objects are necessary.
//! let r = bounds::min_historyless_objects(10_000);
//! assert!(r * r >= 10_000 / 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attack;
pub mod bounds;
pub mod combine31;
pub mod combine35;
pub mod hierarchy;
pub mod interruptible;
pub mod paper_map;
pub mod poised;
pub mod weave;
pub mod witness;

pub use attack::{attack_identical, attack_minimized, AttackError, AttackOutcome};
pub use combine35::{ample_pool, attack_historyless, GeneralError, GeneralOutcome, GeneralStats};
pub use bounds::*;
pub use hierarchy::{separation_table, PrimitiveProfile, SpaceBound};
pub use interruptible::{ExcessCapacity, InterruptibleExecution, Piece};
pub use weave::Weaver;
pub use witness::{InconsistencyWitness, MinimizeStats};
