//! The Lemma 3.1 combiner: cutting and splicing executions.
//!
//! Lemma 3.1 is the constructive heart of the Section 3.1 lower bound.
//! Given a configuration C with
//!
//! * a set 𝒫 of processes poised at a register set V such that, after a
//!   block write to V, some process of 𝒫 has a solo execution α
//!   deciding 0, and
//! * a disjoint set 𝒬 poised at W with the symmetric solo execution β
//!   deciding 1,
//!
//! it produces an execution from C that decides **both** values. The
//! proof is a recursion on three cases, which this module implements
//! literally (the figures refer to the paper):
//!
//! * **V ⊆ W, α's writes all inside W** (Figure 2 / the base splice of
//!   Figure 1): run `block-write(V) · α · block-write(W) · β`. The
//!   block write to W obliterates every trace of the 0-deciding run, so
//!   β proceeds as if it never happened.
//! * **V ⊆ W, α first writes some R ∉ W** (Figure 3): run α up to just
//!   before that write, leave *clones* poised to re-perform the last
//!   write to each register of V, and recurse with V' = V ∪ {R} — the
//!   write to R becomes part of the next block write.
//! * **V, W incomparable** (Figure 4): clone 𝒬's processes poised at
//!   W − V to build a block-write cover of U = V ∪ W, obtain (by
//!   nondeterministic solo termination) a solo execution γ deciding
//!   after that block write, and recurse with the γ-side replacing
//!   whichever side γ agrees with — using fresh clones whenever
//!   disjointness demands them.
//!
//! Everything happens inside a [`Weaver`], so the result is a concrete,
//! replayable execution.

use std::collections::BTreeSet;

use randsync_model::{
    Decision, Explorer, ExploreLimits, ModelError, ObjectId, ProcessId, Protocol, Step,
};

use crate::weave::Weaver;

/// One side of the combination: a block-write cover of `objects`
/// together with the solo continuation that decides `decides` after
/// the block write.
#[derive(Clone, Debug)]
pub struct Side {
    /// The block-write cover: one poised process per object, with the
    /// coin its write-step transition will consume.
    pub cover: Vec<(Step, ObjectId)>,
    /// The object set V this side's block write fixes.
    pub objects: BTreeSet<ObjectId>,
    /// The process whose solo continuation decides.
    pub solo: ProcessId,
    /// The solo continuation (steps of `solo` only), valid immediately
    /// after the block write.
    pub cont: Vec<Step>,
    /// The value the continuation decides.
    pub decides: Decision,
}

impl Side {
    /// The processes participating in this side (cover ∪ solo).
    pub fn processes(&self) -> BTreeSet<ProcessId> {
        let mut s: BTreeSet<ProcessId> = self.cover.iter().map(|(st, _)| st.pid).collect();
        s.insert(self.solo);
        s
    }
}

/// Counters describing which proof cases fired — the quantities the
/// Figure 2–4 benches report.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CombineStats {
    /// Base splices performed (Figure 1/2's final combination).
    pub base_splices: usize,
    /// Subset-case splits (Figure 3): α cut at a write outside W.
    pub subset_splits: usize,
    /// Incomparable-case resolutions (Figure 4).
    pub incomparable_resolutions: usize,
    /// Clones spawned in total.
    pub clones_spawned: usize,
    /// Deepest recursion reached.
    pub max_depth: usize,
}

/// Budgets for the combiner's searches and recursion.
#[derive(Clone, Copy, Debug)]
pub struct CombineLimits {
    /// Budgets for the nondeterministic-solo-termination searches.
    pub explore: ExploreLimits,
    /// Recursion depth cap (the proof needs at most ~2r levels).
    pub max_depth: usize,
}

impl Default for CombineLimits {
    fn default() -> Self {
        CombineLimits { explore: ExploreLimits::default(), max_depth: 64 }
    }
}

/// Why a combination failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CombineError {
    /// A step could not be applied (indicates an invariant violation).
    Model(ModelError),
    /// No terminating solo execution was found within the exploration
    /// budget — either the budget is too small or the protocol does not
    /// satisfy nondeterministic solo termination.
    SoloSearchExhausted,
    /// The recursion exceeded its depth cap.
    DepthExceeded,
    /// An internal invariant failed (a bug, or a protocol outside the
    /// lemma's hypotheses).
    Internal(&'static str),
}

impl From<ModelError> for CombineError {
    fn from(e: ModelError) -> Self {
        CombineError::Model(e)
    }
}

impl core::fmt::Display for CombineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CombineError::Model(e) => write!(f, "model error during combination: {e}"),
            CombineError::SoloSearchExhausted => {
                write!(f, "no terminating solo execution found within budget")
            }
            CombineError::DepthExceeded => write!(f, "combiner recursion depth exceeded"),
            CombineError::Internal(m) => write!(f, "combiner invariant violated: {m}"),
        }
    }
}

impl std::error::Error for CombineError {}

/// Combine two sides into an inconsistent execution, appending to
/// `weaver` until its configuration decides both values.
///
/// # Errors
///
/// See [`CombineError`].
pub fn combine<P: Protocol>(
    weaver: &mut Weaver<'_, P>,
    side_a: Side,
    side_b: Side,
    limits: &CombineLimits,
    stats: &mut CombineStats,
) -> Result<(), CombineError> {
    combine_rec(weaver, side_a, side_b, limits, stats, 0)
}

fn combine_rec<P: Protocol>(
    weaver: &mut Weaver<'_, P>,
    side_a: Side,
    side_b: Side,
    limits: &CombineLimits,
    stats: &mut CombineStats,
    depth: usize,
) -> Result<(), CombineError> {
    stats.max_depth = stats.max_depth.max(depth);
    if depth > limits.max_depth {
        return Err(CombineError::DepthExceeded);
    }
    if side_a.objects.is_subset(&side_b.objects) {
        subset_case(weaver, side_a, side_b, limits, stats, depth)
    } else if side_b.objects.is_subset(&side_a.objects) {
        subset_case(weaver, side_b, side_a, limits, stats, depth)
    } else {
        incomparable_case(weaver, side_a, side_b, limits, stats, depth)
    }
}

/// V ⊆ W: either splice directly (base case, Figure 2) or cut α at its
/// first write outside W (Figure 3) and recurse.
fn subset_case<P: Protocol>(
    weaver: &mut Weaver<'_, P>,
    inner: Side,
    outer: Side,
    limits: &CombineLimits,
    stats: &mut CombineStats,
    depth: usize,
) -> Result<(), CombineError> {
    // Probe on a scratch weaver: where (if anywhere) does the inner
    // continuation first write outside `outer.objects`?
    let cut = {
        let mut scratch = weaver.clone();
        let specs = scratch.protocol().objects();
        for (step, _) in &inner.cover {
            scratch.append(*step)?;
        }
        let mut found = None;
        for (idx, step) in inner.cont.iter().enumerate() {
            let record = scratch.append(*step)?;
            if let Some((obj, op, _)) = record.op {
                if !specs[obj.0].kind.is_trivial(&op) && !outer.objects.contains(&obj) {
                    found = Some((idx, obj));
                    break;
                }
            }
        }
        found
    };

    match cut {
        None => {
            // Base case: block-write(V) · α · block-write(W) · β.
            for (step, _) in &inner.cover {
                weaver.append(*step)?;
            }
            weaver.append_all(&inner.cont)?;
            for (step, _) in &outer.cover {
                weaver.append(*step)?;
            }
            weaver.append_all(&outer.cont)?;
            stats.base_splices += 1;
            if weaver.config().is_inconsistent() {
                Ok(())
            } else {
                Err(CombineError::Internal("base splice did not decide both values"))
            }
        }
        Some((k, target)) => {
            // Figure 3: execute block-write(V) and α up to just before
            // the write to `target`, then re-arm V with clones.
            let seg_start = weaver.len();
            for (step, _) in &inner.cover {
                weaver.append(*step)?;
            }
            weaver.append_all(&inner.cont[..k])?;

            // For each register of V, the last write in [seg_start, now)
            // determines the clone to leave behind.
            let mut specs = Vec::new();
            for &obj in &inner.objects {
                let (pos, _) = weaver
                    .last_write_before(obj, weaver.len())
                    .filter(|(pos, _)| *pos >= seg_start)
                    .ok_or(CombineError::Internal(
                        "block-written register has no write in segment",
                    ))?;
                specs.push((obj, pos));
            }
            // Spawn the clones (collect positions first: spawning
            // inserts steps and would shift positions, but owner step
            // *counts* are computed inside spawn_clone_before per spec,
            // so record (owner, upto) now).
            let mut new_cover = Vec::with_capacity(specs.len() + 1);
            for (obj, pos) in specs {
                let trace = weaver.execution();
                let owner = trace.steps()[pos].pid;
                let upto = trace.steps()[..pos].iter().filter(|s| s.pid == owner).count();
                let coin = trace.steps()[pos].coin;
                let clone = weaver.spawn_clone(owner, upto)?;
                stats.clones_spawned += 1;
                new_cover.push((Step::with_coin(clone, coin), obj));
            }
            // The write to `target` joins the new block write.
            new_cover.push((inner.cont[k], target));

            let mut objects = inner.objects.clone();
            objects.insert(target);
            let inner2 = Side {
                cover: new_cover,
                objects,
                solo: inner.solo,
                cont: inner.cont[k + 1..].to_vec(),
                decides: inner.decides,
            };
            stats.subset_splits += 1;
            combine_rec(weaver, inner2, outer, limits, stats, depth + 1)
        }
    }
}

/// Neither V ⊆ W nor W ⊆ V (Figure 4): build a block-write cover of
/// U = V ∪ W, obtain a deciding solo γ after it, and recurse with the
/// γ-side enlarged to U.
fn incomparable_case<P: Protocol>(
    weaver: &mut Weaver<'_, P>,
    side_a: Side,
    side_b: Side,
    limits: &CombineLimits,
    stats: &mut CombineStats,
    depth: usize,
) -> Result<(), CombineError> {
    stats.incomparable_resolutions += 1;
    let u: BTreeSet<ObjectId> =
        side_a.objects.union(&side_b.objects).copied().collect();

    // Clones of the b-side processes poised at W − V complete a's cover
    // to all of U without touching b.
    let mut extra = Vec::new();
    for (step, obj) in &side_b.cover {
        if !side_a.objects.contains(obj) {
            let upto = weaver.steps_of(step.pid);
            let clone = weaver.spawn_clone(step.pid, upto)?;
            stats.clones_spawned += 1;
            extra.push((Step::with_coin(clone, step.coin), *obj));
        }
    }
    let mut cover_u: Vec<(Step, ObjectId)> = side_a.cover.clone();
    cover_u.extend(extra.iter().cloned());

    // Probe: block-write U, then find a deciding solo by one of the
    // block writers (nondeterministic solo termination).
    let explorer = Explorer::new(limits.explore);
    let (gamma_solo, gamma, gamma_decides) = {
        let mut scratch = weaver.clone();
        for (step, _) in &cover_u {
            scratch.append(*step)?;
        }
        let mut found = None;
        for (step, _) in &cover_u {
            if let Some((exec, d)) =
                explorer.solo_deciding(scratch.protocol(), scratch.config(), step.pid)
            {
                found = Some((step.pid, exec.steps().to_vec(), d));
                break;
            }
        }
        found.ok_or(CombineError::SoloSearchExhausted)?
    };

    if gamma_decides == side_a.decides {
        // γ replaces the a-side; its cover (a's processes + fresh
        // clones) is disjoint from b.
        let side_a2 = Side {
            cover: cover_u,
            objects: u,
            solo: gamma_solo,
            cont: gamma,
            decides: gamma_decides,
        };
        combine_rec(weaver, side_a2, side_b, limits, stats, depth + 1)
    } else {
        // γ replaces the b-side; disjointness from a now demands
        // cloning a's cover processes as well. The clones re-perform
        // identical writes, so γ (discovered against the original
        // cover's values) replays verbatim, with its solo remapped to
        // the corresponding clone if necessary.
        let mut cover2 = Vec::with_capacity(cover_u.len());
        let mut remap: Vec<(ProcessId, ProcessId)> = Vec::new();
        for (step, obj) in &side_a.cover {
            let upto = weaver.steps_of(step.pid);
            let clone = weaver.spawn_clone(step.pid, upto)?;
            stats.clones_spawned += 1;
            remap.push((step.pid, clone));
            cover2.push((Step::with_coin(clone, step.coin), *obj));
        }
        cover2.extend(extra.iter().cloned());

        let mapped = |pid: ProcessId| {
            remap.iter().find(|(o, _)| *o == pid).map(|(_, c)| *c).unwrap_or(pid)
        };
        let solo2 = mapped(gamma_solo);
        let cont2: Vec<Step> = gamma
            .iter()
            .map(|s| Step::with_coin(mapped(s.pid), s.coin))
            .collect();
        let side_b2 =
            Side { cover: cover2, objects: u, solo: solo2, cont: cont2, decides: gamma_decides };
        combine_rec(weaver, side_a, side_b2, limits, stats, depth + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_consensus::model_protocols::NaiveWriteRead;

    #[test]
    fn side_processes_include_solo_and_cover() {
        let side = Side {
            cover: vec![(Step::of(ProcessId(0)), ObjectId(0))],
            objects: [ObjectId(0)].into(),
            solo: ProcessId(0),
            cont: vec![],
            decides: 0,
        };
        assert_eq!(side.processes(), [ProcessId(0)].into());
    }

    #[test]
    fn default_limits_are_sane() {
        let l = CombineLimits::default();
        assert!(l.max_depth >= 8);
        assert!(l.explore.max_configs > 1000);
    }

    #[test]
    fn error_display() {
        for e in [
            CombineError::SoloSearchExhausted,
            CombineError::DepthExceeded,
            CombineError::Internal("x"),
            CombineError::Model(ModelError::NoSuchProcess(ProcessId(1))),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    /// Drive the base splice by hand on the naive protocol: this is
    /// exactly Figure 1.
    #[test]
    fn manual_base_splice_on_naive_protocol() {
        let p = NaiveWriteRead::new(2);
        let mut w = Weaver::new(&p, vec![0, 1]);
        // Both poised at the register from the start; V = W = {r0}.
        let side0 = Side {
            cover: vec![(Step::of(ProcessId(0)), ObjectId(0))],
            objects: [ObjectId(0)].into(),
            solo: ProcessId(0),
            cont: vec![Step::of(ProcessId(0)), Step::of(ProcessId(0))], // read, decide
            decides: 0,
        };
        let side1 = Side {
            cover: vec![(Step::of(ProcessId(1)), ObjectId(0))],
            objects: [ObjectId(0)].into(),
            solo: ProcessId(1),
            cont: vec![Step::of(ProcessId(1)), Step::of(ProcessId(1))],
            decides: 1,
        };
        let mut stats = CombineStats::default();
        combine(&mut w, side0, side1, &CombineLimits::default(), &mut stats).unwrap();
        assert!(w.config().is_inconsistent());
        assert_eq!(stats.base_splices, 1);
        assert_eq!(stats.subset_splits, 0);
        assert_eq!(stats.incomparable_resolutions, 0);
        assert!(w.self_check().unwrap());
    }
}
