//! Cloning by lockstep weaving (Section 3.1).
//!
//! The paper's cloning argument: "there is another execution which is
//! the same except that a group of *clones* have been left behind …
//! the clones are given the same initial state as P and P and its
//! clones are scheduled as a group, up to the point at which P performs
//! the write."
//!
//! The operational content is that **duplicate steps are invisible** in
//! a read–write register protocol: a clone that takes each of P's steps
//! immediately after P reads the same values (nothing intervenes) and
//! re-writes the same values (no visible change), so it tracks P's
//! state exactly while perturbing nothing. A [`Weaver`] maintains a
//! single global execution from an initial pool configuration and
//! supports exactly this transformation: retroactively weaving a
//! clone's duplicate steps into the trace, leaving the clone frozen —
//! *poised* — just before whichever of P's steps the adversary cares
//! about (typically a write whose value the clone can later
//! re-perform).
//!
//! Everything downstream (the Lemma 3.1 combiner, the Lemma 3.2
//! attack) manipulates executions only through a weaver, so the final
//! witness is always a genuine, replayable execution of the protocol
//! from an initial configuration.

use randsync_model::{
    Configuration, Decision, Execution, ModelError, ObjectId, ProcessId, Protocol, Step,
    StepRecord,
};

/// A growing execution over a growing pool of processes, supporting
/// retroactive clone insertion.
#[derive(Debug)]
pub struct Weaver<'a, P: Protocol> {
    protocol: &'a P,
    inputs: Vec<Decision>,
    trace: Vec<Step>,
    config: Configuration<P::State>,
    records: Vec<StepRecord>,
}

impl<'a, P: Protocol> Clone for Weaver<'a, P> {
    fn clone(&self) -> Self {
        Weaver {
            protocol: self.protocol,
            inputs: self.inputs.clone(),
            trace: self.trace.clone(),
            config: self.config.clone(),
            records: self.records.clone(),
        }
    }
}

impl<'a, P: Protocol> Weaver<'a, P> {
    /// A weaver over `protocol` whose pool initially holds one process
    /// per input in `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or the protocol is not symmetric
    /// (cloning requires identical processes: `initial_state` must not
    /// depend on the process id).
    pub fn new(protocol: &'a P, inputs: Vec<Decision>) -> Self {
        assert!(!inputs.is_empty(), "the pool needs at least one process");
        assert!(
            protocol.is_symmetric(),
            "cloning requires a symmetric (identical-process) protocol"
        );
        let config = Configuration::initial_with_pool(protocol, &inputs, inputs.len());
        Weaver { protocol, inputs, trace: Vec::new(), config, records: Vec::new() }
    }

    /// The protocol under attack.
    pub fn protocol(&self) -> &'a P {
        self.protocol
    }

    /// The per-process inputs of the current pool.
    pub fn inputs(&self) -> &[Decision] {
        &self.inputs
    }

    /// The current configuration (always equal to replaying
    /// [`Weaver::execution`] from the initial pool configuration).
    pub fn config(&self) -> &Configuration<P::State> {
        &self.config
    }

    /// The records of every step taken so far.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// The execution so far.
    pub fn execution(&self) -> Execution {
        Execution::from_steps(self.trace.clone())
    }

    /// Number of steps so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether no steps have been taken.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// The number of distinct processes that have taken at least one
    /// step — the "processes used" quantity of Lemma 3.1.
    pub fn processes_used(&self) -> usize {
        let mut pids: Vec<ProcessId> = self.trace.iter().map(|s| s.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        pids.len()
    }

    /// Append one step of `step.pid` with `step.coin`.
    ///
    /// # Errors
    ///
    /// Propagates stepping errors (inactive process, bad coin, …); the
    /// weaver is unchanged on error.
    pub fn append(&mut self, step: Step) -> Result<StepRecord, ModelError> {
        let record = self.config.step(self.protocol, step.pid, step.coin)?;
        self.trace.push(step);
        self.records.push(record);
        Ok(record)
    }

    /// Append a whole execution fragment.
    ///
    /// # Errors
    ///
    /// Stops at the first failing step (prior steps remain applied).
    pub fn append_all(&mut self, steps: &[Step]) -> Result<(), ModelError> {
        for &s in steps {
            self.append(s)?;
        }
        Ok(())
    }

    /// How many steps `pid` has taken so far.
    pub fn steps_of(&self, pid: ProcessId) -> usize {
        self.trace.iter().filter(|s| s.pid == pid).count()
    }

    /// The trace position of the last *nontrivial* operation on
    /// `object` strictly before trace position `end` (`end` = `len()`
    /// for "so far"). Returns the position and the performing process.
    pub fn last_write_before(&self, object: ObjectId, end: usize) -> Option<(usize, ProcessId)> {
        let specs = self.protocol.objects();
        self.records[..end.min(self.records.len())]
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, r)| match r.op {
                Some((obj, op, _)) if obj == object && !specs[obj.0].kind.is_trivial(&op) => {
                    Some((i, r.pid))
                }
                _ => None,
            })
    }

    /// Spawn a **clone** of process `of`, woven in lockstep through
    /// `of`'s first `upto` steps: the new process starts with `of`'s
    /// input and takes a duplicate of each of those steps immediately
    /// after the original. Because duplicate register reads return the
    /// same value and duplicate writes re-write the same value, the
    /// clone ends in exactly the state `of` had after its `upto`-th
    /// step, and no other process can distinguish the woven execution
    /// from the original. Returns the clone's process id.
    ///
    /// # Errors
    ///
    /// Fails if the woven trace does not replay (which would indicate a
    /// non-register object or an asymmetric protocol slipped through).
    ///
    /// # Panics
    ///
    /// Panics if `of` has taken fewer than `upto` steps.
    pub fn spawn_clone(&mut self, of: ProcessId, upto: usize) -> Result<ProcessId, ModelError> {
        assert!(
            self.steps_of(of) >= upto,
            "{of:?} has taken only {} steps, cannot shadow {upto}",
            self.steps_of(of)
        );
        let clone_pid = ProcessId(self.inputs.len());
        let clone_input = self.inputs[of.0];
        let mut new_inputs = self.inputs.clone();
        new_inputs.push(clone_input);

        let mut new_trace = Vec::with_capacity(self.trace.len() + upto);
        let mut shadowed = 0usize;
        for &s in &self.trace {
            new_trace.push(s);
            if s.pid == of && shadowed < upto {
                new_trace.push(Step::with_coin(clone_pid, s.coin));
                shadowed += 1;
            }
        }

        // Rebuild the configuration and records by replay.
        let pool = new_inputs.len();
        let start = Configuration::initial_with_pool(self.protocol, &new_inputs, pool);
        let execution = Execution::from_steps(new_trace.clone());
        let (config, records) = execution.replay(self.protocol, &start)?;

        self.inputs = new_inputs;
        self.trace = new_trace;
        self.config = config;
        self.records = records;
        Ok(clone_pid)
    }

    /// Spawn a clone frozen just before the step at trace position
    /// `pos` (which must belong to some process): the clone ends poised
    /// to re-perform exactly that step's operation. Returns the clone's
    /// id.
    ///
    /// # Errors
    ///
    /// See [`Weaver::spawn_clone`].
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn spawn_clone_before(&mut self, pos: usize) -> Result<ProcessId, ModelError> {
        assert!(pos < self.trace.len(), "no step at position {pos}");
        let owner = self.trace[pos].pid;
        let upto = self.trace[..pos].iter().filter(|s| s.pid == owner).count();
        self.spawn_clone(owner, upto)
    }

    /// Verify the internal consistency of the weaver: the stored trace
    /// replays from the initial pool configuration to the stored
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns the replay error, if any.
    pub fn self_check(&self) -> Result<bool, ModelError> {
        let start =
            Configuration::initial_with_pool(self.protocol, &self.inputs, self.inputs.len());
        let (config, _) = self.execution().replay(self.protocol, &start)?;
        Ok(config == self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_consensus::model_protocols::{NaiveWriteRead, Optimistic};
    use randsync_model::{Action, Operation, Value};

    #[test]
    fn append_and_bookkeeping() {
        let p = NaiveWriteRead::new(2);
        let mut w = Weaver::new(&p, vec![0, 1]);
        assert!(w.is_empty());
        w.append(Step::of(ProcessId(0))).unwrap();
        w.append(Step::of(ProcessId(1))).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.processes_used(), 2);
        assert_eq!(w.steps_of(ProcessId(0)), 1);
        assert!(w.self_check().unwrap());
        assert_eq!(w.inputs(), &[0, 1]);
    }

    #[test]
    fn last_write_lookup() {
        let p = NaiveWriteRead::new(2);
        let mut w = Weaver::new(&p, vec![0, 1]);
        w.append(Step::of(ProcessId(0))).unwrap(); // write 0
        w.append(Step::of(ProcessId(1))).unwrap(); // write 1
        w.append(Step::of(ProcessId(0))).unwrap(); // read (trivial)
        assert_eq!(w.last_write_before(ObjectId(0), 3), Some((1, ProcessId(1))));
        assert_eq!(w.last_write_before(ObjectId(0), 1), Some((0, ProcessId(0))));
        assert_eq!(w.last_write_before(ObjectId(0), 0), None);
    }

    #[test]
    fn clone_ends_poised_at_the_shadowed_write() {
        let p = Optimistic::new(2, 2);
        let mut w = Weaver::new(&p, vec![1, 0]);
        // P0 writes r0 then is poised at r1.
        w.append(Step::of(ProcessId(0))).unwrap();
        // Clone of P0 frozen before its first step: poised at r0
        // with P0's original write.
        let c = w.spawn_clone(ProcessId(0), 0).unwrap();
        assert_eq!(c, ProcessId(2));
        assert_eq!(w.config().poised_at(&p, c), Some(ObjectId(0)));
        match w.config().next_action(&p, c) {
            Some(Action::Invoke { op: Operation::Write(Value::Int(1)), .. }) => {}
            other => panic!("clone poised wrongly: {other:?}"),
        }
        assert!(w.self_check().unwrap());
    }

    #[test]
    fn clone_shadowing_is_invisible_to_others() {
        let p = Optimistic::new(2, 2);
        // Run a full interleaving WITHOUT clones.
        let mut plain = Weaver::new(&p, vec![1, 0]);
        let schedule = [0usize, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        for &i in &schedule {
            let _ = plain.append(Step::of(ProcessId(i)));
        }
        let plain_p1_state = plain.config().procs[1].clone();

        // Same interleaving, but weave a clone of P0 through its first
        // 2 steps midway.
        let mut woven = Weaver::new(&p, vec![1, 0]);
        for &i in &schedule[..4] {
            let _ = woven.append(Step::of(ProcessId(i)));
        }
        let c = woven.spawn_clone(ProcessId(0), 2).unwrap();
        for &i in &schedule[4..] {
            let _ = woven.append(Step::of(ProcessId(i)));
        }
        // P1 cannot tell the difference.
        assert_eq!(woven.config().procs[1], plain_p1_state);
        // The clone is in the state P0 had after two steps: finished
        // writing both registers, about to read r0.
        assert_eq!(woven.steps_of(c), 2);
        assert!(woven.self_check().unwrap());
    }

    #[test]
    fn spawn_clone_before_uses_the_owning_process() {
        let p = NaiveWriteRead::new(2);
        let mut w = Weaver::new(&p, vec![0, 1]);
        w.append(Step::of(ProcessId(1))).unwrap(); // P1 writes 1
        w.append(Step::of(ProcessId(0))).unwrap(); // P0 writes 0
        let c = w.spawn_clone_before(0).unwrap();
        // Clone of P1 poised to re-perform the write of 1.
        match w.config().next_action(&p, c) {
            Some(Action::Invoke { op: Operation::Write(Value::Int(1)), .. }) => {}
            other => panic!("clone poised wrongly: {other:?}"),
        }
    }

    #[test]
    fn clones_can_restore_overwritten_values() {
        // The essence of the paper's use of clones: re-fix a register
        // to an old value after it was overwritten.
        let p = NaiveWriteRead::new(2);
        let mut w = Weaver::new(&p, vec![0, 1]);
        w.append(Step::of(ProcessId(0))).unwrap(); // writes 0
        let c = w.spawn_clone(ProcessId(0), 0).unwrap(); // poised: write 0
        w.append(Step::of(ProcessId(1))).unwrap(); // writes 1
        assert_eq!(w.config().values[0], Value::Int(1));
        w.append(Step::of(c)).unwrap(); // clone re-performs write 0
        assert_eq!(w.config().values[0], Value::Int(0), "value restored");
    }

    #[test]
    fn clones_of_clones_work() {
        let p = NaiveWriteRead::new(2);
        let mut w = Weaver::new(&p, vec![0, 1]);
        w.append(Step::of(ProcessId(0))).unwrap(); // write 0
        let c1 = w.spawn_clone(ProcessId(0), 1).unwrap(); // past its write
        // c1 is in P0's post-write state (about to read); advance it,
        // then clone the clone through its entire 2-step history.
        w.append(Step::of(c1)).unwrap(); // c1 reads
        let c2 = w.spawn_clone(c1, 2).unwrap();
        assert_eq!(w.steps_of(c2), 2);
        assert!(w.self_check().unwrap());
        // The second-generation clone tracks the first exactly.
        assert_eq!(w.config().procs[c1.index()], w.config().procs[c2.index()]);
    }

    #[test]
    #[should_panic(expected = "cannot shadow")]
    fn shadowing_more_steps_than_taken_panics() {
        let p = NaiveWriteRead::new(2);
        let mut w = Weaver::new(&p, vec![0, 1]);
        let _ = w.spawn_clone(ProcessId(0), 1);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_protocols_are_rejected() {
        let p = randsync_consensus::model_protocols::TasTwoModel;
        let _ = Weaver::new(&p, vec![0, 1]);
    }
}
