//! Poised processes and block writes (Section 3 preliminaries).
//!
//! "A process P is said to be *poised at* object R if P will perform a
//! non-trivial (historyless) operation on R when next allocated a step.
//! … A *block write to a set of objects V* consists of a sequence of v
//! consecutive non-trivial operations by v different processes on the v
//! different objects in V. … Using a block write to V, the values of
//! all the objects in V can be fixed."

use std::collections::{BTreeMap, BTreeSet};

use randsync_model::{Configuration, Execution, ObjectId, ProcessId, Protocol, Step};

/// Whether every object a protocol uses is of a historyless kind — the
/// hypothesis of the paper's main theorem.
pub fn all_objects_historyless<P: Protocol>(protocol: &P) -> bool {
    protocol.objects().iter().all(|o| o.kind.is_historyless())
}

/// Whether every object is a plain read–write register — the Section
/// 3.1 restricted setting.
pub fn all_objects_registers<P: Protocol>(protocol: &P) -> bool {
    protocol
        .objects()
        .iter()
        .all(|o| matches!(o.kind, randsync_model::ObjectKind::Register))
}

/// Map each object to the processes currently poised at it.
pub fn poised_map<P: Protocol>(
    protocol: &P,
    config: &Configuration<P::State>,
) -> BTreeMap<ObjectId, Vec<ProcessId>> {
    let mut map: BTreeMap<ObjectId, Vec<ProcessId>> = BTreeMap::new();
    for i in 0..config.num_processes() {
        let pid = ProcessId(i);
        if let Some(obj) = config.poised_at(protocol, pid) {
            map.entry(obj).or_default().push(pid);
        }
    }
    map
}

/// Choose one poised process per object of `objects`, avoiding the
/// processes in `exclude`. Returns `None` if some object has no
/// available poised process.
pub fn poised_cover<P: Protocol>(
    protocol: &P,
    config: &Configuration<P::State>,
    objects: &BTreeSet<ObjectId>,
    exclude: &BTreeSet<ProcessId>,
) -> Option<Vec<(ProcessId, ObjectId)>> {
    let map = poised_map(protocol, config);
    let mut used: BTreeSet<ProcessId> = exclude.clone();
    let mut cover = Vec::with_capacity(objects.len());
    for &obj in objects {
        let pid = map.get(&obj)?.iter().find(|p| !used.contains(p)).copied()?;
        used.insert(pid);
        cover.push((pid, obj));
    }
    Some(cover)
}

/// The block-write schedule for a cover: one step per `(process,
/// object)` pair, in the given order. (Coins are 0; a block-write step
/// with a larger coin can be built with [`Step::with_coin`] directly.)
pub fn block_write_steps(cover: &[(ProcessId, ObjectId)]) -> Execution {
    cover.iter().map(|(pid, _)| Step::of(*pid)).collect()
}

/// Verify that `cover` is a valid block-write cover in `config`: one
/// *distinct* process per *distinct* object, each actually poised there.
pub fn is_valid_cover<P: Protocol>(
    protocol: &P,
    config: &Configuration<P::State>,
    cover: &[(ProcessId, ObjectId)],
) -> bool {
    let mut procs = BTreeSet::new();
    let mut objs = BTreeSet::new();
    cover.iter().all(|(pid, obj)| {
        procs.insert(*pid)
            && objs.insert(*obj)
            && config.poised_at(protocol, *pid) == Some(*obj)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_consensus::model_protocols::{NaiveWriteRead, Optimistic};

    #[test]
    fn classification_helpers() {
        assert!(all_objects_registers(&Optimistic::new(2, 3)));
        assert!(all_objects_historyless(&Optimistic::new(2, 3)));
        let cas = randsync_consensus::model_protocols::CasModel::new(2);
        assert!(!all_objects_historyless(&cas));
        assert!(!all_objects_registers(&cas));
    }

    #[test]
    fn poised_map_tracks_everyone_initially() {
        let p = NaiveWriteRead::new(3);
        let c = Configuration::initial(&p, &[0, 1, 0]);
        let map = poised_map(&p, &c);
        assert_eq!(map.len(), 1);
        assert_eq!(map[&ObjectId(0)].len(), 3);
    }

    #[test]
    fn cover_selection_respects_exclusions() {
        let p = NaiveWriteRead::new(3);
        let c = Configuration::initial(&p, &[0, 1, 0]);
        let objects: BTreeSet<ObjectId> = [ObjectId(0)].into();
        let exclude: BTreeSet<ProcessId> = [ProcessId(0)].into();
        let cover = poised_cover(&p, &c, &objects, &exclude).unwrap();
        assert_eq!(cover, vec![(ProcessId(1), ObjectId(0))]);
        assert!(is_valid_cover(&p, &c, &cover));
        // Excluding everyone leaves no cover.
        let all: BTreeSet<ProcessId> = (0..3).map(ProcessId).collect();
        assert!(poised_cover(&p, &c, &objects, &all).is_none());
    }

    #[test]
    fn block_write_fixes_values() {
        let p = Optimistic::new(4, 2);
        let mut c = Configuration::initial(&p, &[1, 1, 0, 0]);
        // Advance P1 so it is poised at register 1 (it wrote r0 first).
        c.step(&p, ProcessId(1), 0).unwrap();
        let objects: BTreeSet<ObjectId> = [ObjectId(0), ObjectId(1)].into();
        let cover = poised_cover(&p, &c, &objects, &BTreeSet::new()).unwrap();
        assert!(is_valid_cover(&p, &c, &cover));
        let e = block_write_steps(&cover);
        e.apply(&p, &mut c).unwrap();
        // Both registers now hold written inputs (fixed, regardless of
        // what happened before). The cover picks the first available
        // poised process per object: P0 (input 1) for r0, P1 for r1.
        assert_eq!(c.values[0], randsync_model::Value::Int(1));
        assert_eq!(c.values[1], randsync_model::Value::Int(1));
    }

    #[test]
    fn invalid_covers_are_rejected() {
        let p = NaiveWriteRead::new(2);
        let c = Configuration::initial(&p, &[0, 1]);
        // Duplicate process.
        assert!(!is_valid_cover(
            &p,
            &c,
            &[(ProcessId(0), ObjectId(0)), (ProcessId(0), ObjectId(0))]
        ));
        // Process not poised at the claimed object.
        assert!(!is_valid_cover(&p, &c, &[(ProcessId(0), ObjectId(5))]));
    }
}
