//! Interruptible executions (Definitions 3.1, 3.2) and their
//! construction (Lemma 3.4).
//!
//! An **interruptible execution** α from configuration C with initial
//! object set V and process set 𝒫 divides into pieces α = α₁ ⋯ α_k
//! such that
//!
//! * each piece αᵢ begins with a **block write** to an object set Vᵢ by
//!   processes that take no further steps in α,
//! * all nontrivial operations in αᵢ are to objects in Vᵢ,
//! * V = V₁ ⊊ ⋯ ⊊ V_k, and
//! * after α, some process has decided.
//!
//! Because the objects are **historyless**, each block write fixes its
//! objects' values no matter when it executes — so an execution by
//! *other* processes that only changes objects in Vᵢ can be inserted
//! immediately before piece i without affecting the rest of α. That is
//! the "cutting and splicing" the general lower bound is built on.
//!
//! [`construct_interruptible`] implements Lemma 3.4: from any
//! configuration with enough processes poised at the right objects,
//! build an interruptible execution with prescribed **excess capacity**
//! (spare poised processes, outside the execution's own process set,
//! that the *other* side's combination may consume).

use std::collections::{BTreeMap, BTreeSet};

use randsync_model::explore::successors;
use randsync_model::{
    Configuration, Decision, ExploreLimits, ModelError, ObjectId, ProcessId,
    Protocol, Step,
};

/// One piece of an interruptible execution.
#[derive(Clone, Debug)]
pub struct Piece {
    /// The piece's object set Vᵢ.
    pub objects: BTreeSet<ObjectId>,
    /// The block write to Vᵢ: one `(step, object)` per object. These
    /// processes take no further steps in the whole execution.
    pub block_write: Vec<(Step, ObjectId)>,
    /// The remaining steps of the piece; every nontrivial operation
    /// targets Vᵢ.
    pub body: Vec<Step>,
}

impl Piece {
    /// All steps of the piece, block write first.
    pub fn steps(&self) -> Vec<Step> {
        let mut v: Vec<Step> = self.block_write.iter().map(|(s, _)| *s).collect();
        v.extend_from_slice(&self.body);
        v
    }
}

/// Definition 3.2's parameter: at the beginning of each piece αᵢ there
/// must be at least `spare` processes outside the execution's process
/// set poised at each object of `Vᵢ ∩ watched`.
#[derive(Clone, Debug, Default)]
pub struct ExcessCapacity {
    /// How many spare poised processes each watched object must have.
    pub spare: usize,
    /// The watched object set U.
    pub watched: BTreeSet<ObjectId>,
}

/// An interruptible execution: pieces plus bookkeeping.
#[derive(Clone, Debug)]
pub struct InterruptibleExecution {
    /// The pieces α₁ ⋯ α_k (their object sets strictly increase).
    pub pieces: Vec<Piece>,
    /// The execution's process set 𝒫 (every step's process is in it).
    pub processes: BTreeSet<ProcessId>,
    /// The value decided at the end.
    pub decides: Decision,
    /// The process that decided.
    pub decider: ProcessId,
}

impl InterruptibleExecution {
    /// The initial object set V = V₁.
    pub fn initial_objects(&self) -> &BTreeSet<ObjectId> {
        &self.pieces.first().expect("an IE has at least one piece").objects
    }

    /// All steps, in order.
    pub fn steps(&self) -> Vec<Step> {
        self.pieces.iter().flat_map(|p| p.steps()).collect()
    }

    /// Total number of steps.
    pub fn len(&self) -> usize {
        self.pieces.iter().map(|p| p.block_write.len() + p.body.len()).sum()
    }

    /// Whether the execution has no steps (never true for constructed
    /// ones).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop the first piece: the interruptible execution α₂ ⋯ α_k that
    /// remains valid from the configuration reached after α₁.
    ///
    /// # Panics
    ///
    /// Panics if this is the last piece.
    pub fn rest(&self) -> InterruptibleExecution {
        assert!(self.pieces.len() > 1, "cannot drop the only piece");
        InterruptibleExecution {
            pieces: self.pieces[1..].to_vec(),
            processes: self.processes.clone(),
            decides: self.decides,
            decider: self.decider,
        }
    }

    /// Check Definition 3.1 against a base configuration: replays the
    /// steps and verifies piece structure, write confinement, strict
    /// nesting, block-writer retirement, and the final decision.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// clause.
    pub fn validate<P: Protocol>(
        &self,
        protocol: &P,
        base: &Configuration<P::State>,
    ) -> Result<(), String> {
        if self.pieces.is_empty() {
            return Err("an interruptible execution needs at least one piece".into());
        }
        let specs = protocol.objects();
        let mut config = base.clone();
        let mut frozen: BTreeSet<ProcessId> = BTreeSet::new();
        let mut prev_objects: Option<&BTreeSet<ObjectId>> = None;
        for (i, piece) in self.pieces.iter().enumerate() {
            if let Some(prev) = prev_objects {
                if !prev.is_subset(&piece.objects) || prev == &piece.objects {
                    return Err(format!("piece {i}: object sets must strictly nest"));
                }
            }
            let bw_objects: BTreeSet<ObjectId> =
                piece.block_write.iter().map(|(_, o)| *o).collect();
            if bw_objects != piece.objects {
                return Err(format!("piece {i}: block write must cover the object set"));
            }
            for (step, obj) in &piece.block_write {
                if frozen.contains(&step.pid) {
                    return Err(format!(
                        "piece {i}: block writer {:?} already took its last step",
                        step.pid
                    ));
                }
                if config.poised_at(protocol, step.pid) != Some(*obj) {
                    return Err(format!(
                        "piece {i}: {:?} is not poised at {obj:?}",
                        step.pid
                    ));
                }
                config
                    .step(protocol, step.pid, step.coin)
                    .map_err(|e| format!("piece {i}: block-write step failed: {e}"))?;
                frozen.insert(step.pid);
            }
            for step in &piece.body {
                if frozen.contains(&step.pid) {
                    return Err(format!(
                        "piece {i}: frozen process {:?} took a step",
                        step.pid
                    ));
                }
                if !self.processes.contains(&step.pid) {
                    return Err(format!(
                        "piece {i}: {:?} is outside the process set",
                        step.pid
                    ));
                }
                let record = config
                    .step(protocol, step.pid, step.coin)
                    .map_err(|e| format!("piece {i}: body step failed: {e}"))?;
                if let Some((obj, op, _)) = record.op {
                    if !specs[obj.0].kind.is_trivial(&op) && !piece.objects.contains(&obj) {
                        return Err(format!(
                            "piece {i}: nontrivial operation on {obj:?} outside Vᵢ"
                        ));
                    }
                }
            }
            prev_objects = Some(&piece.objects);
        }
        match config.procs.get(self.decider.index()).and_then(|p| p.decision()) {
            Some(d) if d == self.decides => Ok(()),
            other => Err(format!(
                "decider {:?} ended as {other:?}, expected decision {}",
                self.decider, self.decides
            )),
        }
    }
}

/// Why Lemma 3.4's construction failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IeError {
    /// Not enough poised processes to cover a block write, reserve
    /// future covers, or provide the requested excess capacity.
    InsufficientProcesses(String),
    /// A process could not be driven to a decision or a poise outside
    /// the current object set within the exploration budget.
    SearchExhausted(ProcessId),
    /// A step failed during construction (invariant violation).
    Model(ModelError),
}

impl From<ModelError> for IeError {
    fn from(e: ModelError) -> Self {
        IeError::Model(e)
    }
}

impl core::fmt::Display for IeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IeError::InsufficientProcesses(m) => write!(f, "insufficient processes: {m}"),
            IeError::SearchExhausted(p) => {
                write!(f, "could not drive {p:?} to a decision or an outside poise")
            }
            IeError::Model(e) => write!(f, "model error during construction: {e}"),
        }
    }
}

impl std::error::Error for IeError {}

/// Drive `pid` solo from `config` until `goal` holds for its
/// configuration, exhausting its coin nondeterminism breadth-first.
/// Returns the steps taken (possibly empty if the goal already holds).
pub fn solo_until<P, F>(
    protocol: &P,
    config: &Configuration<P::State>,
    pid: ProcessId,
    limits: &ExploreLimits,
    goal: F,
) -> Option<Vec<Step>>
where
    P: Protocol,
    F: Fn(&Configuration<P::State>) -> bool,
{
    if goal(config) {
        return Some(Vec::new());
    }
    let mut queue: std::collections::VecDeque<(Configuration<P::State>, Vec<Step>)> =
        std::collections::VecDeque::from([(config.clone(), Vec::new())]);
    let mut seen: std::collections::HashSet<Configuration<P::State>> = Default::default();
    seen.insert(config.clone());
    let mut expanded = 0usize;
    while let Some((c, path)) = queue.pop_front() {
        if path.len() >= limits.max_depth {
            continue;
        }
        expanded += 1;
        if expanded > limits.max_configs {
            return None;
        }
        for (step, next) in successors(protocol, &c, pid) {
            let mut p = path.clone();
            p.push(step);
            if goal(&next) {
                return Some(p);
            }
            if seen.insert(next.clone()) {
                queue.push_back((next, p));
            }
        }
    }
    None
}

/// Lemma 3.4: construct an interruptible execution from `base` with
/// initial object set `initial`, process set `procs`, and the given
/// excess capacity, by the paper's recursion. Also returns the final
/// configuration reached.
///
/// The numeric preconditions of the lemma (|𝒫| ≥ (r² + r − v² + v)/2 +
/// e·|V̄ ∩ U| etc.) are not assumed; instead each reservation is
/// attempted and a precise [`IeError::InsufficientProcesses`] is
/// returned when the pool is genuinely too small — which is itself a
/// demonstration of the space/process trade-off the lemma quantifies.
///
/// # Errors
///
/// See [`IeError`].
pub fn construct_interruptible<P: Protocol>(
    protocol: &P,
    base: &Configuration<P::State>,
    initial: BTreeSet<ObjectId>,
    procs: BTreeSet<ProcessId>,
    excess: &ExcessCapacity,
    limits: &ExploreLimits,
) -> Result<(InterruptibleExecution, Configuration<P::State>), IeError> {
    let r = protocol.objects().len();
    let mut config = base.clone();
    // `members` is the execution's process set 𝒫, which shrinks as the
    // paper's E-sets are withdrawn (P' = P − P₁ − E); `available` are
    // the members that may still take steps (not frozen block writers).
    let mut members = procs;
    let mut available = members.clone();
    let mut frozen: BTreeSet<ProcessId> = BTreeSet::new();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut v_set = initial;

    loop {
        let v_bar = r - v_set.len();

        // Excess-capacity check (Definition 3.2) at the beginning of
        // this piece: `spare` processes outside the process set poised
        // at each object of Vᵢ ∩ U.
        for &obj in v_set.intersection(&excess.watched) {
            let outside = (0..config.num_processes())
                .map(ProcessId)
                .filter(|p| !members.contains(p))
                .filter(|p| config.poised_at(protocol, *p) == Some(obj))
                .count();
            if outside < excess.spare {
                return Err(IeError::InsufficientProcesses(format!(
                    "excess capacity: {obj:?} has {outside} spare poised processes, \
                     need {}",
                    excess.spare
                )));
            }
        }

        // Reserve v̄ + 1 poised processes per object of V (the paper's
        // 𝒫̂); the block write uses one of each, the rest stay poised
        // for deeper pieces.
        let mut reserved: BTreeSet<ProcessId> = BTreeSet::new();
        let mut block_write: Vec<(Step, ObjectId)> = Vec::new();
        for &obj in &v_set {
            let mut poised: Vec<ProcessId> = available
                .iter()
                .copied()
                .filter(|p| !frozen.contains(p))
                .filter(|p| config.poised_at(protocol, *p) == Some(obj))
                .collect();
            if poised.is_empty() {
                return Err(IeError::InsufficientProcesses(format!(
                    "no process in the set is poised at {obj:?} for the block write"
                )));
            }
            poised.truncate(v_bar + 1);
            let writer = poised[0];
            for p in &poised {
                reserved.insert(*p);
            }
            block_write.push((Step::of(writer), obj));
        }
        // Perform the block write; writers take no further steps.
        for (step, _) in &block_write {
            config.step(protocol, step.pid, step.coin)?;
            frozen.insert(step.pid);
            available.remove(&step.pid);
        }

        // δ body: drive every unreserved process to a decision or to a
        // poise outside V.
        let mut body: Vec<Step> = Vec::new();
        let mut decided: Option<(ProcessId, Decision)> = None;
        let movers: Vec<ProcessId> = available
            .iter()
            .copied()
            .filter(|p| !reserved.contains(p) && !frozen.contains(p))
            .collect();
        for pid in movers {
            if !config.is_active(pid) {
                continue;
            }
            let v_ref = &v_set;
            let goal = |c: &Configuration<P::State>| {
                !c.is_active(pid)
                    || c.poised_at(protocol, pid)
                        .map(|o| !v_ref.contains(&o))
                        .unwrap_or(false)
                        && matches!(
                            c.next_action(protocol, pid),
                            Some(randsync_model::Action::Invoke { .. })
                        )
            };
            let steps = solo_until(protocol, &config, pid, limits, goal)
                .ok_or(IeError::SearchExhausted(pid))?;
            for step in steps {
                let record = config.step(protocol, step.pid, step.coin)?;
                body.push(step);
                if let Some(d) = record.decided {
                    decided = Some((pid, d));
                    break;
                }
            }
            if decided.is_some() {
                break;
            }
        }

        pieces.push(Piece { objects: v_set.clone(), block_write, body });

        if let Some((decider, d)) = decided {
            let ie =
                InterruptibleExecution { pieces, processes: members, decides: d, decider };
            return Ok((ie, config));
        }

        if v_bar == 0 {
            // Everything is block-written and nobody decided: the
            // remaining processes are all poised outside V = all
            // objects, which is impossible — they must all be decided
            // or the pool is exhausted.
            return Err(IeError::InsufficientProcesses(
                "no process decided even with every object block-written".into(),
            ));
        }

        // Choose the next object set V' = V ∪ Y ∪ Z by the paper's
        // counting argument: find i with y_i + z_{e+i} ≥ v̄ − i + 1.
        let mut poised_count: BTreeMap<ObjectId, usize> = BTreeMap::new();
        for p in available.iter().filter(|p| !reserved.contains(p) && !frozen.contains(p)) {
            if let Some(obj) = config.poised_at(protocol, *p) {
                if !v_set.contains(&obj) {
                    *poised_count.entry(obj).or_insert(0) += 1;
                }
            }
        }
        let e = excess.spare;
        let mut chosen: Option<(usize, Vec<ObjectId>, Vec<ObjectId>)> = None;
        for i in 1..=v_bar {
            let ys: Vec<ObjectId> = poised_count
                .iter()
                .filter(|(o, &c)| !excess.watched.contains(o) && c >= i)
                .map(|(o, _)| *o)
                .collect();
            let zs: Vec<ObjectId> = poised_count
                .iter()
                .filter(|(o, &c)| excess.watched.contains(o) && c >= e + i)
                .map(|(o, _)| *o)
                .collect();
            let need = v_bar - i + 1;
            if ys.len() + zs.len() >= need {
                // Take Y first, then Z, exactly `need` objects.
                let mut y_take = ys;
                let mut z_take = zs;
                if y_take.len() >= need {
                    y_take.truncate(need);
                    z_take.clear();
                } else {
                    let rem = need - y_take.len();
                    z_take.truncate(rem);
                }
                chosen = Some((i, y_take, z_take));
                break;
            }
        }
        let Some((_, y_take, z_take)) = chosen else {
            return Err(IeError::InsufficientProcesses(
                "counting argument failed: not enough poised processes to extend V \
                 (the pool is below the lemma's threshold)"
                    .into(),
            ));
        };

        // Withdraw the excess set E: e processes poised at each Z
        // object leave the process set entirely (𝒫′ = 𝒫 − 𝒫₁ − E).
        // They take no steps, stay poised, and become the spare
        // capacity that Lemma 3.5's incomparable case consumes.
        for &obj in &z_take {
            let mut spare_needed = e;
            let poised: Vec<ProcessId> = available
                .iter()
                .copied()
                .filter(|p| !reserved.contains(p) && !frozen.contains(p))
                .filter(|p| config.poised_at(protocol, *p) == Some(obj))
                .collect();
            for p in poised {
                if spare_needed == 0 {
                    break;
                }
                available.remove(&p);
                members.remove(&p);
                spare_needed -= 1;
            }
        }

        for obj in y_take.into_iter().chain(z_take) {
            v_set.insert(obj);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_consensus::model_protocols::{NaiveWriteRead, Optimistic};

    fn limits() -> ExploreLimits {
        ExploreLimits::default()
    }

    #[test]
    fn single_piece_on_naive_protocol() {
        let p = NaiveWriteRead::new(4);
        let base = Configuration::initial_with_pool(&p, &[0], 4);
        let procs: BTreeSet<ProcessId> = (0..4).map(ProcessId).collect();
        let (ie, _end) = construct_interruptible(
            &p,
            &base,
            BTreeSet::new(),
            procs,
            &ExcessCapacity::default(),
            &limits(),
        )
        .expect("construction succeeds");
        assert_eq!(ie.decides, 0, "all inputs are 0");
        ie.validate(&p, &base).unwrap();
        assert!(!ie.is_empty());
    }

    #[test]
    fn multi_register_protocol_builds_nested_pieces() {
        let p = Optimistic::new(8, 2);
        let base = Configuration::initial_with_pool(&p, &[1], 8);
        let procs: BTreeSet<ProcessId> = (0..8).map(ProcessId).collect();
        let (ie, _end) = construct_interruptible(
            &p,
            &base,
            BTreeSet::new(),
            procs,
            &ExcessCapacity::default(),
            &limits(),
        )
        .expect("construction succeeds");
        ie.validate(&p, &base).unwrap();
        assert_eq!(ie.decides, 1);
        // Nesting is strict whenever there is more than one piece.
        for w in ie.pieces.windows(2) {
            assert!(w[0].objects.is_subset(&w[1].objects));
            assert!(w[0].objects.len() < w[1].objects.len());
        }
    }

    #[test]
    fn construction_fails_gracefully_with_too_few_processes() {
        // A single process cannot both block-write and be reserved for
        // deeper covers once the object set grows; with pathological
        // pools the constructor reports the shortfall instead of
        // looping.
        let p = Optimistic::new(1, 3);
        let base = Configuration::initial_with_pool(&p, &[0], 1);
        let procs: BTreeSet<ProcessId> = [ProcessId(0)].into();
        let result = construct_interruptible(
            &p,
            &base,
            BTreeSet::new(),
            procs,
            &ExcessCapacity::default(),
            &limits(),
        );
        // The lone process halts at its first poise (V starts empty, so
        // any nontrivial operation lies outside it); with nobody left
        // to cover deeper block writes the constructor must report the
        // shortfall — never panic or hang. This is the lemma's
        // process-threshold made concrete.
        let err = result.expect_err("one process is below the lemma's threshold");
        assert!(matches!(err, IeError::InsufficientProcesses(_)), "{err}");
    }

    #[test]
    fn validation_rejects_tampered_executions() {
        let p = NaiveWriteRead::new(4);
        let base = Configuration::initial_with_pool(&p, &[0], 4);
        let procs: BTreeSet<ProcessId> = (0..4).map(ProcessId).collect();
        let (mut ie, _) = construct_interruptible(
            &p,
            &base,
            BTreeSet::new(),
            procs,
            &ExcessCapacity::default(),
            &limits(),
        )
        .unwrap();
        // Claim a different decision.
        ie.decides = 1 - ie.decides;
        assert!(ie.validate(&p, &base).is_err());
    }

    #[test]
    fn solo_until_finds_goals_and_respects_budgets() {
        let p = NaiveWriteRead::new(2);
        let c = Configuration::initial(&p, &[0, 1]);
        // Goal: P0 poised at nothing (i.e. about to read — not poised).
        let steps = solo_until(&p, &c, ProcessId(0), &limits(), |cfg| {
            cfg.poised_at(&p, ProcessId(0)).is_none()
        })
        .unwrap();
        assert_eq!(steps.len(), 1, "one write gets P0 to its read");
        // Impossible goal within tiny budget.
        let none = solo_until(
            &p,
            &c,
            ProcessId(0),
            &ExploreLimits { max_configs: 2, max_depth: 1 },
            |_| false,
        );
        assert!(none.is_none());
    }

    #[test]
    fn excess_capacity_is_checked() {
        let p = NaiveWriteRead::new(2);
        let base = Configuration::initial_with_pool(&p, &[0], 2);
        let procs: BTreeSet<ProcessId> = [ProcessId(0)].into();
        // Demand 5 spare processes poised at the register: impossible.
        let excess = ExcessCapacity { spare: 5, watched: [ObjectId(0)].into() };
        // V = {r0} so the check applies to the very first piece.
        let err = construct_interruptible(
            &p,
            &base,
            [ObjectId(0)].into(),
            procs,
            &excess,
            &limits(),
        )
        .unwrap_err();
        assert!(matches!(err, IeError::InsufficientProcesses(_)), "{err}");
    }
}
