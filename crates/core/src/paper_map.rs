//! A navigable index from the paper's statements to this workspace's
//! code.
//!
//! | Paper | Code |
//! |---|---|
//! | §2 model: processes, objects, configurations, executions | [`randsync_model::Protocol`], [`randsync_model::Configuration`], [`randsync_model::Execution`] |
//! | §2 trivial / commute / overwrite / historyless / interfering | [`randsync_model::ObjectKind`] (`is_trivial`, `commutes`, `overwrites`, `is_historyless`, `is_interfering`) |
//! | §2 wait-free / non-blocking / randomized variants | discussed per protocol; termination checks in [`randsync_model::Explorer`] |
//! | §2 nondeterministic solo termination | [`randsync_model::Explorer::solo_deciding`] (witness search) |
//! | §2 "randomized consensus from registers must have non-terminating executions" | [`randsync_model::ExploreOutcome::infinite_execution_possible`] |
//! | Theorem 2.1 (composition g/f) | [`crate::bounds::composition_lower_bound`] |
//! | §3 poised processes, block writes | [`crate::poised`] |
//! | §3.1 cloning | [`crate::weave::Weaver::spawn_clone`] |
//! | Lemma 3.1 (Figures 2–4) | [`crate::combine31::combine`] |
//! | Lemma 3.2 / Theorem 3.3 (r² − r + 1) | [`crate::attack::attack_identical`], [`crate::bounds::max_identical_processes`] |
//! | Definition 3.1 (interruptible executions) | [`crate::interruptible::InterruptibleExecution`] |
//! | Definition 3.2 (excess capacity) | [`crate::interruptible::ExcessCapacity`] |
//! | Lemma 3.4 | [`crate::interruptible::construct_interruptible`] |
//! | Lemma 3.5 / Lemma 3.6 / Theorem 3.7 (Ω(√n)) | [`crate::combine35::attack_historyless`], [`crate::bounds::min_historyless_objects`] |
//! | Figure 1 (combining two executions) | the base splice inside [`crate::combine31`]; bench `fig1_combining` |
//! | Corollary 4.1 / 4.3 / 4.5 | [`crate::hierarchy::implementation_lower_bound`] |
//! | Theorem 4.2 (one bounded counter — Aspnes) | `randsync_consensus::WalkConsensus::with_bounded_counter` |
//! | Theorem 4.4 (one fetch&add) | `randsync_consensus::WalkConsensus::with_fetch_add` |
//! | Herlihy's CAS universality (cited) | `randsync_consensus::CasConsensus` |
//! | §4 2-process observations (swap, fetch&inc, test&set) | `randsync_consensus::{SwapTwoConsensus, FetchIncTwoConsensus, TasTwoConsensus}` |
//! | O(n)-register upper bound (cited \[9, 30\]) | `randsync_objects::SnapshotCounter` + `randsync_consensus::{WalkConsensus::with_register_counter, AhConsensus}` |
//! | Snapshot "Observation 1 in \[3\]" example | `randsync_objects::SnapshotArray` |
//! | Burns–Lynch lineage (related work) | `randsync_consensus::model_protocols::mutex` |
//! | Jayanti–Tan–Toueg multi-use n − 1 (conclusions) | [`crate::bounds::multiuse_lower_bound`] |
//! | Conclusions' Θ(n) conjecture | the measured gap in bench `thm37_sqrt_curve` |
//!
//! The experiment-id ↔ bench mapping lives in `DESIGN.md` §4 and the
//! recorded results in `EXPERIMENTS.md`.

#[cfg(test)]
mod tests {
    //! Compile-time liveness of the map: every referenced item must
    //! still exist (imports fail the build otherwise).
    #[allow(unused_imports)]
    use crate::attack::attack_identical;
    #[allow(unused_imports)]
    use crate::bounds::{
        composition_lower_bound, max_identical_processes, min_historyless_objects,
        multiuse_lower_bound,
    };
    #[allow(unused_imports)]
    use crate::combine31::combine;
    #[allow(unused_imports)]
    use crate::combine35::attack_historyless;
    #[allow(unused_imports)]
    use crate::hierarchy::implementation_lower_bound;
    #[allow(unused_imports)]
    use crate::interruptible::{construct_interruptible, ExcessCapacity, InterruptibleExecution};
    #[allow(unused_imports)]
    use crate::weave::Weaver;
    #[allow(unused_imports)]
    use randsync_consensus::{
        AhConsensus, CasConsensus, FetchIncTwoConsensus, SwapTwoConsensus, TasTwoConsensus,
        WalkConsensus,
    };

    #[test]
    fn the_map_compiles_against_live_items() {
        // The imports above are the assertion.
    }
}
