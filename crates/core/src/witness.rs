//! Replay-verified inconsistency witnesses.
//!
//! Every lower-bound construction in this crate ends the same way the
//! paper's proofs do: "this is an execution that decides both 0 and 1".
//! An [`InconsistencyWitness`] carries that execution together with the
//! initial inputs, and [`InconsistencyWitness::verify`] re-runs it from
//! scratch — so a witness is never taken on faith.

use core::fmt;

use randsync_model::runtime::{self, DynObject, ModelObject};
use randsync_model::{Configuration, Decision, Execution, ModelError, ProcessId, Protocol};

/// A concrete execution, from an initial configuration, in which two
/// processes decide different values — the paper's notion of a faulty
/// implementation demonstrated.
#[derive(Clone, Debug)]
pub struct InconsistencyWitness {
    /// Input per pool process (the configuration is
    /// `Configuration::initial_with_pool` over these).
    pub inputs: Vec<Decision>,
    /// The violating execution, replayable from the initial
    /// configuration.
    pub execution: Execution,
    /// A process that decides 0 in the final configuration.
    pub decides_zero: ProcessId,
    /// A process that decides 1 in the final configuration.
    pub decides_one: ProcessId,
    /// Number of pool processes that actually took steps — the quantity
    /// Lemma 3.1 bounds by `r² − r + (3v + 3w − v² − w²)/2`.
    pub processes_used: usize,
}

impl InconsistencyWitness {
    /// Package an inconsistency-reaching execution as a witness: replay
    /// it in the configuration algebra from
    /// [`Configuration::initial_with_pool`] over `inputs`, read off one
    /// 0-decider and one 1-decider, and count the participants. `None`
    /// if the execution does not replay or does not in fact end with
    /// both values decided — so a successful return is already
    /// algebra-verified (call [`InconsistencyWitness::verify`] to
    /// additionally check it against the runtime interpreter).
    pub fn from_execution<P: Protocol>(
        protocol: &P,
        inputs: &[Decision],
        execution: Execution,
    ) -> Option<InconsistencyWitness> {
        let start = Configuration::initial_with_pool(protocol, inputs, inputs.len());
        let (end, _) = execution.replay(protocol, &start).ok()?;
        let decisions = end.decisions();
        let zero = decisions.iter().find(|(_, d)| *d == 0).map(|(p, _)| *p)?;
        let one = decisions.iter().find(|(_, d)| *d == 1).map(|(p, _)| *p)?;
        let mut pids: Vec<_> = execution.steps().iter().map(|s| s.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        Some(InconsistencyWitness {
            inputs: inputs.to_vec(),
            execution,
            decides_zero: zero,
            decides_one: one,
            processes_used: pids.len(),
        })
    }

    /// Re-execute the witness and check that it really decides both
    /// values.
    ///
    /// The replay goes through the same interpreter that drives the
    /// threaded runtime ([`runtime::replay_execution`]), over
    /// [`ModelObject`] instances seeded from the protocol's
    /// [`ObjectSpec`](randsync_model::ObjectSpec)s — so a verified
    /// witness is a schedule the *runtime*, not just the configuration
    /// algebra, reproduces.
    ///
    /// # Errors
    ///
    /// Returns the defect as a [`WitnessError`]: a replay failure, or
    /// an execution that does not in fact decide both values.
    pub fn verify<P>(&self, protocol: &P) -> Result<(), WitnessError>
    where
        P: Protocol,
    {
        let objects = ModelObject::instantiate_all(protocol);
        let refs: Vec<&dyn DynObject> = objects.iter().map(AsRef::as_ref).collect();
        self.verify_on(protocol, &refs)
    }

    /// [`InconsistencyWitness::verify`] against caller-supplied shared
    /// objects — e.g. the bridged atomics-backed objects of
    /// `randsync-objects` — instead of fresh [`ModelObject`]s. The
    /// objects must be freshly initialized per the protocol's specs and
    /// in object-id order.
    ///
    /// # Errors
    ///
    /// See [`InconsistencyWitness::verify`].
    pub fn verify_on<P>(
        &self,
        protocol: &P,
        objects: &[&dyn DynObject],
    ) -> Result<(), WitnessError>
    where
        P: Protocol,
    {
        let decisions = runtime::replay_execution(protocol, objects, &self.inputs, &self.execution)
            .map_err(WitnessError::Replay)?;
        let z = decisions.get(self.decides_zero.index()).copied().flatten();
        if z != Some(0) {
            return Err(WitnessError::WrongDecision {
                pid: self.decides_zero,
                expected: 0,
                got: z,
            });
        }
        let o = decisions.get(self.decides_one.index()).copied().flatten();
        if o != Some(1) {
            return Err(WitnessError::WrongDecision {
                pid: self.decides_one,
                expected: 1,
                got: o,
            });
        }
        Ok(())
    }

    /// The initial configuration this witness replays from.
    pub fn initial_configuration<P>(&self, protocol: &P) -> Configuration<P::State>
    where
        P: Protocol,
    {
        Configuration::initial_with_pool(protocol, &self.inputs, self.inputs.len())
    }

    /// Package this witness as a flight-recorder
    /// [`ExecutionTrace`](randsync_obs::ExecutionTrace) for the protocol
    /// registered under `protocol_label`, built with parameters `n` and
    /// `r`.
    ///
    /// The trace's `inputs` are the witness's full process *pool*
    /// (which may exceed `n` — the adversaries clone processes), and
    /// its decisions record the witness's claim: `decides_zero` → 0,
    /// `decides_one` → 1, everyone else undecided. `randsync replay`
    /// re-executes the schedule and checks those decisions.
    pub fn flight_trace(
        &self,
        protocol_label: &str,
        n: usize,
        r: usize,
    ) -> randsync_obs::ExecutionTrace {
        let mut decisions = vec![None; self.inputs.len()];
        if let Some(slot) = decisions.get_mut(self.decides_zero.index()) {
            *slot = Some(0);
        }
        if let Some(slot) = decisions.get_mut(self.decides_one.index()) {
            *slot = Some(1);
        }
        randsync_obs::ExecutionTrace {
            schema_version: randsync_obs::TRACE_SCHEMA_VERSION,
            protocol: protocol_label.to_string(),
            n,
            r,
            seed: 0,
            interpreter: "witness".to_string(),
            inputs: self.inputs.clone(),
            steps: self
                .execution
                .steps()
                .iter()
                .map(|s| (s.pid.index() as u32, s.coin))
                .collect(),
            decisions,
        }
    }

    /// Dump [`InconsistencyWitness::flight_trace`] into `dir` under a
    /// content-derived file name and return the path — the harnesses'
    /// on-failure hook, so a failing check always leaves a
    /// `randsync replay`-able artifact behind.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors as [`std::io::Error`].
    pub fn dump_flight_trace(
        &self,
        protocol_label: &str,
        n: usize,
        r: usize,
        dir: &std::path::Path,
    ) -> std::io::Result<std::path::PathBuf> {
        let trace = self.flight_trace(protocol_label, n, r);
        let path = dir.join(format!(
            "randsync-witness-{}-n{}-r{}-{}steps.jsonl",
            protocol_label.replace(|c: char| !c.is_ascii_alphanumeric(), "_"),
            n,
            r,
            trace.steps.len(),
        ));
        trace
            .write_to(&path)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(path)
    }

    /// Greedily minimize the witness: repeatedly drop steps whose
    /// removal leaves an execution that still replays and still decides
    /// two different values (delta-debugging style, passes from the
    /// end), then try **commuting** adjacent steps of different
    /// processes whose pending operations are independent under the
    /// paper's algebra ([`ObjectKind::independent`]) — a commutation is
    /// kept only when it unlocks at least one further deletion. The
    /// loop runs to a joint fixpoint: the result is 1-minimal with
    /// respect to single-step removal *modulo* single adjacent
    /// transpositions, and the deciders are recomputed.
    ///
    /// Minimization never weakens a witness — the returned value has
    /// been re-verified.
    ///
    /// [`ObjectKind::independent`]: randsync_model::ObjectKind::independent
    pub fn minimize<P>(&self, protocol: &P) -> InconsistencyWitness
    where
        P: Protocol,
    {
        self.minimize_report(protocol).0
    }

    /// [`InconsistencyWitness::minimize`], also reporting how many
    /// steps were deleted and how many independent adjacent pairs were
    /// commuted on the way to the fixpoint.
    pub fn minimize_report<P>(&self, protocol: &P) -> (InconsistencyWitness, MinimizeStats)
    where
        P: Protocol,
    {
        let start = self.initial_configuration(protocol);
        let specs = protocol.objects();
        let mut steps = self.execution.steps().to_vec();
        let mut stats = MinimizeStats {
            deleted: delete_pass(protocol, &start, &mut steps),
            commuted: 0,
        };
        // Commute phase: a schedule can be stuck for deletion (every
        // single removal breaks the replay) yet shrinkable after
        // swapping two independent neighbors. Each successful swap
        // restarts the scan, so the phases interleave to a fixpoint.
        'swaps: loop {
            for i in 0..steps.len().saturating_sub(1) {
                if steps[i].pid == steps[i + 1].pid
                    || !independent_at(protocol, &start, &specs, &steps, i)
                {
                    continue;
                }
                let mut candidate = steps.clone();
                candidate.swap(i, i + 1);
                // Independence guarantees the swap preserves the final
                // configuration; replaying anyway keeps the ground
                // truth in charge.
                if !survives(protocol, &start, &candidate) {
                    continue;
                }
                let deleted = delete_pass(protocol, &start, &mut candidate);
                if deleted > 0 {
                    stats.deleted += deleted;
                    stats.commuted += 1;
                    steps = candidate;
                    continue 'swaps;
                }
            }
            break;
        }
        let execution = Execution::from_steps(steps);
        let (end, _) =
            execution.replay(protocol, &start).expect("minimized witness replays");
        let decisions = end.decisions();
        let zero = decisions.iter().find(|(_, d)| *d == 0).map(|(p, _)| *p);
        let one = decisions.iter().find(|(_, d)| *d == 1).map(|(p, _)| *p);
        let mut pids: Vec<_> = execution.steps().iter().map(|s| s.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        let minimized = InconsistencyWitness {
            inputs: self.inputs.clone(),
            execution,
            decides_zero: zero.expect("a 0-decider survives minimization"),
            decides_one: one.expect("a 1-decider survives minimization"),
            processes_used: pids.len(),
        };
        minimized.verify(protocol).expect("minimized witness verifies");
        (minimized, stats)
    }
}

/// What [`InconsistencyWitness::minimize_report`] did to the schedule.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct MinimizeStats {
    /// Steps removed across all deletion passes.
    pub deleted: usize,
    /// Independent adjacent transpositions kept (each unlocked at
    /// least one deletion).
    pub commuted: usize,
}

/// Whether `steps` replays from `start` and still ends inconsistent.
fn survives<P: Protocol>(
    protocol: &P,
    start: &Configuration<P::State>,
    steps: &[randsync_model::Step],
) -> bool {
    Execution::from_steps(steps.to_vec())
        .replay(protocol, start)
        .map(|(end, _)| end.is_inconsistent())
        .unwrap_or(false)
}

/// Delete single steps (scanning from the end, repeating until stable)
/// as long as the residue still [`survives`]. Returns how many were
/// removed.
fn delete_pass<P: Protocol>(
    protocol: &P,
    start: &Configuration<P::State>,
    steps: &mut Vec<randsync_model::Step>,
) -> usize {
    let mut deleted = 0;
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = steps.len();
        while i > 0 {
            i -= 1;
            let mut candidate = steps.clone();
            candidate.remove(i);
            if survives(protocol, start, &candidate) {
                *steps = candidate;
                deleted += 1;
                changed = true;
            }
        }
    }
    deleted
}

/// Whether `steps[i]` and `steps[i + 1]` are pending *independent*
/// operations at the configuration reached by the prefix — i.e. their
/// transposition is a Mazurkiewicz equivalence. A process's next action
/// depends only on its own state, so the neighbor's action can be read
/// off the same prefix configuration.
fn independent_at<P: Protocol>(
    protocol: &P,
    start: &Configuration<P::State>,
    specs: &[randsync_model::ObjectSpec],
    steps: &[randsync_model::Step],
    i: usize,
) -> bool {
    let prefix = Execution::from_steps(steps[..i].to_vec());
    let Ok((config, _)) = prefix.replay(protocol, start) else {
        return false;
    };
    let enabled = |pid: ProcessId| {
        config.next_action(protocol, pid).map(|a| match a {
            randsync_model::Action::Decide(d) => randsync_model::EnabledStep::Decide(d),
            randsync_model::Action::Invoke { object, op } => {
                randsync_model::EnabledStep::Invoke(object, op)
            }
        })
    };
    match (enabled(steps[i].pid), enabled(steps[i + 1].pid)) {
        (Some(a), Some(b)) => a.independent(&b, specs),
        _ => false,
    }
}

impl fmt::Display for InconsistencyWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inconsistency: {} steps, {} processes used; {:?} decides 0, {:?} decides 1",
            self.execution.len(),
            self.processes_used,
            self.decides_zero,
            self.decides_one
        )
    }
}

/// Why a witness failed verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessError {
    /// The execution could not be replayed.
    Replay(ModelError),
    /// A designated process did not decide the claimed value.
    WrongDecision {
        /// The process in question.
        pid: ProcessId,
        /// The value the witness claimed.
        expected: Decision,
        /// What the replay actually produced (`None` = undecided).
        got: Option<Decision>,
    },
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::Replay(e) => write!(f, "witness replay failed: {e}"),
            WitnessError::WrongDecision { pid, expected, got } => {
                write!(f, "witness claims {pid:?} decides {expected}, replay produced {got:?}")
            }
        }
    }
}

impl std::error::Error for WitnessError {}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_consensus::model_protocols::NaiveWriteRead;
    use randsync_model::{Explorer, Step};

    fn naive_violation() -> (NaiveWriteRead, InconsistencyWitness) {
        let p = NaiveWriteRead::new(2);
        let out = Explorer::default().explore(&p, &[0, 1]);
        let execution = out.consistency_violation.expect("naive is flawed");
        // Determine who decided what by replaying.
        let start = Configuration::initial(&p, &[0, 1]);
        let (end, _) = execution.replay(&p, &start).unwrap();
        let decisions = end.decisions();
        let zero = decisions.iter().find(|(_, d)| *d == 0).unwrap().0;
        let one = decisions.iter().find(|(_, d)| *d == 1).unwrap().0;
        let w = InconsistencyWitness {
            inputs: vec![0, 1],
            execution,
            decides_zero: zero,
            decides_one: one,
            processes_used: 2,
        };
        (p, w)
    }

    #[test]
    fn valid_witness_verifies() {
        let (p, w) = naive_violation();
        w.verify(&p).unwrap();
        assert!(w.to_string().contains("decides 0"));
    }

    #[test]
    fn tampered_witness_is_rejected() {
        let (p, mut w) = naive_violation();
        // Swap the claimed deciders: verification must fail.
        core::mem::swap(&mut w.decides_zero, &mut w.decides_one);
        let err = w.verify(&p).unwrap_err();
        assert!(matches!(err, WitnessError::WrongDecision { .. }));
    }

    #[test]
    fn truncated_witness_is_rejected() {
        let (p, mut w) = naive_violation();
        w.execution = Execution::from_steps(w.execution.steps()[..1].to_vec());
        let err = w.verify(&p).unwrap_err();
        assert!(matches!(err, WitnessError::WrongDecision { got: None, .. }));
    }

    #[test]
    fn minimization_shrinks_and_reverifies() {
        let (p, w) = naive_violation();
        let m = w.minimize(&p);
        m.verify(&p).unwrap();
        assert!(m.execution.len() <= w.execution.len());
        // The minimal naive violation: write, write, read, read,
        // decide, decide = 6 steps (already minimal from BFS) — and
        // minimization must not grow it.
        assert!(m.execution.len() <= 6);
        assert!(m.processes_used <= w.processes_used);
    }

    #[test]
    fn minimization_shrinks_adversary_witnesses() {
        use randsync_consensus::model_protocols::Optimistic;
        let p = Optimistic::new(2, 3);
        let (w, _) = crate::attack::attack_for_witness(
            &p,
            &crate::combine31::CombineLimits::default(),
        )
        .unwrap();
        let m = w.minimize(&p);
        m.verify(&p).unwrap();
        assert!(m.execution.len() <= w.execution.len());
        // The constructed witness carries clone scaffolding the minimal
        // counterexample does not need.
        assert!(
            m.processes_used <= w.processes_used,
            "minimization should never need more processes"
        );
    }

    #[test]
    fn minimize_report_accounts_for_every_removed_step() {
        use randsync_consensus::model_protocols::Optimistic;
        let p = Optimistic::new(2, 3);
        let (w, _) = crate::attack::attack_for_witness(
            &p,
            &crate::combine31::CombineLimits::default(),
        )
        .unwrap();
        let (m, stats) = w.minimize_report(&p);
        m.verify(&p).unwrap();
        // Every deletion removes exactly one step and commutations
        // remove none, so the ledger must balance.
        assert_eq!(stats.deleted, w.execution.len() - m.execution.len());
        assert!(
            stats.commuted <= stats.deleted,
            "a kept commutation must have unlocked a deletion: {stats:?}"
        );
        // The convenience wrapper is the same computation.
        let (m2, s2) = crate::attack::attack_minimized(
            &p,
            &crate::combine31::CombineLimits::default(),
        )
        .unwrap();
        m2.verify(&p).unwrap();
        // The adversary and the shrinker are both deterministic.
        assert_eq!(m2.execution.len(), m.execution.len());
        assert_eq!(s2, stats);
    }

    #[test]
    fn flight_trace_round_trips_and_replays() {
        let (p, w) = naive_violation();
        let dir = std::env::temp_dir();
        let path = w.dump_flight_trace("naive", 2, 2, &dir).expect("dump");
        let trace = randsync_obs::ExecutionTrace::read_from(&path).expect("read back");
        assert_eq!(trace.protocol, "naive");
        assert_eq!(trace.inputs, w.inputs);
        assert_eq!(trace.steps.len(), w.execution.len());
        // The recorded steps rebuild the witness's execution exactly.
        let rebuilt = Execution::from_steps(
            trace
                .steps
                .iter()
                .map(|&(pid, coin)| Step::with_coin(ProcessId(pid as usize), coin))
                .collect(),
        );
        let objects = ModelObject::instantiate_all(&p);
        let refs: Vec<&dyn DynObject> = objects.iter().map(AsRef::as_ref).collect();
        let decisions =
            runtime::replay_execution(&p, &refs, &trace.inputs, &rebuilt).expect("replays");
        assert_eq!(decisions[w.decides_zero.index()], Some(0));
        assert_eq!(decisions[w.decides_one.index()], Some(1));
        assert_eq!(trace.decisions[w.decides_zero.index()], Some(0));
        assert_eq!(trace.decisions[w.decides_one.index()], Some(1));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_execution_fails_replay() {
        let (p, mut w) = naive_violation();
        let mut steps = w.execution.steps().to_vec();
        // Schedule a nonexistent process.
        steps.push(Step::of(ProcessId(99)));
        w.execution = Execution::from_steps(steps);
        let err = w.verify(&p).unwrap_err();
        assert!(matches!(err, WitnessError::Replay(_)), "{err}");
        assert!(!err.to_string().is_empty());
    }
}
