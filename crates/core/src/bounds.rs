//! The paper's closed-form bounds.
//!
//! Everything here is arithmetic, but it is the arithmetic the rest of
//! the workspace is built to witness: the adversary in [`crate::attack`]
//! realizes [`max_identical_processes`] constructively, and the
//! separation tables in [`crate::hierarchy`] are derived from
//! [`min_historyless_objects`] and [`composition_lower_bound`].

/// Theorem 3.3: at most `r² − r + 1` **identical** processes can solve
/// randomized consensus using `r` read–write registers.
///
/// Equivalently (Lemma 3.2): there is no implementation of consensus
/// satisfying nondeterministic solo termination from `r` registers
/// using `r² − r + 2` or more identical processes.
pub fn max_identical_processes(r: u64) -> u64 {
    r * r - r + 1
}

/// The least number of read–write registers *not excluded* by
/// Theorem 3.3 for `n` identical processes: the smallest `r` with
/// `r² − r + 1 ≥ n`.
pub fn min_registers_identical(n: u64) -> u64 {
    if n <= 1 {
        return 1;
    }
    // Solve r² − r + 1 ≥ n: r ≥ (1 + √(4n−3)) / 2.
    let mut r = ((1.0 + ((4 * n - 3) as f64).sqrt()) / 2.0).floor() as u64;
    while max_identical_processes(r) < n {
        r += 1;
    }
    while r > 1 && max_identical_processes(r - 1) >= n {
        r -= 1;
    }
    r
}

/// Lemma 3.6: there is no implementation of consensus satisfying
/// nondeterministic solo termination from `r` **historyless** objects
/// using `3r² + r` or more processes; so at most this many minus one.
pub fn max_processes_historyless(r: u64) -> u64 {
    3 * r * r + r - 1
}

/// Theorem 3.7: the least number of historyless objects *not excluded*
/// by Lemma 3.6 for `n` processes — the smallest `r` with
/// `3r² + r − 1 ≥ n`. Grows as `Θ(√n)`.
pub fn min_historyless_objects(n: u64) -> u64 {
    if n <= 3 {
        return 1;
    }
    let mut r = (((n as f64) / 3.0).sqrt()).floor() as u64;
    if r == 0 {
        r = 1;
    }
    while max_processes_historyless(r) < n {
        r += 1;
    }
    while r > 1 && max_processes_historyless(r - 1) >= n {
        r -= 1;
    }
    r
}

/// The O(n) **upper** bound quoted in Section 1: randomized n-process
/// consensus is solvable from this many bounded read–write registers
/// (our construction: the n-slot snapshot counter driving the walk).
pub fn registers_upper_bound(n: u64) -> u64 {
    n.max(1)
}

/// Theorem 2.1: if `f(n)` instances of `X` solve n-process randomized
/// consensus and `g(n)` instances of `Y` are required, then any
/// randomized non-blocking implementation of `X` from `Y` requires
/// `g(n)/f(n)` instances of `Y`. Rounded up, because object counts are
/// integral.
///
/// # Panics
///
/// Panics if `f == 0` (an implementation of consensus from zero objects
/// is vacuous).
pub fn composition_lower_bound(g: u64, f: u64) -> u64 {
    assert!(f > 0, "f(n) = 0 makes the composition vacuous");
    g.div_ceil(f)
}

/// Corollaries 4.1, 4.3, 4.5 in one formula: implementing any object of
/// which **one** instance solves randomized consensus (compare&swap,
/// counter, fetch&add, fetch&increment, fetch&decrement) from
/// historyless objects requires at least `min_historyless_objects(n)`
/// instances.
pub fn corollary_lower_bound(n: u64) -> u64 {
    composition_lower_bound(min_historyless_objects(n), 1)
}

/// The **multiple-use** strengthening the paper's conclusions cite
/// (Jayanti, Tan & Toueg): implementing a *multi-use* object such as an
/// increment, fetch&add, or compare&swap register — where each process
/// may access it repeatedly — from registers or swap registers takes
/// `n − 1` instances, versus the single-access Θ(√n)-vs-O(n) regime
/// this paper establishes.
pub fn multiuse_lower_bound(n: u64) -> u64 {
    n.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_33_small_values() {
        assert_eq!(max_identical_processes(1), 1);
        assert_eq!(max_identical_processes(2), 3);
        assert_eq!(max_identical_processes(3), 7);
        assert_eq!(max_identical_processes(4), 13);
        assert_eq!(max_identical_processes(10), 91);
    }

    #[test]
    fn lemma_36_small_values() {
        assert_eq!(max_processes_historyless(1), 3);
        assert_eq!(max_processes_historyless(2), 13);
        assert_eq!(max_processes_historyless(3), 29);
    }

    #[test]
    fn inversions_round_trip() {
        for r in 1..200u64 {
            assert_eq!(min_registers_identical(max_identical_processes(r)), r);
            assert_eq!(min_historyless_objects(max_processes_historyless(r)), r);
            // One more process forces one more object.
            assert_eq!(min_registers_identical(max_identical_processes(r) + 1), r + 1);
            assert_eq!(min_historyless_objects(max_processes_historyless(r) + 1), r + 1);
        }
    }

    #[test]
    fn min_objects_is_monotone() {
        let mut prev = 0;
        for n in 1..5000u64 {
            let r = min_historyless_objects(n);
            assert!(r >= prev);
            prev = r;
        }
    }

    #[test]
    fn sqrt_growth() {
        // Θ(√n): bracket min_historyless_objects(n) between
        // √(n/3) − 1 and √n for large n.
        for n in [100u64, 1_000, 10_000, 1_000_000] {
            let r = min_historyless_objects(n);
            let lo = ((n as f64) / 3.0).sqrt() - 1.0;
            let hi = (n as f64).sqrt() + 1.0;
            assert!((r as f64) >= lo, "n={n}, r={r}");
            assert!((r as f64) <= hi, "n={n}, r={r}");
        }
    }

    #[test]
    fn composition_rounds_up() {
        assert_eq!(composition_lower_bound(10, 3), 4);
        assert_eq!(composition_lower_bound(9, 3), 3);
        assert_eq!(composition_lower_bound(0, 5), 0);
        assert_eq!(composition_lower_bound(1, 1), 1);
    }

    #[test]
    #[should_panic(expected = "vacuous")]
    fn composition_rejects_zero_f() {
        let _ = composition_lower_bound(5, 0);
    }

    #[test]
    fn corollaries_equal_theorem_37() {
        for n in [2u64, 10, 100, 1000] {
            assert_eq!(corollary_lower_bound(n), min_historyless_objects(n));
        }
    }

    #[test]
    fn upper_and_lower_bounds_do_not_cross() {
        for n in 1..2000u64 {
            assert!(min_historyless_objects(n) <= registers_upper_bound(n));
        }
    }

    #[test]
    fn multiuse_bound_dominates_the_single_access_bound_eventually() {
        // The conclusions' point: multi-use objects are harder — for
        // every n ≥ 2, n − 1 ≥ Ω(√n), strictly so once n > 4.
        for n in 2u64..10_000 {
            assert!(multiuse_lower_bound(n) + 1 >= min_historyless_objects(n));
        }
        assert!(multiuse_lower_bound(100) > min_historyless_objects(100));
        assert_eq!(multiuse_lower_bound(0), 0);
        assert_eq!(multiuse_lower_bound(1), 0);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(min_registers_identical(0), 1);
        assert_eq!(min_registers_identical(1), 1);
        assert_eq!(min_registers_identical(2), 2);
        assert_eq!(min_historyless_objects(0), 1);
        assert_eq!(min_historyless_objects(3), 1);
        assert_eq!(min_historyless_objects(4), 2);
        assert_eq!(registers_upper_bound(0), 1);
    }
}
