//! Property tests for the proof machinery: clone invisibility (the
//! Section 3.1 cloning lemma, checked over random schedules) and
//! interruptible-execution validity (Definition 3.1, checked over
//! random pools).

use std::collections::BTreeSet;

use proptest::prelude::*;
use randsync_consensus::model_protocols::{Optimistic, SwapChain, Zigzag};
use randsync_core::interruptible::{construct_interruptible, ExcessCapacity};
use randsync_core::weave::Weaver;
use randsync_model::{
    Configuration, ExploreLimits, ObjectId, ProcessId, Protocol, Step,
};

/// Apply a random schedule to a weaver, restricted to the two original
/// processes (so the schedule means the same thing whether or not
/// clones have been woven in), skipping inactive picks.
fn drive<P: Protocol>(w: &mut Weaver<'_, P>, picks: &[u8]) {
    for &raw in picks {
        let pid = ProcessId(raw as usize % 2);
        if w.config().is_active(pid) {
            let _ = w.append(Step::of(pid));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The cloning lemma, operationally: weaving a clone of any process
    /// through any prefix of its steps leaves every *other* process's
    /// state and every register value unchanged at the end of any
    /// subsequent schedule.
    #[test]
    fn clones_are_invisible_to_everyone_else(
        r in 1usize..4,
        pre in prop::collection::vec(any::<u8>(), 1..10),
        post in prop::collection::vec(any::<u8>(), 0..10),
        clone_of in any::<prop::sample::Index>(),
        upto_sel in any::<prop::sample::Index>(),
    ) {
        let p = Optimistic::new(2, r);

        // Plain run: pre ++ post.
        let mut plain = Weaver::new(&p, vec![0, 1]);
        drive(&mut plain, &pre);
        drive(&mut plain, &post);

        // Woven run: pre, then a clone woven through a prefix of some
        // original process's steps, then post.
        let mut woven = Weaver::new(&p, vec![0, 1]);
        drive(&mut woven, &pre);
        let of = ProcessId(clone_of.index(2));
        let taken = woven.steps_of(of);
        let upto = upto_sel.index(taken + 1);
        let clone = woven.spawn_clone(of, upto).expect("clone weaves");
        drive(&mut woven, &post);

        // All original processes agree between the runs; values agree.
        for i in 0..2 {
            prop_assert_eq!(
                &woven.config().procs[i],
                &plain.config().procs[i],
                "process {} observed the clone",
                i
            );
        }
        prop_assert_eq!(&woven.config().values, &plain.config().values);
        // The clone took exactly `upto` steps and the weaver replays.
        prop_assert_eq!(woven.steps_of(clone), upto);
        prop_assert!(woven.self_check().unwrap());
    }

    /// Interruptible executions constructed over random pools always
    /// validate against Definition 3.1 and decide the unanimous input.
    #[test]
    fn constructed_interruptible_executions_validate(
        r in 1usize..4,
        pool in 4usize..12,
        input in 0u8..2,
        zig in any::<bool>(),
    ) {
        let result = if zig {
            let p = Zigzag::new(pool, r);
            build_and_validate(&p, pool, input)
        } else {
            let p = Optimistic::new(pool, r);
            build_and_validate(&p, pool, input)
        };
        match result {
            Ok(decided) => prop_assert_eq!(decided, input, "validity of the IE"),
            // Small pools may legitimately be insufficient; that is the
            // lemma's threshold, not a failure.
            Err(msg) => prop_assert!(
                msg.contains("insufficient"),
                "unexpected failure: {}", msg
            ),
        }
    }

    /// The same over a non-register historyless protocol (swap).
    #[test]
    fn swap_chain_interruptible_executions_validate(
        pool in 2usize..8,
        input in 0u8..2,
    ) {
        let p = SwapChain::new(pool);
        match build_and_validate(&p, pool, input) {
            Ok(decided) => prop_assert_eq!(decided, input),
            Err(msg) => prop_assert!(msg.contains("insufficient"), "{}", msg),
        }
    }

    /// Block writes through pieces really fix values: replaying an IE's
    /// steps after unrelated activity on *covered* objects yields the
    /// same decision (the historyless obliteration property).
    #[test]
    fn piece_block_writes_obliterate_prior_writes(
        pool in 4usize..8,
        noise in prop::collection::vec(any::<u8>(), 0..6),
    ) {
        let p = SwapChain::new(pool + 1);
        let inputs = vec![0u8; pool + 1];
        let base = Configuration::initial_with_pool(&p, &inputs, pool + 1);
        // Reserve the last process as the noise-maker; the IE is built
        // over the rest.
        let procs: BTreeSet<ProcessId> = (0..pool).map(ProcessId).collect();
        let Ok((ie, _)) = construct_interruptible(
            &p,
            &base,
            BTreeSet::new(),
            procs,
            &ExcessCapacity::default(),
            &ExploreLimits::default(),
        ) else {
            // Insufficient pool; nothing to check.
            return Ok(());
        };
        // Noise: the spare process hammers the swap register before the
        // IE runs. (It is historyless: the IE's first block write to it
        // obliterates everything.)
        let mut noisy = base.clone();
        let spare = ProcessId(pool);
        for _ in 0..noise.len() {
            if noisy.is_active(spare)
                && noisy.poised_at(&p, spare) == Some(ObjectId(0))
            {
                let _ = noisy.step(&p, spare, 0);
                break; // one swap is all the noise available
            }
        }
        // The IE replays from the noisy configuration once its first
        // non-empty block write covers the object; pieces with empty
        // object sets perform no writes, so only check when the IE
        // actually covers object 0 in its first non-empty piece.
        let steps = ie.steps();
        let mut cfg = noisy;
        let mut ok = true;
        for s in &steps {
            if cfg.step(&p, s.pid, s.coin).is_err() {
                ok = false;
                break;
            }
        }
        if ok {
            let d = cfg.procs[ie.decider.index()].decision();
            prop_assert_eq!(d, Some(ie.decides), "decision changed under noise");
        }
    }
}

fn build_and_validate<P: Protocol>(
    protocol: &P,
    pool: usize,
    input: u8,
) -> Result<u8, String> {
    let inputs = vec![input; pool];
    let base = Configuration::initial_with_pool(protocol, &inputs, pool);
    let procs: BTreeSet<ProcessId> = (0..pool).map(ProcessId).collect();
    let (ie, _) = construct_interruptible(
        protocol,
        &base,
        BTreeSet::new(),
        procs,
        &ExcessCapacity::default(),
        &ExploreLimits::default(),
    )
    .map_err(|e| e.to_string())?;
    ie.validate(protocol, &base)?;
    Ok(ie.decides)
}
