//! Property tests for the closed-form bounds and the witness
//! machinery's tamper resistance.

use proptest::prelude::*;
use randsync_core::bounds::{
    composition_lower_bound, max_identical_processes, max_processes_historyless,
    min_historyless_objects, min_registers_identical, registers_upper_bound,
};

proptest! {
    /// The inverse functions are exact: min_objects(threshold(r)) == r
    /// and threshold(min_objects(n)) ≥ n.
    #[test]
    fn inverses_are_exact(r in 1u64..5_000) {
        prop_assert_eq!(min_registers_identical(max_identical_processes(r)), r);
        prop_assert_eq!(min_historyless_objects(max_processes_historyless(r)), r);
    }

    #[test]
    fn min_objects_is_the_least_sufficient(n in 1u64..2_000_000) {
        let r = min_historyless_objects(n);
        prop_assert!(max_processes_historyless(r) >= n);
        if r > 1 {
            prop_assert!(max_processes_historyless(r - 1) < n);
        }
        let ri = min_registers_identical(n);
        prop_assert!(max_identical_processes(ri) >= n);
        if ri > 1 {
            prop_assert!(max_identical_processes(ri - 1) < n);
        }
    }

    /// Monotonicity of every bound.
    #[test]
    fn bounds_are_monotone(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(min_historyless_objects(lo) <= min_historyless_objects(hi));
        prop_assert!(min_registers_identical(lo) <= min_registers_identical(hi));
        prop_assert!(registers_upper_bound(lo) <= registers_upper_bound(hi));
    }

    /// The √ envelope: (r−1)·r·3 < n implies r objects may be needed —
    /// concretely, min_historyless_objects(n)² ≤ n and
    /// 3·(min+1)² + (min+1) > n.
    #[test]
    fn sqrt_envelope(n in 4u64..4_000_000) {
        let r = min_historyless_objects(n);
        prop_assert!(3 * r * r + r >= n, "threshold covers n");
        prop_assert!((r as f64) <= (n as f64).sqrt() + 1.0);
        prop_assert!((r as f64) >= ((n as f64) / 3.0).sqrt() - 1.0);
    }

    /// Theorem 2.1 arithmetic: h = ceil(g/f) satisfies f·h ≥ g and is
    /// the least such integer.
    #[test]
    fn composition_is_least_sufficient(g in 0u64..1_000_000, f in 1u64..1_000) {
        let h = composition_lower_bound(g, f);
        prop_assert!(f * h >= g);
        if h > 0 {
            prop_assert!(f * (h - 1) < g);
        }
    }

    /// The lower bound never exceeds the upper bound (no contradiction
    /// between Theorem 3.7 and the O(n) construction).
    #[test]
    fn lower_never_exceeds_upper(n in 1u64..10_000_000) {
        prop_assert!(min_historyless_objects(n) <= registers_upper_bound(n));
    }
}

mod witness_tampering {
    use proptest::prelude::*;
    use randsync_consensus::model_protocols::Optimistic;
    use randsync_core::attack::attack_for_witness;
    use randsync_core::combine31::CombineLimits;
    use randsync_model::{Execution, Step};

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Dropping any suffix of a witness execution destroys it: the
        /// attack's executions contain no wasted tail (the deciding
        /// steps are at the very end, as the construction dictates).
        #[test]
        fn truncated_witnesses_fail_verification(
            r in 1usize..4,
            cut in 1usize..4,
        ) {
            let p = Optimistic::new(2, r);
            let (witness, _) =
                attack_for_witness(&p, &CombineLimits::default()).unwrap();
            let len = witness.execution.len();
            prop_assume!(cut < len);
            let mut tampered = witness.clone();
            tampered.execution =
                Execution::from_steps(witness.execution.steps()[..len - cut].to_vec());
            prop_assert!(tampered.verify(&p).is_err());
        }

        /// Injecting a bogus step makes verification fail-closed rather
        /// than panic.
        #[test]
        fn corrupted_witnesses_fail_closed(
            r in 1usize..4,
            at in any::<prop::sample::Index>(),
        ) {
            let p = Optimistic::new(2, r);
            let (witness, _) =
                attack_for_witness(&p, &CombineLimits::default()).unwrap();
            let mut steps = witness.execution.steps().to_vec();
            let pos = at.index(steps.len());
            steps.insert(pos, Step::of(randsync_model::ProcessId(usize::MAX / 2)));
            let mut tampered = witness.clone();
            tampered.execution = Execution::from_steps(steps);
            prop_assert!(tampered.verify(&p).is_err());
        }
    }
}

mod witness_shrinking {
    use proptest::prelude::*;
    use randsync_consensus::model_protocols::{Optimistic, Zigzag};
    use randsync_core::attack::attack_minimized;
    use randsync_core::combine31::CombineLimits;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Shrinking never breaks a witness: after deleting steps and
        /// commuting independent neighbors, the minimized schedule
        /// still fails consensus (verify succeeds in proving the
        /// double decision), every removed step is accounted for, the
        /// shrink is idempotent, and the minimized flight trace is
        /// bit-identical across replays.
        #[test]
        fn minimized_witnesses_still_verify(
            r in 1usize..4,
            zig in any::<bool>(),
        ) {
            macro_rules! check {
                ($p:expr) => {{
                    let p = $p;
                    let (min, stats) =
                        attack_minimized(&p, &CombineLimits::default()).unwrap();
                    // The shrunk schedule is still a real counterexample.
                    prop_assert!(min.verify(&p).is_ok(), "minimized witness broke");
                    // Idempotence: a second shrink finds nothing to do.
                    let (again, s2) = min.minimize_report(&p);
                    prop_assert_eq!(s2.deleted, 0, "first shrink left dead steps");
                    prop_assert_eq!(again.execution.len(), min.execution.len());
                    // Replays are bit-identical: the flight trace is a
                    // pure function of the witness.
                    let t1 = min.flight_trace("shrunk", 2, r);
                    let t2 = min.flight_trace("shrunk", 2, r);
                    prop_assert_eq!(t1, t2, "flight trace not deterministic");
                    stats
                }};
            }
            if zig {
                check!(Zigzag::new(2, r));
            } else {
                check!(Optimistic::new(2, r));
            }
        }
    }
}
