//! # randsync-consensus
//!
//! Every consensus protocol the paper states, cites, or depends on —
//! implemented twice:
//!
//! * **threaded** (this crate's top-level modules): real multi-threaded
//!   implementations over the atomics-backed objects of
//!   `randsync-objects`, all satisfying the paper's correctness
//!   conditions (*consistency*: all processes return the same value;
//!   *validity*: the returned value is some process's input);
//! * **as model protocols** ([`model_protocols`]): the same state
//!   machines expressed against `randsync-model`'s
//!   [`Protocol`](randsync_model::Protocol) trait, so they can be driven
//!   by the simulator, exhaustively model checked, and attacked by the
//!   lower-bound adversary in `randsync-core` — together with
//!   deliberately *flawed* protocols the adversary must break.
//!
//! ## Protocol inventory
//!
//! | Protocol | Objects | Paper hook |
//! |---|---|---|
//! | [`WalkConsensus`] over one bounded counter | 1 | Theorem 4.2 (Aspnes) |
//! | [`WalkConsensus`] over one fetch&add register | 1 | Theorem 4.4 |
//! | [`WalkConsensus`] over the n-register counter | O(n) registers | the O(n) upper bound of Section 1 / Corollary 4.3 |
//! | [`CasConsensus`] | 1 compare&swap register | Herlihy \[20\], deterministic |
//! | [`SwapTwoConsensus`] | 1 swap register, n = 2 | Section 4's 2-process separations |
//! | [`TasTwoConsensus`] | 1 test&set + 2 registers, n = 2 | Section 4's 2-process separations |
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use randsync_consensus::{Consensus, WalkConsensus};
//! use randsync_objects::FetchAddRegister;
//!
//! // Theorem 4.4: randomized n-process consensus from a single
//! // fetch&add register.
//! let n = 4;
//! let proto = Arc::new(WalkConsensus::with_fetch_add(FetchAddRegister::new(0), n, 0xFEED));
//! let mut handles = Vec::new();
//! for p in 0..n {
//!     let proto = Arc::clone(&proto);
//!     handles.push(std::thread::spawn(move || proto.decide(p, (p % 2) as u8)));
//! }
//! let decisions: Vec<u8> = handles.into_iter().map(|h| h.join().unwrap()).collect();
//! assert!(decisions.windows(2).all(|w| w[0] == w[1]), "consistency");
//! assert!(decisions[0] == 0 || decisions[0] == 1, "validity (inputs were 0 and 1)");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cas;
pub mod coin;
pub mod fetchinc2;
pub mod model_protocols;
pub mod multivalued;
pub mod rounds;
pub mod spec;
pub mod swap2;
pub mod tas2;
pub mod walk;

pub use cas::CasConsensus;
pub use coin::{CoinOutcome, WalkCoin};
pub use fetchinc2::FetchIncTwoConsensus;
pub use multivalued::MultiValuedConsensus;
pub use rounds::AhConsensus;
pub use spec::{Consensus, TrialStats};
pub use swap2::SwapTwoConsensus;
pub use tas2::TasTwoConsensus;
pub use walk::{CounterAccess, WalkConsensus, WalkParams};
