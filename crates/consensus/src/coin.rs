//! Weak shared coins.
//!
//! A *weak shared coin* with agreement parameter δ lets n processes each
//! obtain a bit such that, for each outcome b, with probability at least
//! δ **all** processes obtain b — regardless of the adversary's
//! schedule. Shared coins are the engine of randomized consensus
//! (Aspnes \[6\] shows any consensus protocol of subquadratic total work
//! must hide one); the walk consensus in [`crate::walk`] inlines its
//! coin, but a standalone coin is useful for round-based protocols and
//! for the benchmark harness measuring walk behaviour.
//!
//! The implementation is the classic counter random walk: each process
//! repeatedly flips a fair local coin and moves the shared counter ±1;
//! when the counter leaves `±(margin × n)`, the process outputs its
//! sign. With margin K, an adversary holding back at most n−1 pending
//! moves can displace the final position by less than n, so the
//! probability that two processes read opposite signs is O(1/K); δ →
//! (K−1)/2K per side as the walk length grows.

use randsync_model::SplitMix64;

use crate::walk::CounterAccess;

/// The bit a process obtained from a shared coin, plus how much work it
/// spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoinOutcome {
    /// The coin value obtained by this process.
    pub value: u8,
    /// Local coin flips this process performed.
    pub flips: u64,
}

/// A counter-random-walk weak shared coin.
#[derive(Debug)]
pub struct WalkCoin<A> {
    access: A,
    n: usize,
    margin: i64,
    seed: u64,
}

impl<A: CounterAccess> WalkCoin<A> {
    /// A coin for `n` processes over `access`, absorbing at
    /// `±(margin × n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `margin == 0`.
    pub fn new(access: A, n: usize, margin: i64, seed: u64) -> Self {
        assert!(n > 0, "a shared coin needs at least one process");
        assert!(margin > 0, "the absorbing margin must be positive");
        WalkCoin { access, n, margin, seed }
    }

    /// The absorbing barrier `margin × n`.
    pub fn barrier(&self) -> i64 {
        self.margin * self.n as i64
    }

    /// Flip: process `process` participates in the walk until the
    /// counter is absorbed, then returns the sign it observed.
    pub fn flip(&self, process: usize) -> CoinOutcome {
        assert!(process < self.n, "process index out of range");
        let mut rng = SplitMix64::new(self.seed ^ (process as u64).wrapping_mul(0xC0171));
        let barrier = self.barrier();
        let mut flips = 0u64;
        loop {
            let v = self.access.read(process);
            if v >= barrier {
                return CoinOutcome { value: 1, flips };
            }
            if v <= -barrier {
                return CoinOutcome { value: 0, flips };
            }
            flips += 1;
            if rng.next_bool() {
                self.access.inc(process);
            } else {
                self.access.dec(process);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_objects::{AtomicCounter, FetchAddRegister, SnapshotCounter};

    #[test]
    fn solo_coin_terminates_and_is_deterministic_per_seed() {
        let run = |seed| {
            let coin = WalkCoin::new(AtomicCounter::new(), 1, 4, seed);
            coin.flip(0)
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b);
        assert!(a.flips >= 4, "must walk at least to the barrier");
    }

    #[test]
    fn concurrent_coin_usually_agrees() {
        let n = 4;
        let mut agreements = 0;
        let trials = 40;
        for t in 0..trials {
            let coin = std::sync::Arc::new(WalkCoin::new(
                FetchAddRegister::new(0),
                n,
                8,
                t as u64 * 131 + 5,
            ));
            let values: Vec<u8> = std::thread::scope(|s| {
                let hs: Vec<_> = (0..n)
                    .map(|p| {
                        let coin = std::sync::Arc::clone(&coin);
                        s.spawn(move || coin.flip(p).value)
                    })
                    .collect();
                hs.into_iter().map(|h| h.join().unwrap()).collect()
            });
            if values.iter().all(|&v| v == values[0]) {
                agreements += 1;
            }
        }
        // With margin 8 the disagreement probability per trial is small;
        // demand a strong majority of agreeing trials.
        assert!(agreements * 10 >= trials * 8, "only {agreements}/{trials} agreed");
    }

    #[test]
    fn both_outcomes_occur_across_seeds() {
        let mut saw = [false, false];
        for seed in 0..30 {
            let coin = WalkCoin::new(AtomicCounter::new(), 1, 2, seed * 977 + 3);
            saw[coin.flip(0).value as usize] = true;
            if saw[0] && saw[1] {
                return;
            }
        }
        panic!("coin is stuck on one outcome");
    }

    #[test]
    fn snapshot_counter_backing_works() {
        let coin = WalkCoin::new(SnapshotCounter::new(2), 2, 3, 11);
        let o = coin.flip(0);
        assert!(o.value <= 1);
        assert_eq!(coin.barrier(), 6);
    }

    #[test]
    #[should_panic(expected = "margin must be positive")]
    fn zero_margin_rejected() {
        let _ = WalkCoin::new(AtomicCounter::new(), 1, 0, 0);
    }
}
