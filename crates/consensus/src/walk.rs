//! Random-walk consensus over a counter-like object.
//!
//! This module implements the randomized binary consensus protocol that
//! powers three of the paper's upper bounds at once:
//!
//! * over one **bounded counter** — Theorem 4.2 (Aspnes): "there is a
//!   randomized consensus implementation using one bounded counter"
//!   (the paper notes the cursor "assumes values between -3n and 3n",
//!   which is exactly this protocol's operating range);
//! * over one **fetch&add register** — Theorem 4.4, because a fetch&add
//!   register trivially implements the counter operations;
//! * over the **n-register snapshot counter** of
//!   `randsync_objects::snapshot` — the O(n) read–write-register upper
//!   bound quoted in Section 1 and used in Corollary 4.3. (Its READ is
//!   an atomic double-collect scan, so the agreement argument below
//!   applies verbatim; the scan satisfies nondeterministic solo
//!   termination rather than wait-freedom, which is precisely the
//!   termination property the paper's lower bound is stated against.)
//!
//! The protocol's state machine lives in
//! [`WalkModel`](crate::model_protocols::WalkModel) — the same machine
//! the explorer model checks exhaustively. This type **instantiates**
//! that machine on real shared memory: each [`CounterAccess`] backing is
//! exposed to [`randsync_model::runtime`] as the model's single shared
//! object, and `decide` drives the caller's process through the
//! interpreter. There is no second copy of the step logic here.
//!
//! # The protocol
//!
//! The shared object is a counter `c`, initially 0. Fix a *drift margin*
//! `W` and a *decision margin* `D` with `D − W` larger than the maximum
//! combined staleness (see below). Each process loops:
//!
//! 1. `v ← read(c)`
//! 2. if `v ≥ D` **decide 1**; if `v ≤ −D` **decide 0**;
//! 3. otherwise update the *conflict evidence* (below), then move:
//!    * a process that still has **no evidence of conflict** moves one
//!      step toward its own input (inc for 1, dec for 0);
//!    * a process with evidence in the **drift zone** `|v| ≥ W` moves
//!      one step outward (toward the nearer barrier);
//!    * a process with evidence in the middle band flips a fair local
//!      coin and moves accordingly.
//!
//! **Conflict evidence.** A process with input 1 acquires evidence the
//! first time a read returns less than its own number of increments so
//! far, or less than a previous read (symmetrically for input 0). If
//! every process has input 1, the counter is a nondecreasing sum of
//! increments that always dominates each process's own contribution, so
//! no process ever acquires evidence, every move is an increment, and
//! everyone decides 1 — this is exactly **validity**. (With mixed
//! inputs any decision is valid, so the evidence rule only needs to be
//! *sound*, never complete.)
//!
//! **Agreement.** Reads and moves are separate steps, so at any instant
//! each other process holds at most one pending move based on a stale
//! read: at most `n − 1` stale ±1 moves. Suppose a process decides 1
//! after (atomically) reading `v ≥ D`. From that point the counter
//! never drops below `D − (n−1)`; any read taken afterwards returns at
//! least `D − (n−1) ≥ W + 1` (our defaults make this hold), which lies
//! in the upward drift zone, so every subsequent move is an increment —
//! by induction the counter can only rise, every process eventually
//! reads `≥ D`, and all decide 1. This argument requires reads to be
//! linearizable, which every [`CounterAccess`] backing provides (the
//! register-based one reads via an atomic snapshot scan; a bare
//! collect-sum would smear unboundedly and break the induction).
//!
//! **Termination.** In the middle band all evidence-bearing processes
//! perform independent fair ±1 flips, so the counter performs a random
//! walk between absorbing drift zones; the expected number of total
//! moves to absorption is O(n²) regardless of scheduling (drift moves
//! only push outward, and evidence-free processes push constantly in
//! one direction). The *maximum* counter excursion is bounded by
//! `D + n`: moves only happen after reads `< D`, and at most `n` stale
//! increments can land on top, which is why a bounded counter with
//! range `±(D + n)` never wraps.

use core::fmt;

use randsync_model::runtime::DynObject;
use randsync_model::{ModelError, ObjectKind, Operation, Protocol, Response, Value};
use randsync_objects::traits::{Counter, FetchAdd};
use randsync_objects::{AtomicCounter, BoundedAtomicCounter, FetchAddRegister, SnapshotCounter};

use crate::model_protocols::{WalkBacking, WalkModel};
use crate::spec::Consensus;

/// Per-process access to a counter-like shared object.
///
/// Atomic counters ignore the `process` argument; the n-register collect
/// counter uses it to select the process's single-writer slot.
pub trait CounterAccess: Send + Sync {
    /// Read the counter (trivial operation).
    fn read(&self, process: usize) -> i64;
    /// Increment by one.
    fn inc(&self, process: usize);
    /// Decrement by one.
    fn dec(&self, process: usize);
    /// Atomically move by `delta` (±1) and return the **previous**
    /// value, for backings that support it natively. The default
    /// (`None`) makes the runtime fall back to
    /// [`inc`](CounterAccess::inc)/[`dec`](CounterAccess::dec) with an
    /// uninformative response — sound, because the walk never consults
    /// its move responses.
    fn fetch_move(&self, process: usize, delta: i64) -> Option<i64> {
        let _ = (process, delta);
        None
    }
    /// How many shared-object instances back this counter.
    fn object_count(&self) -> usize;
    /// A short name for reporting.
    fn access_name(&self) -> &'static str;
}

/// Protocol margins; see the module docs for the roles of `drift` and
/// `decide`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkParams {
    /// Outward-drift threshold `W` (reads with `|v| ≥ W` drift outward).
    pub drift: i64,
    /// Decision threshold `D` (reads with `|v| ≥ D` decide).
    pub decide: i64,
}

impl WalkParams {
    /// Margins for an **atomic** counter shared by `n` processes:
    /// `W = n`, `D = 2n` — the counter then stays within `±3n`, matching
    /// the paper's description of Aspnes's protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn atomic(n: usize) -> Self {
        assert!(n > 0, "consensus needs at least one process");
        WalkParams { drift: n as i64, decide: 2 * n as i64 }
    }

    /// Conservative margins with extra slack beyond the `n − 1` stale
    /// moves the agreement argument consumes: `W = n`, `D = 3n`. Useful
    /// when experimenting with weaker counter backings.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn wide(n: usize) -> Self {
        assert!(n > 0, "consensus needs at least one process");
        WalkParams { drift: n as i64, decide: 3 * n as i64 }
    }

    /// The counter range the protocol can touch: `±(decide + n)`.
    pub fn required_range(&self, n: usize) -> i64 {
        self.decide + n as i64
    }
}

/// Randomized binary consensus by random walk over a counter-like
/// object. See the module documentation for the protocol and its
/// correctness argument.
#[derive(Debug)]
pub struct WalkConsensus<A> {
    access: A,
    model: WalkModel,
    n: usize,
    params: WalkParams,
    seed: u64,
    name: &'static str,
}

impl<A: CounterAccess> WalkConsensus<A> {
    /// A walk consensus for `n` processes over `access` with explicit
    /// margins. `seed` derives each process's local coin stream.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, the margins are non-positive or inverted, or
    /// the margins are too tight for agreement (the model requires
    /// `decide − (n−1) ≥ drift`).
    pub fn new(access: A, n: usize, params: WalkParams, seed: u64) -> Self {
        assert!(n > 0, "consensus needs at least one process");
        assert!(params.drift > 0 && params.decide > params.drift, "bad walk margins");
        let model = WalkModel::new(n, WalkBacking::Counter, params.drift, params.decide);
        WalkConsensus { access, model, n, params, seed, name: "walk-consensus" }
    }

    /// The margins in force.
    pub fn params(&self) -> &WalkParams {
        &self.params
    }

    /// Re-express the model over `backing`: the margins are unchanged;
    /// only the declared object kind and the shape of the move
    /// operations differ.
    fn with_backing(mut self, backing: WalkBacking) -> Self {
        self.model = WalkModel::new(self.n, backing, self.params.drift, self.params.decide);
        self
    }
}

impl<A: CounterAccess> Consensus for WalkConsensus<A> {
    fn decide(&self, process: usize, input: u8) -> u8 {
        assert!(process < self.n, "process index out of range");
        assert!(input <= 1, "binary consensus inputs are 0 or 1");
        let obj = AccessObject { access: &self.access, kind: self.model.objects()[0].kind };
        crate::driver::decide_on(&self.model, &[&obj], process, input, self.seed)
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn object_count(&self) -> usize {
        self.access.object_count()
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

// ----- the runtime's view of a backing ------------------------------

/// A [`CounterAccess`] backing exposed to the threaded runtime as the
/// walk model's single shared object ("cursor").
struct AccessObject<'a, A> {
    access: &'a A,
    kind: ObjectKind,
}

impl<A: CounterAccess> fmt::Debug for AccessObject<'_, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessObject")
            .field("kind", &self.kind)
            .field("access", &self.access.access_name())
            .finish()
    }
}

impl<A: CounterAccess> DynObject for AccessObject<'_, A> {
    fn kind(&self) -> ObjectKind {
        self.kind
    }

    fn apply(&self, process: usize, op: &Operation) -> Result<Response, ModelError> {
        match *op {
            Operation::Read => Ok(Response::Value(Value::Int(self.access.read(process)))),
            Operation::Inc => {
                self.access.inc(process);
                Ok(Response::Ack)
            }
            Operation::Dec => {
                self.access.dec(process);
                Ok(Response::Ack)
            }
            Operation::FetchAdd(delta @ (1 | -1)) => {
                Ok(match self.access.fetch_move(process, delta) {
                    Some(old) => Response::Value(Value::Int(old)),
                    None => {
                        if delta == 1 {
                            self.access.inc(process);
                        } else {
                            self.access.dec(process);
                        }
                        Response::Ack
                    }
                })
            }
            _ => Err(ModelError::UnsupportedOperation { kind: self.kind, op: *op }),
        }
    }
}

// ----- counter-access adapters --------------------------------------

impl CounterAccess for AtomicCounter {
    fn read(&self, _process: usize) -> i64 {
        Counter::read(self)
    }

    fn inc(&self, _process: usize) {
        Counter::inc(self);
    }

    fn dec(&self, _process: usize) {
        Counter::dec(self);
    }

    fn object_count(&self) -> usize {
        1
    }

    fn access_name(&self) -> &'static str {
        "atomic counter"
    }
}

impl CounterAccess for BoundedAtomicCounter {
    fn read(&self, _process: usize) -> i64 {
        Counter::read(self)
    }

    fn inc(&self, _process: usize) {
        Counter::inc(self);
    }

    fn dec(&self, _process: usize) {
        Counter::dec(self);
    }

    fn object_count(&self) -> usize {
        1
    }

    fn access_name(&self) -> &'static str {
        "bounded counter"
    }
}

impl CounterAccess for FetchAddRegister {
    fn read(&self, _process: usize) -> i64 {
        self.load()
    }

    fn inc(&self, _process: usize) {
        self.fetch_add(1);
    }

    fn dec(&self, _process: usize) {
        self.fetch_add(-1);
    }

    fn fetch_move(&self, _process: usize, delta: i64) -> Option<i64> {
        Some(self.fetch_add(delta))
    }

    fn object_count(&self) -> usize {
        1
    }

    fn access_name(&self) -> &'static str {
        "fetch&add register"
    }
}

impl CounterAccess for SnapshotCounter {
    fn read(&self, _process: usize) -> i64 {
        SnapshotCounter::read(self)
    }

    fn inc(&self, process: usize) {
        SnapshotCounter::inc(self, process);
    }

    fn dec(&self, process: usize) {
        SnapshotCounter::dec(self, process);
    }

    fn object_count(&self) -> usize {
        self.num_slots()
    }

    fn access_name(&self) -> &'static str {
        "n-register snapshot counter"
    }
}

// ----- named constructors for the paper's three instantiations -------

impl WalkConsensus<BoundedAtomicCounter> {
    /// **Theorem 4.2**: randomized consensus from one bounded counter.
    /// The counter range `±3n` is exactly what the paper describes.
    pub fn with_bounded_counter(n: usize, seed: u64) -> Self {
        let params = WalkParams::atomic(n);
        let range = params.required_range(n);
        let mut me = Self::new(BoundedAtomicCounter::new(-range, range), n, params, seed)
            .with_backing(WalkBacking::BoundedCounter);
        me.name = "one-bounded-counter walk (Thm 4.2)";
        me
    }
}

impl WalkConsensus<FetchAddRegister> {
    /// **Theorem 4.4**: randomized consensus from one fetch&add
    /// register.
    pub fn with_fetch_add(reg: FetchAddRegister, n: usize, seed: u64) -> Self {
        let mut me = Self::new(reg, n, WalkParams::atomic(n), seed)
            .with_backing(WalkBacking::FetchAdd);
        me.name = "one-fetch&add walk (Thm 4.4)";
        me
    }
}

impl WalkConsensus<SnapshotCounter> {
    /// The **O(n) read–write-register** upper bound: the same walk over
    /// the n-slot snapshot counter, whose reads are atomic scans.
    pub fn with_register_counter(n: usize, seed: u64) -> Self {
        let mut me = Self::new(SnapshotCounter::new(n), n, WalkParams::atomic(n), seed);
        me.name = "O(n)-register walk";
        me
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{decide_concurrently, run_trials};

    #[test]
    fn params_and_ranges() {
        let p = WalkParams::atomic(5);
        assert_eq!(p, WalkParams { drift: 5, decide: 10 });
        assert_eq!(p.required_range(5), 15, "±3n, as the paper describes");
        let c = WalkParams::wide(4);
        assert_eq!(c, WalkParams { drift: 4, decide: 12 });
    }

    #[test]
    #[should_panic(expected = "bad walk margins")]
    fn inverted_margins_rejected() {
        let _ = WalkConsensus::new(
            AtomicCounter::new(),
            2,
            WalkParams { drift: 5, decide: 5 },
            0,
        );
    }

    #[test]
    fn unanimous_inputs_decide_that_input_deterministically() {
        for input in [0u8, 1u8] {
            for seed in 0..5 {
                let proto = WalkConsensus::with_bounded_counter(4, seed);
                let ds = decide_concurrently(&proto, &[input; 4]);
                assert!(ds.iter().all(|&d| d == input), "validity: all inputs {input}");
            }
        }
    }

    #[test]
    fn mixed_inputs_agree_over_many_seeds() {
        let stats = run_trials(
            60,
            |t| WalkConsensus::with_bounded_counter(4, t as u64 * 7 + 1),
            |t| (0..4).map(|p| ((p + t) % 2) as u8).collect(),
        );
        assert!(stats.all_correct(), "{stats}");
        // Both outcomes occur across seeds (the coin is not stuck).
        assert!(stats.decided_one > 0 && stats.decided_one < stats.trials, "{stats}");
    }

    #[test]
    fn fetch_add_instantiation_agrees() {
        let stats = run_trials(
            40,
            |t| WalkConsensus::with_fetch_add(FetchAddRegister::new(0), 6, t as u64 + 99),
            |t| (0..6).map(|p| ((p * 3 + t) % 2) as u8).collect(),
        );
        assert!(stats.all_correct(), "{stats}");
    }

    #[test]
    fn register_counter_instantiation_agrees() {
        let stats = run_trials(
            30,
            |t| WalkConsensus::with_register_counter(4, t as u64 ^ 0xABCD),
            |t| (0..4).map(|p| ((p + t) % 2) as u8).collect(),
        );
        assert!(stats.all_correct(), "{stats}");
    }

    #[test]
    fn object_counts_match_the_space_story() {
        assert_eq!(WalkConsensus::with_bounded_counter(8, 0).object_count(), 1);
        assert_eq!(
            WalkConsensus::with_fetch_add(FetchAddRegister::new(0), 8, 0).object_count(),
            1
        );
        assert_eq!(WalkConsensus::with_register_counter(8, 0).object_count(), 8);
    }

    #[test]
    fn bounded_counter_never_needs_to_wrap() {
        // Exercise many trials; the bounded counter asserts its own
        // range; wrap-around would produce inconsistency, which the
        // stats would catch.
        let stats = run_trials(
            25,
            |t| WalkConsensus::with_bounded_counter(3, t as u64),
            |_| vec![1, 0, 1],
        );
        assert!(stats.all_correct(), "{stats}");
    }

    #[test]
    #[should_panic(expected = "process index out of range")]
    fn out_of_range_process_panics() {
        let proto = WalkConsensus::with_bounded_counter(2, 0);
        let _ = proto.decide(2, 0);
    }

    #[test]
    #[should_panic(expected = "inputs are 0 or 1")]
    fn non_binary_input_panics() {
        let proto = WalkConsensus::with_bounded_counter(2, 0);
        let _ = proto.decide(0, 2);
    }

    #[test]
    fn fetch_add_moves_report_the_previous_value() {
        // The FetchAdd backing serves moves natively (fetch_move),
        // so its responses carry the pre-move value even though the
        // walk itself never reads them.
        let reg = FetchAddRegister::new(7);
        let obj = AccessObject { access: &reg, kind: ObjectKind::FetchAdd };
        let r = obj.apply(0, &Operation::FetchAdd(1)).unwrap();
        assert_eq!(r, Response::Value(Value::Int(7)));
        // Counters fall back to inc/dec and answer Ack.
        let ctr = AtomicCounter::new();
        let obj = AccessObject { access: &ctr, kind: ObjectKind::Counter };
        assert_eq!(obj.apply(0, &Operation::FetchAdd(-1)).unwrap(), Response::Ack);
        assert_eq!(CounterAccess::read(&ctr, 0), -1);
        // Operations outside the counter interface are rejected.
        assert!(obj.apply(0, &Operation::TestAndSet).is_err());
    }
}
