//! Deterministic 2-process consensus from one test&set register and two
//! read–write registers.
//!
//! The test&set flag orders the two processes: the unique caller that
//! sees `false` wins. Unlike SWAP, TEST&SET's response carries no
//! payload, so each process first publishes its input in its own
//! read–write register; the loser (who knows the winner is the *other*
//! process, since n = 2) reads the winner's register and decides that
//! value.
//!
//! Together with [`SwapTwoConsensus`](crate::SwapTwoConsensus) this
//! covers the paper's Section 4 observation that historyless objects
//! like swap and test&set solve 2-process (but not 3-process)
//! consensus deterministically.
//!
//! The algorithm lives in [`TasTwoModel`] — the explorer proves it safe
//! over every interleaving. This type instantiates that state machine
//! on a real [`TestAndSetFlag`](randsync_objects::TestAndSetFlag) and
//! two [`AtomicRegister`](randsync_objects::AtomicRegister)s through
//! the bridge and the threaded runtime.

use randsync_model::runtime::DynObject;
use randsync_objects::bridge;

use crate::model_protocols::TasTwoModel;
use crate::spec::Consensus;

/// Wait-free deterministic 2-process consensus from one test&set flag
/// plus two single-writer read–write registers.
#[derive(Debug)]
pub struct TasTwoConsensus {
    model: TasTwoModel,
    objects: Vec<Box<dyn DynObject>>,
}

impl TasTwoConsensus {
    /// A fresh instance (always for exactly 2 processes).
    pub fn new() -> Self {
        let model = TasTwoModel;
        let objects = bridge::instantiate_all(&model).expect("test&set spec bridges");
        TasTwoConsensus { model, objects }
    }
}

impl Default for TasTwoConsensus {
    fn default() -> Self {
        Self::new()
    }
}

impl Consensus for TasTwoConsensus {
    fn decide(&self, process: usize, input: u8) -> u8 {
        assert!(process < 2, "test&set consensus supports exactly 2 processes");
        assert!(input <= 1, "binary consensus inputs are 0 or 1");
        crate::driver::decide_boxed(&self.model, &self.objects, process, input, 0)
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn object_count(&self) -> usize {
        3
    }

    fn name(&self) -> &'static str {
        "test&set + 2 registers, 2-process"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{decide_concurrently, run_trials};

    #[test]
    fn sequential_first_wins() {
        let c = TasTwoConsensus::new();
        assert_eq!(c.decide(1, 1), 1);
        assert_eq!(c.decide(0, 0), 1);
    }

    #[test]
    fn concurrent_trials_are_correct() {
        let stats = run_trials(
            300,
            |_| TasTwoConsensus::new(),
            |t| vec![(t % 2) as u8, ((t / 2) % 2) as u8],
        );
        assert!(stats.all_correct(), "{stats}");
    }

    #[test]
    fn unanimous_inputs() {
        for input in [0, 1] {
            let c = TasTwoConsensus::new();
            let ds = decide_concurrently(&c, &[input, input]);
            assert_eq!(ds, vec![input, input]);
        }
    }

    #[test]
    fn object_count_is_three() {
        assert_eq!(TasTwoConsensus::new().object_count(), 3);
    }
}
