//! Deterministic 2-process consensus from one swap register.
//!
//! Section 4 of the paper: "Consider any object with an operation such
//! that, starting with some particular state, the response from one
//! application of the operation is always different than the response
//! from the second of two successive applications … Then this object
//! can solve 2-process consensus." A swap register is the canonical
//! example: both processes SWAP in their (encoded) input; exactly one
//! of them receives the initial value ⊥ and knows it went first — it
//! decides its own input, while the other received the winner's input
//! and decides that.
//!
//! This is the deterministic side of the paper's headline separation:
//! swap registers solve 2-process consensus deterministically (they sit
//! strictly above read–write registers in Herlihy's hierarchy), yet
//! being historyless they still need Ω(√n) instances for randomized
//! n-process consensus (Theorem 3.7), while the "deterministically
//! weaker" fetch&add needs only one instance (Theorem 4.4).
//!
//! The algorithm lives in [`SwapTwoModel`] — the explorer proves it
//! safe over every interleaving. This type instantiates that state
//! machine on a real [`SwapRegister`](randsync_objects::SwapRegister)
//! through the bridge and the threaded runtime.

use randsync_model::runtime::DynObject;
use randsync_objects::bridge;

use crate::model_protocols::SwapTwoModel;
use crate::spec::Consensus;

/// Wait-free deterministic 2-process consensus from a single swap
/// register.
#[derive(Debug)]
pub struct SwapTwoConsensus {
    model: SwapTwoModel,
    objects: Vec<Box<dyn DynObject>>,
}

impl SwapTwoConsensus {
    /// A fresh instance (always for exactly 2 processes).
    pub fn new() -> Self {
        let model = SwapTwoModel;
        let objects = bridge::instantiate_all(&model).expect("swap spec bridges");
        SwapTwoConsensus { model, objects }
    }
}

impl Default for SwapTwoConsensus {
    fn default() -> Self {
        Self::new()
    }
}

impl Consensus for SwapTwoConsensus {
    fn decide(&self, process: usize, input: u8) -> u8 {
        assert!(process < 2, "swap consensus supports exactly 2 processes");
        assert!(input <= 1, "binary consensus inputs are 0 or 1");
        crate::driver::decide_boxed(&self.model, &self.objects, process, input, 0)
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn object_count(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "one-swap 2-process"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{decide_concurrently, run_trials};

    #[test]
    fn first_swapper_wins_sequentially() {
        let c = SwapTwoConsensus::new();
        assert_eq!(c.decide(0, 0), 0);
        assert_eq!(c.decide(1, 1), 0, "the loser adopts the winner's input");
    }

    #[test]
    fn concurrent_trials_are_correct() {
        let stats = run_trials(
            300,
            |_| SwapTwoConsensus::new(),
            |t| vec![(t % 2) as u8, ((t + 1) % 2) as u8],
        );
        assert!(stats.all_correct(), "{stats}");
    }

    #[test]
    fn unanimous_inputs() {
        for input in [0, 1] {
            let c = SwapTwoConsensus::new();
            let ds = decide_concurrently(&c, &[input, input]);
            assert_eq!(ds, vec![input, input]);
        }
    }

    #[test]
    #[should_panic(expected = "exactly 2 processes")]
    fn third_process_rejected() {
        let c = SwapTwoConsensus::new();
        let _ = c.decide(2, 0);
    }
}
