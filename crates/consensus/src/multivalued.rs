//! Multi-valued consensus from binary consensus.
//!
//! The paper's introduction motivates randomized consensus as the
//! engine for "the software implementation of one synchronization
//! object from another". This module performs the classic reduction in
//! that spirit: n processes agree on an arbitrary `i64` using
//! ⌈log₂ n⌉ **binary** consensus instances plus n single-writer
//! proposal registers.
//!
//! The protocol agrees on the *index* of a published proposal, bit by
//! bit, with the standard candidate-narrowing trick that preserves
//! validity (plain bitwise agreement could splice two indices into one
//! nobody proposed):
//!
//! 1. publish your proposal in your own register;
//! 2. maintain a *candidate*: a process index whose published proposal
//!    is still compatible with the bits decided so far (initially your
//!    own index);
//! 3. for each bit position, run binary consensus on your candidate's
//!    bit; after the decision, if your candidate disagrees with the
//!    decided bit, switch to any published candidate matching the
//!    decided prefix — one exists, because the decided bit was some
//!    process's candidate's bit and that candidate matched the prefix;
//! 4. after all bits, the assembled index identifies a published
//!    proposal; decide its value.
//!
//! Consistency is inherited bit-wise from the binary instances;
//! validity holds because every decided prefix extends to a *published*
//! index, so the final value was genuinely proposed.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

use crate::cas::CasConsensus;
use crate::spec::Consensus;

const ORD: Ordering = Ordering::SeqCst;

/// n-process multi-valued consensus from binary consensus instances and
/// n proposal registers.
///
/// Generic over the binary consensus used per bit; see
/// [`MultiValuedConsensus::with_cas`] for the one-CAS-per-bit default.
#[derive(Debug)]
pub struct MultiValuedConsensus<B> {
    n: usize,
    proposals: Vec<AtomicI64>,
    published: Vec<AtomicBool>,
    bits: Vec<B>,
}

impl<B: Consensus> MultiValuedConsensus<B> {
    /// An instance for `n` processes using the given per-bit binary
    /// instances (one per bit of the process index).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `bits.len()` cannot index `n` processes.
    pub fn new(n: usize, bits: Vec<B>) -> Self {
        assert!(n > 0, "consensus needs at least one process");
        let needed = index_bits(n);
        assert!(
            bits.len() >= needed,
            "{n} processes need {needed} bit instances, got {}",
            bits.len()
        );
        MultiValuedConsensus {
            n,
            proposals: (0..n).map(|_| AtomicI64::new(0)).collect(),
            published: (0..n).map(|_| AtomicBool::new(false)).collect(),
            bits,
        }
    }

    /// Decide: propose `value`, return the agreed value.
    ///
    /// # Panics
    ///
    /// Panics if `process >= n`.
    pub fn decide_value(&self, process: usize, value: i64) -> i64 {
        assert!(process < self.n, "process index out of range");
        // 1. Publish.
        self.proposals[process].store(value, ORD);
        self.published[process].store(true, ORD);

        // 2–3. Agree on an index bit by bit, narrowing the candidate.
        let nbits = index_bits(self.n);
        let mut candidate = process;
        let mut prefix: usize = 0;
        for k in 0..nbits {
            let my_bit = ((candidate >> k) & 1) as u8;
            let decided = self.bits[k].decide(process, my_bit);
            prefix |= (decided as usize) << k;
            if ((candidate >> k) & 1) as u8 != decided {
                // Switch to a published candidate matching the decided
                // prefix (bits 0..=k). One exists: the decided bit was
                // proposed by a process whose candidate matched.
                let mask = (1usize << (k + 1)) - 1;
                candidate = (0..self.n)
                    .find(|&i| {
                        self.published[i].load(ORD) && (i & mask) == (prefix & mask)
                    })
                    .expect("a published candidate matches the decided prefix");
            }
        }

        // 4. The assembled index names a published proposal.
        debug_assert!(self.published[candidate].load(ORD));
        self.proposals[candidate].load(ORD)
    }

    /// Total shared objects: proposal registers + publish flags + the
    /// binary instances' objects.
    pub fn object_count(&self) -> usize {
        2 * self.n + self.bits.iter().map(|b| b.object_count()).sum::<usize>()
    }
}

impl MultiValuedConsensus<CasConsensus> {
    /// The default stack: one CAS register per index bit.
    pub fn with_cas(n: usize) -> Self {
        let bits = (0..index_bits(n)).map(|_| CasConsensus::new(n)).collect();
        Self::new(n, bits)
    }
}

/// Bits needed to index `n` processes (at least 1).
fn index_bits(n: usize) -> usize {
    let mut b = 1;
    while (1usize << b) < n {
        b += 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decide_all(c: &MultiValuedConsensus<CasConsensus>, values: &[i64]) -> Vec<i64> {
        std::thread::scope(|s| {
            let hs: Vec<_> = values
                .iter()
                .enumerate()
                .map(|(p, &v)| s.spawn(move || c.decide_value(p, v)))
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn index_bits_covers_the_range() {
        assert_eq!(index_bits(1), 1);
        assert_eq!(index_bits(2), 1);
        assert_eq!(index_bits(3), 2);
        assert_eq!(index_bits(4), 2);
        assert_eq!(index_bits(5), 3);
        assert_eq!(index_bits(8), 3);
        assert_eq!(index_bits(9), 4);
    }

    #[test]
    fn sequential_solo_decides_own_value() {
        let c = MultiValuedConsensus::with_cas(4);
        assert_eq!(c.decide_value(2, 777), 777);
        // Later arrivals adopt.
        assert_eq!(c.decide_value(0, -5), 777);
    }

    #[test]
    fn concurrent_agreement_and_validity_over_many_trials() {
        for t in 0..120 {
            let n = 2 + (t % 6);
            let c = MultiValuedConsensus::with_cas(n);
            let values: Vec<i64> = (0..n).map(|p| (p as i64 + 1) * 100 + t as i64).collect();
            let ds = decide_all(&c, &values);
            let d = ds[0];
            assert!(ds.iter().all(|&x| x == d), "trial {t}: inconsistent {ds:?}");
            assert!(values.contains(&d), "trial {t}: invalid {d} ∉ {values:?}");
        }
    }

    #[test]
    fn duplicate_values_are_fine() {
        let c = MultiValuedConsensus::with_cas(5);
        let ds = decide_all(&c, &[9, 9, 9, 9, 9]);
        assert!(ds.iter().all(|&x| x == 9));
    }

    #[test]
    fn object_count_adds_up() {
        let c = MultiValuedConsensus::with_cas(8);
        // 2·8 registers + 3 bits × 1 CAS each.
        assert_eq!(c.object_count(), 16 + 3);
    }

    #[test]
    #[should_panic(expected = "bit instances")]
    fn too_few_bit_instances_rejected() {
        let _ = MultiValuedConsensus::new(5, vec![CasConsensus::new(5)]);
    }
}
