//! Deterministic n-process consensus from one compare&swap register.
//!
//! Herlihy [20, Theorem 5], which the paper uses for Corollary 4.1:
//! a single (bounded) compare&swap register solves n-process consensus
//! deterministically and wait-free. Each process attempts
//! `CAS(⊥ → input)` once; the register's value after any attempt is the
//! winner's input, and everyone decides it.
//!
//! The algorithm lives in [`CasModel`] — the same state machine the
//! explorer checks exhaustively. This type instantiates it on real
//! atomics: the constructor bridges the model's object spec to a
//! [`CasRegister`](randsync_objects::CasRegister) and `decide` drives
//! the caller's process through the threaded runtime.

use randsync_model::runtime::DynObject;
use randsync_model::Protocol;
use randsync_objects::bridge;

use crate::model_protocols::CasModel;
use crate::spec::Consensus;

/// Wait-free deterministic consensus from a single compare&swap
/// register.
#[derive(Debug)]
pub struct CasConsensus {
    model: CasModel,
    objects: Vec<Box<dyn DynObject>>,
}

impl CasConsensus {
    /// An instance for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "consensus needs at least one process");
        let model = CasModel::new(n);
        let objects = bridge::instantiate_all(&model).expect("CAS spec bridges");
        CasConsensus { model, objects }
    }
}

impl Consensus for CasConsensus {
    fn decide(&self, process: usize, input: u8) -> u8 {
        assert!(process < self.num_processes(), "process index out of range");
        assert!(input <= 1, "binary consensus inputs are 0 or 1");
        crate::driver::decide_boxed(&self.model, &self.objects, process, input, 0)
    }

    fn num_processes(&self) -> usize {
        Protocol::num_processes(&self.model)
    }

    fn object_count(&self) -> usize {
        self.objects.len()
    }

    fn name(&self) -> &'static str {
        "one-compare&swap (Herlihy)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{decide_concurrently, run_trials};

    #[test]
    fn sequential_first_proposer_wins() {
        let c = CasConsensus::new(3);
        assert_eq!(c.decide(1, 1), 1);
        assert_eq!(c.decide(0, 0), 1);
        assert_eq!(c.decide(2, 0), 1);
    }

    #[test]
    fn concurrent_runs_are_always_consistent_and_valid() {
        let stats = run_trials(
            200,
            |_| CasConsensus::new(8),
            |t| (0..8).map(|p| ((p + t) % 2) as u8).collect(),
        );
        assert!(stats.all_correct(), "{stats}");
        assert!(stats.decided_one > 0 && stats.decided_one < stats.trials);
    }

    #[test]
    fn unanimous_inputs_are_respected() {
        for input in [0, 1] {
            let c = CasConsensus::new(4);
            let ds = decide_concurrently(&c, &[input; 4]);
            assert!(ds.iter().all(|&d| d == input));
        }
    }

    #[test]
    fn metadata() {
        let c = CasConsensus::new(2);
        assert_eq!(c.num_processes(), 2);
        assert_eq!(c.object_count(), 1);
        assert!(c.name().contains("compare&swap"));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let _ = CasConsensus::new(0);
    }
}
