//! Deterministic n-process consensus from one compare&swap register.
//!
//! Herlihy [20, Theorem 5], which the paper uses for Corollary 4.1:
//! a single (bounded) compare&swap register solves n-process consensus
//! deterministically and wait-free. Each process attempts
//! `CAS(⊥ → input)` once; the register's value after any attempt is the
//! winner's input, and everyone decides it.

use randsync_objects::traits::CompareSwap;
use randsync_objects::CasRegister;

use crate::spec::Consensus;

/// Sentinel encoding of ⊥ in the CAS word (inputs are 0 or 1).
const BOTTOM: i64 = -1;

/// Wait-free deterministic consensus from a single compare&swap
/// register.
#[derive(Debug)]
pub struct CasConsensus {
    reg: CasRegister,
    n: usize,
}

impl CasConsensus {
    /// An instance for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "consensus needs at least one process");
        CasConsensus { reg: CasRegister::new(BOTTOM), n }
    }
}

impl Consensus for CasConsensus {
    fn decide(&self, process: usize, input: u8) -> u8 {
        assert!(process < self.n, "process index out of range");
        assert!(input <= 1, "binary consensus inputs are 0 or 1");
        let prev = self.reg.compare_swap(BOTTOM, input as i64);
        if prev == BOTTOM {
            input
        } else {
            prev as u8
        }
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn object_count(&self) -> usize {
        1
    }

    fn name(&self) -> &'static str {
        "one-compare&swap (Herlihy)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{decide_concurrently, run_trials};

    #[test]
    fn sequential_first_proposer_wins() {
        let c = CasConsensus::new(3);
        assert_eq!(c.decide(1, 1), 1);
        assert_eq!(c.decide(0, 0), 1);
        assert_eq!(c.decide(2, 0), 1);
    }

    #[test]
    fn concurrent_runs_are_always_consistent_and_valid() {
        let stats = run_trials(
            200,
            |_| CasConsensus::new(8),
            |t| (0..8).map(|p| ((p + t) % 2) as u8).collect(),
        );
        assert!(stats.all_correct(), "{stats}");
        assert!(stats.decided_one > 0 && stats.decided_one < stats.trials);
    }

    #[test]
    fn unanimous_inputs_are_respected() {
        for input in [0, 1] {
            let c = CasConsensus::new(4);
            let ds = decide_concurrently(&c, &[input; 4]);
            assert!(ds.iter().all(|&d| d == input));
        }
    }

    #[test]
    fn metadata() {
        let c = CasConsensus::new(2);
        assert_eq!(c.num_processes(), 2);
        assert_eq!(c.object_count(), 1);
        assert!(c.name().contains("compare&swap"));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_processes_rejected() {
        let _ = CasConsensus::new(0);
    }
}
