//! Deterministic 2-process consensus from one fetch&increment register
//! plus two read–write registers.
//!
//! Section 4: "Consider any object with an operation such that,
//! starting with some particular state, the response from one
//! application of the operation is always different than the response
//! from the second of two successive applications of that operation.
//! (… The operation FETCH&ADD applied starting with any value also has
//! this property.) Then this object can solve 2-process consensus."
//!
//! FETCH&INC from 0 responds 0 to its first caller and 1 to its second
//! — a perfect two-way race. Like test&set (and unlike swap), the
//! response carries no payload, so each process publishes its input in
//! its own register first; the loser reads the winner's.
//!
//! The algorithm lives in [`FetchIncTwoModel`] — the explorer proves it
//! safe over every interleaving. This type instantiates that state
//! machine on real atomics through the bridge and the threaded runtime.

use randsync_model::runtime::DynObject;
use randsync_objects::bridge;

use crate::model_protocols::FetchIncTwoModel;
use crate::spec::Consensus;

/// Wait-free deterministic 2-process consensus from one
/// fetch&increment register plus two single-writer registers.
#[derive(Debug)]
pub struct FetchIncTwoConsensus {
    model: FetchIncTwoModel,
    objects: Vec<Box<dyn DynObject>>,
}

impl FetchIncTwoConsensus {
    /// A fresh instance (always for exactly 2 processes).
    pub fn new() -> Self {
        let model = FetchIncTwoModel;
        let objects = bridge::instantiate_all(&model).expect("fetch&inc spec bridges");
        FetchIncTwoConsensus { model, objects }
    }
}

impl Default for FetchIncTwoConsensus {
    fn default() -> Self {
        Self::new()
    }
}

impl Consensus for FetchIncTwoConsensus {
    fn decide(&self, process: usize, input: u8) -> u8 {
        assert!(process < 2, "fetch&inc consensus supports exactly 2 processes");
        assert!(input <= 1, "binary consensus inputs are 0 or 1");
        crate::driver::decide_boxed(&self.model, &self.objects, process, input, 0)
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn object_count(&self) -> usize {
        3
    }

    fn name(&self) -> &'static str {
        "fetch&increment + 2 registers, 2-process"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{decide_concurrently, run_trials};

    #[test]
    fn sequential_first_wins() {
        let c = FetchIncTwoConsensus::new();
        assert_eq!(c.decide(0, 1), 1);
        assert_eq!(c.decide(1, 0), 1);
    }

    #[test]
    fn concurrent_trials_are_correct() {
        let stats = run_trials(
            300,
            |_| FetchIncTwoConsensus::new(),
            |t| vec![(t % 2) as u8, ((t / 3) % 2) as u8],
        );
        assert!(stats.all_correct(), "{stats}");
    }

    #[test]
    fn unanimous_inputs() {
        for input in [0, 1] {
            let c = FetchIncTwoConsensus::new();
            let ds = decide_concurrently(&c, &[input, input]);
            assert_eq!(ds, vec![input, input]);
        }
    }

    #[test]
    fn metadata() {
        let c = FetchIncTwoConsensus::new();
        assert_eq!(c.num_processes(), 2);
        assert_eq!(c.object_count(), 3);
    }
}
