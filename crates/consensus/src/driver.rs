//! Crate-internal glue: drive one process of a model protocol on the
//! calling thread.
//!
//! The threaded consensus implementations in this crate are thin
//! instantiations of their `model_protocols` state machines: the
//! constructor bridges the protocol's [`ObjectSpec`]s to real atomics
//! and `decide` runs the caller's process through
//! [`randsync_model::runtime::drive_process`]. This module holds the
//! two-line plumbing they share.
//!
//! [`ObjectSpec`]: randsync_model::ObjectSpec

use randsync_model::runtime::{self, DynObject};
use randsync_model::{ProcessId, Protocol};

/// Run process `process` of `model` to its decision on the calling
/// thread, with coins drawn from the per-process stream of `seed`.
///
/// Panics if the objects reject an operation (they implement the
/// declared kinds, so they never do) or if the step budget — effectively
/// unbounded — runs out.
pub(crate) fn decide_on<P: Protocol>(
    model: &P,
    objects: &[&dyn DynObject],
    process: usize,
    input: u8,
    seed: u64,
) -> u8 {
    let mut rng = runtime::process_rng(seed, process);
    let (decision, _stats) = runtime::drive_process(
        model,
        objects,
        ProcessId(process),
        input,
        &mut rng,
        usize::MAX,
        None,
    )
    .expect("bridged objects implement the declared kinds");
    decision.expect("protocol terminates")
}

/// [`decide_on`] over boxed objects (the common case: the consensus
/// struct owns its bridged objects).
pub(crate) fn decide_boxed<P: Protocol>(
    model: &P,
    objects: &[Box<dyn DynObject>],
    process: usize,
    input: u8,
    seed: u64,
) -> u8 {
    let refs: Vec<&dyn DynObject> = objects.iter().map(AsRef::as_ref).collect();
    decide_on(model, &refs, process, input, seed)
}
