//! The consensus interface and its correctness harness.

use core::fmt;

/// An n-process binary consensus object: each process performs one
/// DECIDE operation with an input in `{0, 1}` and obtains an output in
/// `{0, 1}` such that
///
/// * **consistency** — all DECIDE operations return the same value, and
/// * **validity** — the returned value is the input of some process.
///
/// Implementations must be safe to call concurrently from
/// `num_processes()` distinct threads, one call per process index.
pub trait Consensus: Send + Sync {
    /// Decide: process `process` proposes `input` and obtains the agreed
    /// value. Must be called at most once per process index.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `process >= num_processes()` or
    /// `input > 1`.
    fn decide(&self, process: usize, input: u8) -> u8;

    /// The number of processes this instance supports.
    fn num_processes(&self) -> usize;

    /// The number of shared-object instances the implementation uses —
    /// the quantity the paper's space bounds are about.
    fn object_count(&self) -> usize;

    /// A short human-readable protocol name.
    fn name(&self) -> &'static str;
}

/// Statistics from a batch of threaded consensus trials (see
/// [`run_trials`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct TrialStats {
    /// Number of trials executed.
    pub trials: usize,
    /// Trials in which every process returned the same value.
    pub consistent: usize,
    /// Trials in which the returned value was some process's input.
    pub valid: usize,
    /// Trials that decided 1 (for bias inspection).
    pub decided_one: usize,
}

impl TrialStats {
    /// Whether every trial was both consistent and valid.
    pub fn all_correct(&self) -> bool {
        self.consistent == self.trials && self.valid == self.trials
    }
}

impl fmt::Display for TrialStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} consistent, {}/{} valid, {} decided 1",
            self.consistent, self.trials, self.valid, self.trials, self.decided_one
        )
    }
}

/// Run `trials` fresh instances produced by `make`, each decided by
/// `n` concurrent threads with the inputs produced by
/// `inputs(trial_index)`, and tally correctness.
///
/// # Panics
///
/// Panics if a protocol instance reports a different process count than
/// the number of inputs supplied.
pub fn run_trials<C, F, I>(trials: usize, mut make: F, mut inputs: I) -> TrialStats
where
    C: Consensus,
    F: FnMut(usize) -> C,
    I: FnMut(usize) -> Vec<u8>,
{
    let mut stats = TrialStats { trials, ..Default::default() };
    for t in 0..trials {
        let proto = make(t);
        let ins = inputs(t);
        assert_eq!(ins.len(), proto.num_processes(), "one input per process");
        let decisions = decide_concurrently(&proto, &ins);
        let first = decisions[0];
        if decisions.iter().all(|&d| d == first) {
            stats.consistent += 1;
        }
        if decisions.iter().all(|&d| ins.contains(&d)) {
            stats.valid += 1;
        }
        if first == 1 {
            stats.decided_one += 1;
        }
    }
    stats
}

/// Run one consensus instance with `inputs.len()` concurrent threads and
/// return each process's decision.
pub fn decide_concurrently<C: Consensus + ?Sized>(proto: &C, inputs: &[u8]) -> Vec<u8> {
    std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(p, &input)| s.spawn(move || proto.decide(p, input)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("decider panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A degenerate consensus for harness tests: everyone decides
    /// process 0's input, published before threads start... here we fake
    /// it by always deciding 0 — intentionally violating validity when
    /// all inputs are 1.
    #[derive(Debug)]
    struct AlwaysZero {
        n: usize,
    }

    impl Consensus for AlwaysZero {
        fn decide(&self, _process: usize, _input: u8) -> u8 {
            0
        }

        fn num_processes(&self) -> usize {
            self.n
        }

        fn object_count(&self) -> usize {
            0
        }

        fn name(&self) -> &'static str {
            "always-zero"
        }
    }

    #[test]
    fn harness_flags_validity_violations() {
        let stats = run_trials(4, |_| AlwaysZero { n: 3 }, |t| {
            if t % 2 == 0 {
                vec![1, 1, 1] // all-ones: deciding 0 is invalid
            } else {
                vec![0, 1, 1]
            }
        });
        assert_eq!(stats.trials, 4);
        assert_eq!(stats.consistent, 4);
        assert_eq!(stats.valid, 2);
        assert!(!stats.all_correct());
        assert_eq!(stats.decided_one, 0);
    }

    #[test]
    fn stats_display_is_informative() {
        let s = TrialStats { trials: 2, consistent: 2, valid: 1, decided_one: 1 };
        let txt = s.to_string();
        assert!(txt.contains("2/2 consistent"));
        assert!(txt.contains("1/2 valid"));
    }
}
