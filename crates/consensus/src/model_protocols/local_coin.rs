//! Private-mixing consensus: local coin walks feeding one compare&swap.
//!
//! Each process "mixes" its **own** bounded counter for `r` steps —
//! every step increments or decrements according to a fresh local coin
//! flip — and then races everyone else on a single one-shot
//! `CAS(⊥ → input)` cell, deciding whatever the cell holds afterwards.
//! The preference carried into the CAS is always the process's *input*,
//! so validity is structural; agreement comes from the CAS alone,
//! exactly as in Herlihy's construction ([`crate::model_protocols::cas_model`]).
//!
//! The protocol is correct but deliberately *state-space heavy*: the
//! mixing phases of different processes touch disjoint objects, so the
//! raw reachable space is the full interleaving lattice of the private
//! walks (exponential in `n·r`) while only a single Mazurkiewicz class
//! matters. That makes it the showcase workload for the explorer's
//! partial-order reduction ([`ExploreConfig::por`]): the footprint rule
//! serializes the mixing phase into one chain per coin history and the
//! shared CAS phase is left fully expanded.
//!
//! [`ExploreConfig::por`]: randsync_model::ExploreConfig

use randsync_model::{
    Action, Decision, ObjectId, ObjectKind, ObjectSpec, Operation, ProcessId, Protocol,
    Response, Value,
};

/// The private-mixing protocol for `n` processes with `r` mixing steps.
#[derive(Clone, Debug)]
pub struct LocalCoinModel {
    n: usize,
    r: u32,
}

impl LocalCoinModel {
    /// An instance for `n` processes, each mixing for `r` steps.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `r == 0`.
    pub fn new(n: usize, r: u32) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(r > 0, "need at least one mixing step");
        LocalCoinModel { n, r }
    }

    /// The shared decision cell (the last object).
    fn cell(&self) -> ObjectId {
        ObjectId(self.n)
    }
}

/// State of a [`LocalCoinModel`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LocalCoinState {
    /// Walking the private counter: `left` steps remain, the next one
    /// moves `up` or down.
    Mix {
        /// Which process (and hence which private counter) this is.
        pid: usize,
        /// Mixing steps remaining (strictly decreasing — the state
        /// machine is acyclic).
        left: u32,
        /// Direction of the next counter step.
        up: bool,
        /// The input, carried through to the CAS.
        pref: Decision,
    },
    /// About to attempt `CAS(⊥ → pref)` on the shared cell.
    Propose(Decision),
    /// Decided.
    Done(Decision),
}

impl Protocol for LocalCoinModel {
    type State = LocalCoinState;

    fn objects(&self) -> Vec<ObjectSpec> {
        // Bounded counters keep the value domain finite so the POR
        // footprint analysis stays exact (an unbounded Counter would
        // overflow the abstract-value cap and forfeit the reduction).
        let mut v: Vec<ObjectSpec> = (0..self.n)
            .map(|i| {
                ObjectSpec::new(
                    ObjectKind::BoundedCounter { lo: 0, hi: self.r as i64 },
                    format!("mix{i}"),
                )
            })
            .collect();
        v.push(ObjectSpec::new(ObjectKind::CompareSwap, "decision"));
        v
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn initial_state(&self, pid: ProcessId, input: Decision) -> LocalCoinState {
        LocalCoinState::Mix { pid: pid.0, left: self.r, up: true, pref: input }
    }

    fn action(&self, s: &LocalCoinState) -> Action {
        match s {
            LocalCoinState::Mix { pid, up, .. } => Action::Invoke {
                object: ObjectId(*pid),
                op: if *up { Operation::Inc } else { Operation::Dec },
            },
            LocalCoinState::Propose(d) => Action::Invoke {
                object: self.cell(),
                op: Operation::CompareSwap {
                    expected: Value::Bottom,
                    new: Value::Int(*d as i64),
                },
            },
            LocalCoinState::Done(d) => Action::Decide(*d),
        }
    }

    fn coin_domain(&self, s: &LocalCoinState, _resp: &Response) -> u32 {
        // A fresh direction is flipped after every mixing step that
        // still has a successor step.
        match s {
            LocalCoinState::Mix { left, .. } if *left > 1 => 2,
            _ => 1,
        }
    }

    fn transition(&self, s: &LocalCoinState, resp: &Response, coin: u32) -> LocalCoinState {
        match s {
            LocalCoinState::Mix { pid, left, pref, .. } if *left > 1 => LocalCoinState::Mix {
                pid: *pid,
                left: left - 1,
                up: coin == 1,
                pref: *pref,
            },
            LocalCoinState::Mix { pref, .. } => LocalCoinState::Propose(*pref),
            LocalCoinState::Propose(d) => match resp.value() {
                // ⊥ came back: our CAS installed `d`.
                Some(Value::Bottom) => LocalCoinState::Done(*d),
                // Someone beat us: adopt the installed value.
                Some(v) => {
                    LocalCoinState::Done(v.as_int().unwrap_or(0).clamp(0, 1) as Decision)
                }
                None => LocalCoinState::Done(*d),
            },
            done => done.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_model::{Explorer, SearchMode};

    #[test]
    fn model_checked_safe_for_small_instances() {
        for (n, r) in [(2, 2), (2, 3), (3, 2)] {
            let p = LocalCoinModel::new(n, r);
            let inputs: Vec<Decision> = (0..n).map(|i| (i % 2) as Decision).collect();
            let out = Explorer::default().explore(&p, &inputs);
            assert!(!out.truncated, "n={n} r={r}");
            assert!(out.is_safe(), "n={n} r={r}");
            assert_eq!(out.can_always_reach_termination, Some(true), "n={n} r={r}");
        }
    }

    #[test]
    fn por_preserves_verdicts_and_earns_its_keep() {
        let p = LocalCoinModel::new(2, 4);
        let raw = Explorer::default().explore(&p, &[0, 1]);
        let por = Explorer::default().por(true).explore(&p, &[0, 1]);
        assert!(!raw.truncated && !por.truncated);
        assert_eq!(raw.is_safe(), por.is_safe());
        assert_eq!(raw.can_always_reach_termination, por.can_always_reach_termination);
        assert_eq!(raw.infinite_execution_possible, por.infinite_execution_possible);
        assert!(por.por_pruned > 0, "private mixing must prune");
        let reduction = raw.configs_visited as f64 / por.configs_visited as f64;
        assert!(
            reduction > 1.5,
            "reduction {reduction:.2}x (raw {} vs por {})",
            raw.configs_visited,
            por.configs_visited
        );
        assert_eq!(por.por_fallbacks, 0, "the state machine is acyclic");
    }

    #[test]
    fn por_valency_matches_raw() {
        let p = LocalCoinModel::new(2, 3);
        let raw = Explorer::default().valency(&p, &[0, 1]).expect("not truncated");
        let por = Explorer::default().por(true).valency(&p, &[0, 1]).expect("not truncated");
        assert_eq!(raw.initial, por.initial);
        assert_eq!(raw.bivalent_cycle, por.bivalent_cycle);
        assert!(por.configs <= raw.configs);
    }

    #[test]
    fn best_first_exhausts_the_safe_space_without_a_witness() {
        let p = LocalCoinModel::new(2, 2);
        let bad = |c: &randsync_model::Configuration<LocalCoinState>| c.is_inconsistent();
        let (w, truncated) = Explorer::default()
            .search(SearchMode::BestFirst)
            .find_violation(&p, &[0, 1], bad);
        assert!(w.is_none());
        assert!(!truncated);
    }
}
