//! The consensus protocols expressed as `randsync-model` state
//! machines.
//!
//! These are the protocols the *simulator*, the *model checker*, and the
//! *lower-bound adversary* operate on:
//!
//! * [`naive`] — deliberately **flawed** register "consensus" protocols.
//!   They are symmetric (identical processes), use only read–write
//!   registers, and always terminate — so by Theorem 3.3 the adversary
//!   in `randsync-core` must be able to construct an execution deciding
//!   both 0 and 1 whenever enough processes participate.
//! * [`walk_model`] — the random-walk consensus of [`crate::walk`] as a
//!   coin-flipping state machine over one counter / fetch&add object,
//!   model-checkable for small n.
//! * [`cas_model`] — Herlihy's one-CAS deterministic consensus.
//! * [`two_proc`] — the 2-process swap and test&set protocols.

pub mod cas_model;
pub mod historyless;
pub mod local_coin;
pub mod mutex;
pub mod naive;
pub mod phase_model;
pub mod two_proc;
pub mod walk_model;

pub use cas_model::CasModel;
pub use historyless::{MixedZigzag, SwapChain, TasRace};
pub use local_coin::LocalCoinModel;
pub use mutex::{FlagOnlyMutex, PetersonMutex, TournamentMutex};
pub use naive::{NaiveWriteRead, Optimistic, Zigzag};
pub use phase_model::PhaseModel;
pub use two_proc::{FetchIncTwoModel, SwapTwoModel, TasTwoModel};
pub use walk_model::{WalkBacking, WalkModel};
