//! The propose/ratify phase protocol as a model protocol.
//!
//! This is the agreement core of [`crate::rounds::AhConsensus`] —
//! Ben-Or-style rounds over write-once flag registers — expressed as a
//! [`Protocol`] state machine so the explorer
//! can check it **exhaustively**: every interleaving of every register
//! read/write and every coin outcome, over a bounded number of rounds.
//!
//! The model uses a *local* coin (an explicit two-outcome branch) in
//! place of the threaded version's shared coin: safety (consistency and
//! validity) is completely independent of coin quality, which is
//! exactly what the exhaustive check establishes. Rounds past the
//! modeled bound park the process in a non-deciding spin state, so the
//! protocol is safety-complete for executions confined to the modeled
//! rounds — where all the adoption races live.

use randsync_model::{
    Action, Decision, ObjectId, ObjectKind, ObjectSpec, Operation, ProcessId, Protocol,
    Response, Value, Symmetry,};

/// Flag indices within a round's object block.
const PROP0: usize = 0;
const PROP1: usize = 1;
const VOTE0: usize = 2;
const VOTE1: usize = 3;
const VOTEB: usize = 4;
/// Flags per round.
const PER_ROUND: usize = 5;

/// The phase protocol over `rounds` modeled rounds.
#[derive(Clone, Debug)]
pub struct PhaseModel {
    n: usize,
    rounds: usize,
}

impl PhaseModel {
    /// An instance for `n` identical processes with `rounds` modeled
    /// rounds.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `rounds == 0`.
    pub fn new(n: usize, rounds: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(rounds > 0, "need at least one round");
        PhaseModel { n, rounds }
    }

    fn flag(&self, r: usize, which: usize) -> ObjectId {
        ObjectId(r * PER_ROUND + which)
    }
}

/// State of a [`PhaseModel`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PhaseState {
    /// About to set `prop[r][prefer]`.
    WriteProp {
        /// Current preference.
        prefer: Decision,
        /// Current round.
        r: usize,
    },
    /// About to read `prop[r][0]`.
    ReadProp0 {
        /// Current preference.
        prefer: Decision,
        /// Current round.
        r: usize,
    },
    /// About to read `prop[r][1]` (carrying the first proposal flag).
    ReadProp1 {
        /// Current preference.
        prefer: Decision,
        /// Current round.
        r: usize,
        /// Whether 0 was proposed.
        p0: bool,
    },
    /// About to set `vote[r][vote]` (0, 1, or 2 = ⊥).
    WriteVote {
        /// Current preference.
        prefer: Decision,
        /// Current round.
        r: usize,
        /// The vote to cast.
        vote: u8,
    },
    /// Reading the three vote flags in order, accumulating them.
    ReadVote {
        /// Current preference.
        prefer: Decision,
        /// Current round.
        r: usize,
        /// Which vote flag is read next (0, 1, 2).
        k: u8,
        /// Flags read so far (`v0`, `v1`).
        seen: (bool, bool),
    },
    /// Decided.
    Done(Decision),
    /// Ran past the modeled rounds: spins on a read forever (the model
    /// boundary, not a protocol state — see the module docs).
    Parked,
}

impl Protocol for PhaseModel {
    type State = PhaseState;

    fn objects(&self) -> Vec<ObjectSpec> {
        (0..self.rounds * PER_ROUND)
            .map(|i| {
                let (r, which) = (i / PER_ROUND, i % PER_ROUND);
                let name = match which {
                    PROP0 => format!("prop[{r}][0]"),
                    PROP1 => format!("prop[{r}][1]"),
                    VOTE0 => format!("vote[{r}][0]"),
                    VOTE1 => format!("vote[{r}][1]"),
                    VOTEB => format!("vote[{r}][⊥]"),
                    _ => unreachable!("five flags per round"),
                };
                ObjectSpec::with_initial(ObjectKind::Register, Value::Bool(false), name)
            })
            .collect()
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn initial_state(&self, _pid: ProcessId, input: Decision) -> PhaseState {
        PhaseState::WriteProp { prefer: input, r: 0 }
    }

    fn action(&self, s: &PhaseState) -> Action {
        match s {
            PhaseState::WriteProp { prefer, r } => Action::Invoke {
                object: self.flag(*r, if *prefer == 0 { PROP0 } else { PROP1 }),
                op: Operation::Write(Value::Bool(true)),
            },
            PhaseState::ReadProp0 { r, .. } => {
                Action::Invoke { object: self.flag(*r, PROP0), op: Operation::Read }
            }
            PhaseState::ReadProp1 { r, .. } => {
                Action::Invoke { object: self.flag(*r, PROP1), op: Operation::Read }
            }
            PhaseState::WriteVote { r, vote, .. } => Action::Invoke {
                object: self.flag(*r, VOTE0 + *vote as usize),
                op: Operation::Write(Value::Bool(true)),
            },
            PhaseState::ReadVote { r, k, .. } => Action::Invoke {
                object: self.flag(*r, VOTE0 + *k as usize),
                op: Operation::Read,
            },
            PhaseState::Done(d) => Action::Decide(*d),
            PhaseState::Parked => {
                // Spin reading an arbitrary flag; never decides.
                Action::Invoke { object: self.flag(0, PROP0), op: Operation::Read }
            }
        }
    }

    fn coin_domain(&self, s: &PhaseState, resp: &Response) -> u32 {
        // The only branch: the final vote-flag read, when only ⊥ was
        // voted (→ local coin).
        if let PhaseState::ReadVote { k: 2, seen: (false, false), .. } = s {
            if resp.value() == Some(Value::Bool(true)) {
                return 2;
            }
        }
        1
    }

    fn transition(&self, s: &PhaseState, resp: &Response, coin: u32) -> PhaseState {
        let flag_set = resp.value().and_then(|v| v.as_bool()).unwrap_or(false);
        match s {
            PhaseState::WriteProp { prefer, r } => {
                PhaseState::ReadProp0 { prefer: *prefer, r: *r }
            }
            PhaseState::ReadProp0 { prefer, r } => {
                PhaseState::ReadProp1 { prefer: *prefer, r: *r, p0: flag_set }
            }
            PhaseState::ReadProp1 { prefer, r, p0 } => {
                let vote = match (*p0, flag_set) {
                    (true, false) => 0,
                    (false, true) => 1,
                    _ => 2,
                };
                PhaseState::WriteVote { prefer: *prefer, r: *r, vote }
            }
            PhaseState::WriteVote { prefer, r, .. } => {
                PhaseState::ReadVote { prefer: *prefer, r: *r, k: 0, seen: (false, false) }
            }
            PhaseState::ReadVote { prefer, r, k, seen } => match k {
                0 => PhaseState::ReadVote {
                    prefer: *prefer,
                    r: *r,
                    k: 1,
                    seen: (flag_set, false),
                },
                1 => PhaseState::ReadVote {
                    prefer: *prefer,
                    r: *r,
                    k: 2,
                    seen: (seen.0, flag_set),
                },
                _ => {
                    let (v0, v1) = *seen;
                    let vbot = flag_set;
                    let next_prefer = match (v0, v1, vbot) {
                        (true, false, false) => return PhaseState::Done(0),
                        (false, true, false) => return PhaseState::Done(1),
                        (true, _, true) => 0,
                        (_, true, true) => 1,
                        // Only ⊥ (or nothing visible yet): local coin.
                        _ => coin as Decision,
                    };
                    if *r + 1 < self.rounds {
                        PhaseState::WriteProp { prefer: next_prefer, r: *r + 1 }
                    } else {
                        PhaseState::Parked
                    }
                }
            },
            PhaseState::Done(d) => PhaseState::Done(*d),
            PhaseState::Parked => PhaseState::Parked,
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn symmetry(&self) -> Symmetry {
        Symmetry::Symmetric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_model::{Explorer, ExploreLimits, RandomScheduler, Simulator};

    fn explorer() -> Explorer {
        Explorer::new(ExploreLimits { max_configs: 4_000_000, max_depth: 300_000 })
    }

    #[test]
    fn two_process_two_round_phase_protocol_is_exhaustively_safe() {
        let p = PhaseModel::new(2, 2);
        let out = explorer().explore(&p, &[0, 1]);
        assert!(!out.truncated, "state space: {}", out.configs_visited);
        assert!(out.is_safe(), "agreement core violated: {out:?}");
    }

    #[test]
    fn unanimous_inputs_decide_in_round_one_without_coins() {
        let p = PhaseModel::new(2, 1);
        for input in [0, 1] {
            let out = explorer().explore(&p, &[input; 2]);
            assert!(!out.truncated);
            assert!(out.is_safe(), "input {input}");
            // Every terminal configuration decided; no parking needed.
            assert!(out.terminal_configs > 0);
            assert_eq!(out.can_always_reach_termination, Some(true));
        }
    }

    #[test]
    fn three_process_single_round_is_exhaustively_safe() {
        let p = PhaseModel::new(3, 1);
        let out = explorer().explore(&p, &[0, 1, 0]);
        assert!(!out.truncated, "state space: {}", out.configs_visited);
        assert!(out.is_safe());
    }

    #[test]
    fn simulation_decides_under_random_schedules_given_enough_rounds() {
        let p = PhaseModel::new(3, 12);
        let mut undecided = 0;
        for seed in 0..30u64 {
            let mut sim = Simulator::new(100_000, seed);
            let mut sched = RandomScheduler::new(seed * 7 + 5);
            let out = sim.run(&p, &[0, 1, 1], &mut sched).unwrap();
            let vals = out.decided_values();
            assert!(vals.len() <= 1, "seed {seed}: inconsistent {vals:?}");
            if vals.is_empty() {
                undecided += 1;
            }
        }
        // Local coins: per round the three agree with probability 1/4;
        // 12 rounds leave ~3% undecided-and-parked — allow some slack.
        assert!(undecided <= 6, "{undecided}/30 runs parked");
    }

    #[test]
    fn object_layout_is_five_registers_per_round() {
        let p = PhaseModel::new(2, 3);
        let objs = p.objects();
        assert_eq!(objs.len(), 15);
        assert!(objs.iter().all(|o| o.kind == ObjectKind::Register));
        assert!(objs[14].name.contains('⊥'));
    }
}
