//! Flawed protocols over non-register **historyless** objects.
//!
//! Section 3.1's cloning argument is register-specific, but the paper's
//! main theorem covers *all* historyless objects — swap and test&set
//! included. These protocols are the general-case adversary's prey:
//!
//! * [`SwapChain`]: each process swaps its (encoded) input into one
//!   swap register and decides what it received (its own input if it
//!   got ⊥). This **is** correct 2-process consensus — but for n ≥ 3
//!   the value travels like a relay baton and the third process can
//!   receive a different value than the first decided.
//! * [`TasRace`]: everyone races on a single test&set flag; the winner
//!   decides its input, losers… can only guess (the flag carries one
//!   bit of ordering and nothing else), so they decide their own input
//!   — plausible-looking, broken for mixed inputs.

use randsync_model::{
    Action, Decision, ObjectId, ObjectKind, ObjectSpec, Operation, ProcessId, Protocol,
    Response, Value, Symmetry,};

/// Relay-baton "consensus" on one swap register: correct for n = 2
/// (see [`SwapTwoModel`](crate::model_protocols::SwapTwoModel)), flawed
/// for n ≥ 3.
#[derive(Clone, Debug)]
pub struct SwapChain {
    n: usize,
}

impl SwapChain {
    /// An instance for `n` identical processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        SwapChain { n }
    }
}

/// State of a [`SwapChain`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum ChainState {
    /// About to swap in the encoded input (input + 1; ⊥ is 0).
    Swap(Decision),
    /// Decided.
    Done(Decision),
}

impl Protocol for SwapChain {
    type State = ChainState;

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![ObjectSpec::with_initial(ObjectKind::SwapRegister, Value::Int(0), "baton")]
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn initial_state(&self, _pid: ProcessId, input: Decision) -> ChainState {
        ChainState::Swap(input)
    }

    fn action(&self, s: &ChainState) -> Action {
        match s {
            ChainState::Swap(d) => Action::Invoke {
                object: ObjectId(0),
                op: Operation::Swap(Value::Int(*d as i64 + 1)),
            },
            ChainState::Done(d) => Action::Decide(*d),
        }
    }

    fn transition(&self, s: &ChainState, resp: &Response, _coin: u32) -> ChainState {
        match s {
            ChainState::Swap(d) => match resp.as_int() {
                Some(0) | None => ChainState::Done(*d),
                Some(v) => ChainState::Done(((v - 1).clamp(0, 1)) as Decision),
            },
            done => done.clone(),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn symmetry(&self) -> Symmetry {
        Symmetry::Symmetric
    }
}

/// One-flag "consensus": test&set once; the winner keeps its input,
/// losers keep theirs too (they have nothing else to go on). Broken
/// whenever inputs are mixed.
#[derive(Clone, Debug)]
pub struct TasRace {
    n: usize,
}

impl TasRace {
    /// An instance for `n` identical processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        TasRace { n }
    }
}

/// State of a [`TasRace`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum RaceState {
    /// About to test&set with this input.
    Race(Decision),
    /// Decided.
    Done(Decision),
}

impl Protocol for TasRace {
    type State = RaceState;

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![ObjectSpec::new(ObjectKind::TestAndSet, "flag")]
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn initial_state(&self, _pid: ProcessId, input: Decision) -> RaceState {
        RaceState::Race(input)
    }

    fn action(&self, s: &RaceState) -> Action {
        match s {
            RaceState::Race(_) => {
                Action::Invoke { object: ObjectId(0), op: Operation::TestAndSet }
            }
            RaceState::Done(d) => Action::Decide(*d),
        }
    }

    fn transition(&self, s: &RaceState, _resp: &Response, _coin: u32) -> RaceState {
        match s {
            RaceState::Race(d) => RaceState::Done(*d),
            done => done.clone(),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn symmetry(&self) -> Symmetry {
        Symmetry::Symmetric
    }
}

/// A flawed protocol over a **mixed** historyless object set — one
/// read–write register, one swap register, and one test&set flag —
/// with input-dependent access order:
///
/// * input 0: write the register, then swap the baton, then test&set;
/// * input 1: swap the baton, then write the register, then test&set;
///
/// then decide: the test&set winner keeps its input; losers decide the
/// register's value. Plausible-looking, thoroughly broken — and its
/// first nontrivial operations diverge by input, so the general
/// adversary's incomparable case (Lemma 3.5 / Figure 4) must fire with
/// *heterogeneous* object kinds in U.
#[derive(Clone, Debug)]
pub struct MixedZigzag {
    n: usize,
}

impl MixedZigzag {
    /// An instance for `n` identical processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        MixedZigzag { n }
    }
}

/// State of a [`MixedZigzag`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MixedState {
    /// Performing access `k` (0 or 1) of the input-dependent pair.
    Access {
        /// The process's input.
        input: Decision,
        /// Which access is next (0 = first, 1 = second).
        k: u8,
    },
    /// Racing on the flag.
    Race {
        /// The process's input.
        input: Decision,
    },
    /// Lost the race; reading the register.
    ReadBack,
    /// Decided.
    Done(Decision),
}

const REG: ObjectId = ObjectId(0);
const BATON: ObjectId = ObjectId(1);
const FLAG: ObjectId = ObjectId(2);

impl Protocol for MixedZigzag {
    type State = MixedState;

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::with_initial(ObjectKind::Register, Value::Int(0), "reg"),
            ObjectSpec::with_initial(ObjectKind::SwapRegister, Value::Int(0), "baton"),
            ObjectSpec::new(ObjectKind::TestAndSet, "flag"),
        ]
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn initial_state(&self, _pid: ProcessId, input: Decision) -> MixedState {
        MixedState::Access { input, k: 0 }
    }

    fn action(&self, s: &MixedState) -> Action {
        match s {
            MixedState::Access { input, k } => {
                // Input 0 touches reg first; input 1 touches baton first.
                let reg_turn = (*input == 0) == (*k == 0);
                if reg_turn {
                    Action::Invoke {
                        object: REG,
                        op: Operation::Write(Value::Int(*input as i64)),
                    }
                } else {
                    Action::Invoke {
                        object: BATON,
                        op: Operation::Swap(Value::Int(*input as i64 + 1)),
                    }
                }
            }
            MixedState::Race { .. } => {
                Action::Invoke { object: FLAG, op: Operation::TestAndSet }
            }
            MixedState::ReadBack => Action::Invoke { object: REG, op: Operation::Read },
            MixedState::Done(d) => Action::Decide(*d),
        }
    }

    fn transition(&self, s: &MixedState, resp: &Response, _coin: u32) -> MixedState {
        match s {
            MixedState::Access { input, k } => {
                if *k == 0 {
                    MixedState::Access { input: *input, k: 1 }
                } else {
                    MixedState::Race { input: *input }
                }
            }
            MixedState::Race { input } => {
                let lost = resp.value().and_then(|v| v.as_bool()).unwrap_or(false);
                if lost {
                    MixedState::ReadBack
                } else {
                    MixedState::Done(*input)
                }
            }
            MixedState::ReadBack => {
                MixedState::Done(resp.as_int().unwrap_or(0).clamp(0, 1) as Decision)
            }
            MixedState::Done(d) => MixedState::Done(*d),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn symmetry(&self) -> Symmetry {
        Symmetry::Symmetric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_model::{Explorer, RoundRobinScheduler, Simulator};

    #[test]
    fn swap_chain_objects_are_historyless_but_not_registers() {
        let objs = SwapChain::new(3).objects();
        assert_eq!(objs.len(), 1);
        assert!(objs[0].kind.is_historyless());
        assert_ne!(objs[0].kind, ObjectKind::Register);
    }

    #[test]
    fn swap_chain_is_safe_for_two_processes() {
        let p = SwapChain::new(2);
        for inputs in [[0u8, 1], [1, 0], [0, 0], [1, 1]] {
            let out = Explorer::default().explore(&p, &inputs);
            assert!(out.is_safe(), "{inputs:?}");
            assert!(!out.truncated);
        }
    }

    #[test]
    fn swap_chain_breaks_at_three_processes() {
        let p = SwapChain::new(3);
        let out = Explorer::default().explore(&p, &[0, 1, 1]);
        assert!(out.consistency_violation.is_some(), "the relay baton betrays n=3");
    }

    #[test]
    fn tas_race_is_broken_for_mixed_inputs() {
        let p = TasRace::new(2);
        let out = Explorer::default().explore(&p, &[0, 1]);
        assert!(out.consistency_violation.is_some());
        // But unanimous inputs are fine (vacuously consistent).
        let out = Explorer::default().explore(&p, &[1, 1]);
        assert!(out.is_safe());
    }

    #[test]
    fn mixed_zigzag_uses_three_distinct_historyless_kinds() {
        let objs = MixedZigzag::new(2).objects();
        assert_eq!(objs.len(), 3);
        assert!(objs.iter().all(|o| o.kind.is_historyless()));
        let kinds: std::collections::BTreeSet<_> =
            objs.iter().map(|o| o.kind.name()).collect();
        assert_eq!(kinds.len(), 3, "register + swap + test&set");
    }

    #[test]
    fn mixed_zigzag_first_accesses_diverge_by_input() {
        let p = MixedZigzag::new(2);
        let c = randsync_model::Configuration::initial(&p, &[0, 1]);
        assert_eq!(c.poised_at(&p, ProcessId(0)), Some(REG));
        assert_eq!(c.poised_at(&p, ProcessId(1)), Some(BATON));
    }

    #[test]
    fn mixed_zigzag_unanimous_inputs_decide_them() {
        for input in [0, 1] {
            let p = MixedZigzag::new(3);
            let mut sim = Simulator::new(1000, 2);
            let out = sim
                .run(&p, &[input; 3], &mut randsync_model::RandomScheduler::new(8))
                .unwrap();
            assert!(out.all_decided);
            assert_eq!(out.decided_values(), vec![input], "input {input}");
        }
    }

    #[test]
    fn mixed_zigzag_is_breakable_by_search() {
        let p = MixedZigzag::new(2);
        let out = Explorer::default().explore(&p, &[0, 1]);
        assert!(out.consistency_violation.is_some());
    }

    #[test]
    fn swap_chain_round_robin_run() {
        let p = SwapChain::new(3);
        let mut sim = Simulator::new(100, 0);
        let out = sim.run(&p, &[0, 1, 1], &mut RoundRobinScheduler::new()).unwrap();
        assert!(out.all_decided);
        // P0 decides 0 (got ⊥); P1 got 0 → decides 0; P2 got 1 → 1.
        assert!(out.config.is_inconsistent());
    }
}
