//! Flawed register "consensus" protocols — the adversary's prey.
//!
//! Theorem 3.3 bounds how many *identical* processes can possibly solve
//! randomized consensus with r read–write registers: at most r² − r + 1.
//! The protocols here are symmetric, always terminate (hence trivially
//! satisfy nondeterministic solo termination), and use few registers —
//! so the constructive lower-bound machinery in `randsync-core` is
//! guaranteed to find executions in which they decide both 0 and 1.
//! They are honest attempts, not strawmen: each is a natural
//! write-then-validate pattern that *looks* plausible and fails exactly
//! through the cut-and-splice interleavings of Section 3.

use randsync_model::{
    Action, Decision, ObjectId, ObjectKind, ObjectSpec, Operation, ProcessId, Protocol,
    Response, Value, Symmetry,};

/// The simplest flawed protocol: write your input to the single
/// register, read it back, decide what you read.
///
/// A write sandwiched between another process's write and read flips
/// that process's decision — the seed example of the paper's Figure 1
/// combination.
#[derive(Clone, Debug)]
pub struct NaiveWriteRead {
    n: usize,
}

impl NaiveWriteRead {
    /// An instance for `n` identical processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        NaiveWriteRead { n }
    }
}

/// State of a [`NaiveWriteRead`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NaiveState {
    /// About to write the input.
    Write(Decision),
    /// About to read the register back.
    Read,
    /// About to decide.
    Done(Decision),
}

impl Protocol for NaiveWriteRead {
    type State = NaiveState;

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![ObjectSpec::new(ObjectKind::Register, "r0")]
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn initial_state(&self, _pid: ProcessId, input: Decision) -> NaiveState {
        NaiveState::Write(input)
    }

    fn action(&self, s: &NaiveState) -> Action {
        match s {
            NaiveState::Write(d) => Action::Invoke {
                object: ObjectId(0),
                op: Operation::Write(Value::Int(*d as i64)),
            },
            NaiveState::Read => Action::Invoke { object: ObjectId(0), op: Operation::Read },
            NaiveState::Done(d) => Action::Decide(*d),
        }
    }

    fn transition(&self, s: &NaiveState, resp: &Response, _coin: u32) -> NaiveState {
        match s {
            NaiveState::Write(_) => NaiveState::Read,
            NaiveState::Read => {
                NaiveState::Done(resp.as_int().unwrap_or(0).clamp(0, 1) as Decision)
            }
            NaiveState::Done(d) => NaiveState::Done(*d),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn symmetry(&self) -> Symmetry {
        Symmetry::Symmetric
    }
}

/// A write-all / validate-all protocol over `r` registers: write your
/// input to every register in order, then read them all back; if every
/// register (still) holds one common value, decide it; otherwise decide
/// the value of the **last** register (the most recently validated
/// write wins).
///
/// With few processes this often "works"; with r² − r + 2 or more
/// identical processes Theorem 3.3 says it cannot, and the adversary
/// demonstrates it.
#[derive(Clone, Debug)]
pub struct Optimistic {
    n: usize,
    r: usize,
}

impl Optimistic {
    /// An instance for `n` identical processes over `r` registers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `r == 0`.
    pub fn new(n: usize, r: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(r > 0, "need at least one register");
        Optimistic { n, r }
    }

    /// The number of registers.
    pub fn registers(&self) -> usize {
        self.r
    }
}

/// State of an [`Optimistic`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum OptState {
    /// Writing the input to register `k`.
    Write {
        /// The process's input.
        input: Decision,
        /// Next register to write.
        k: usize,
    },
    /// Reading register `k` back; `seen` collects the values read so
    /// far.
    Read {
        /// The process's input.
        input: Decision,
        /// Next register to read.
        k: usize,
        /// Values observed so far, in register order.
        seen: Vec<i64>,
    },
    /// Decided.
    Done(Decision),
}

impl Protocol for Optimistic {
    type State = OptState;

    fn objects(&self) -> Vec<ObjectSpec> {
        (0..self.r)
            .map(|i| ObjectSpec::new(ObjectKind::Register, format!("r{i}")))
            .collect()
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn initial_state(&self, _pid: ProcessId, input: Decision) -> OptState {
        OptState::Write { input, k: 0 }
    }

    fn action(&self, s: &OptState) -> Action {
        match s {
            OptState::Write { input, k } => Action::Invoke {
                object: ObjectId(*k),
                op: Operation::Write(Value::Int(*input as i64)),
            },
            OptState::Read { k, .. } => {
                Action::Invoke { object: ObjectId(*k), op: Operation::Read }
            }
            OptState::Done(d) => Action::Decide(*d),
        }
    }

    fn transition(&self, s: &OptState, resp: &Response, _coin: u32) -> OptState {
        match s {
            OptState::Write { input, k } => {
                if k + 1 < self.r {
                    OptState::Write { input: *input, k: k + 1 }
                } else {
                    OptState::Read { input: *input, k: 0, seen: Vec::new() }
                }
            }
            OptState::Read { input, k, seen } => {
                let mut seen = seen.clone();
                seen.push(resp.as_int().unwrap_or(0));
                if k + 1 < self.r {
                    OptState::Read { input: *input, k: k + 1, seen }
                } else {
                    let first = seen[0];
                    let unanimous = seen.iter().all(|&v| v == first);
                    let winner =
                        if unanimous { first } else { *seen.last().expect("r ≥ 1") };
                    OptState::Done(winner.clamp(0, 1) as Decision)
                }
            }
            OptState::Done(d) => OptState::Done(*d),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn symmetry(&self) -> Symmetry {
        Symmetry::Symmetric
    }
}

/// Like [`Optimistic`], but processes with input 0 write the registers
/// in ascending order while processes with input 1 write them in
/// **descending** order (then everyone validates in ascending order and
/// decides as in [`Optimistic`]).
///
/// The point of the zigzag: the first write of a 0-input solo targets
/// register 0 while a 1-input solo first writes register r−1, so the
/// Lemma 3.1 recursion starts from **incomparable** initial object sets
/// — the paper's Figure 4 case — rather than the V ⊆ W cases that
/// order-agreeing protocols produce.
#[derive(Clone, Debug)]
pub struct Zigzag {
    n: usize,
    r: usize,
}

impl Zigzag {
    /// An instance for `n` identical processes over `r` registers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `r == 0`.
    pub fn new(n: usize, r: usize) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(r > 0, "need at least one register");
        Zigzag { n, r }
    }

    /// The number of registers.
    pub fn registers(&self) -> usize {
        self.r
    }

    fn write_target(&self, input: Decision, k: usize) -> usize {
        if input == 0 {
            k
        } else {
            self.r - 1 - k
        }
    }
}

impl Protocol for Zigzag {
    type State = OptState;

    fn objects(&self) -> Vec<ObjectSpec> {
        (0..self.r)
            .map(|i| ObjectSpec::new(ObjectKind::Register, format!("r{i}")))
            .collect()
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn initial_state(&self, _pid: ProcessId, input: Decision) -> OptState {
        OptState::Write { input, k: 0 }
    }

    fn action(&self, s: &OptState) -> Action {
        match s {
            OptState::Write { input, k } => Action::Invoke {
                object: ObjectId(self.write_target(*input, *k)),
                op: Operation::Write(Value::Int(*input as i64)),
            },
            OptState::Read { k, .. } => {
                Action::Invoke { object: ObjectId(*k), op: Operation::Read }
            }
            OptState::Done(d) => Action::Decide(*d),
        }
    }

    fn transition(&self, s: &OptState, resp: &Response, _coin: u32) -> OptState {
        match s {
            OptState::Write { input, k } => {
                if k + 1 < self.r {
                    OptState::Write { input: *input, k: k + 1 }
                } else {
                    OptState::Read { input: *input, k: 0, seen: Vec::new() }
                }
            }
            OptState::Read { input, k, seen } => {
                let mut seen = seen.clone();
                seen.push(resp.as_int().unwrap_or(0));
                if k + 1 < self.r {
                    OptState::Read { input: *input, k: k + 1, seen }
                } else {
                    let first = seen[0];
                    let unanimous = seen.iter().all(|&v| v == first);
                    let winner =
                        if unanimous { first } else { *seen.last().expect("r ≥ 1") };
                    OptState::Done(winner.clamp(0, 1) as Decision)
                }
            }
            OptState::Done(d) => OptState::Done(*d),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn symmetry(&self) -> Symmetry {
        Symmetry::Symmetric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_model::{Configuration, Explorer, RoundRobinScheduler, Simulator};

    #[test]
    fn naive_terminates_and_is_symmetric() {
        let p = NaiveWriteRead::new(3);
        assert!(p.is_symmetric());
        let mut sim = Simulator::new(100, 0);
        let out = sim.run(&p, &[0, 1, 1], &mut RoundRobinScheduler::new()).unwrap();
        assert!(out.all_decided);
    }

    #[test]
    fn naive_is_breakable_by_search() {
        let p = NaiveWriteRead::new(2);
        let out = Explorer::default().explore(&p, &[0, 1]);
        assert!(out.consistency_violation.is_some());
    }

    #[test]
    fn optimistic_solo_decides_own_input() {
        let p = Optimistic::new(2, 3);
        assert_eq!(p.registers(), 3);
        let config = Configuration::initial(&p, &[1, 0]);
        let mut sim = Simulator::new(100, 0);
        let out = sim.run_solo(&p, config, ProcessId(0)).unwrap();
        assert_eq!(out.config.procs[0].decision(), Some(1));
    }

    #[test]
    fn optimistic_unanimous_inputs_decide_them() {
        for input in [0, 1] {
            let p = Optimistic::new(3, 2);
            let mut sim = Simulator::new(1000, 4);
            let out = sim
                .run(&p, &[input; 3], &mut randsync_model::RandomScheduler::new(9))
                .unwrap();
            assert!(out.all_decided);
            assert_eq!(out.decided_values(), vec![input]);
        }
    }

    #[test]
    fn optimistic_is_breakable_by_search() {
        // Even with 2 registers and only 2 processes, plain exploration
        // finds an inconsistent interleaving of this protocol.
        let p = Optimistic::new(2, 2);
        let out = Explorer::default().explore(&p, &[0, 1]);
        let w = out.consistency_violation.expect("optimistic is flawed");
        let start = Configuration::initial(&p, &[0, 1]);
        let (end, _) = w.replay(&p, &start).unwrap();
        assert_eq!(end.decided_values(), vec![0, 1]);
    }

    #[test]
    fn optimistic_steps_are_poised_while_writing() {
        let p = Optimistic::new(2, 2);
        let c = Configuration::initial(&p, &[0, 1]);
        assert_eq!(c.poised_at(&p, ProcessId(0)), Some(ObjectId(0)));
    }

    #[test]
    fn zigzag_first_writes_diverge_by_input() {
        let p = Zigzag::new(2, 3);
        assert_eq!(p.registers(), 3);
        let c = Configuration::initial(&p, &[0, 1]);
        assert_eq!(c.poised_at(&p, ProcessId(0)), Some(ObjectId(0)), "input 0 ascends");
        assert_eq!(c.poised_at(&p, ProcessId(1)), Some(ObjectId(2)), "input 1 descends");
    }

    #[test]
    fn zigzag_unanimous_inputs_decide_them() {
        for input in [0, 1] {
            let p = Zigzag::new(3, 2);
            let mut sim = Simulator::new(1000, 4);
            let out = sim
                .run(&p, &[input; 3], &mut randsync_model::RandomScheduler::new(5))
                .unwrap();
            assert!(out.all_decided);
            assert_eq!(out.decided_values(), vec![input]);
        }
    }

    #[test]
    fn zigzag_is_breakable_by_search() {
        let p = Zigzag::new(2, 2);
        let out = Explorer::default().explore(&p, &[0, 1]);
        assert!(out.consistency_violation.is_some());
    }
}
