//! Herlihy's one-compare&swap consensus as a model protocol.

use randsync_model::{
    Action, Decision, ObjectId, ObjectKind, ObjectSpec, Operation, ProcessId, Protocol,
    Response, Value, Symmetry,};

/// Deterministic n-process consensus from one compare&swap register:
/// `CAS(⊥ → input)`, decide whatever the register holds afterwards.
///
/// The model checker proves this safe for small n; the lower-bound
/// adversary must fail against it (compare&swap is not historyless, so
/// Theorem 3.7 does not apply — and indeed cannot, since one instance
/// suffices).
#[derive(Clone, Debug)]
pub struct CasModel {
    n: usize,
}

impl CasModel {
    /// An instance for `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        CasModel { n }
    }
}

/// State of a [`CasModel`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CasState {
    /// About to attempt the CAS with this input.
    Try(Decision),
    /// Decided.
    Done(Decision),
}

impl Protocol for CasModel {
    type State = CasState;

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![ObjectSpec::new(ObjectKind::CompareSwap, "decision")]
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn initial_state(&self, _pid: ProcessId, input: Decision) -> CasState {
        CasState::Try(input)
    }

    fn action(&self, s: &CasState) -> Action {
        match s {
            CasState::Try(d) => Action::Invoke {
                object: ObjectId(0),
                op: Operation::CompareSwap {
                    expected: Value::Bottom,
                    new: Value::Int(*d as i64),
                },
            },
            CasState::Done(d) => Action::Decide(*d),
        }
    }

    fn transition(&self, s: &CasState, resp: &Response, _coin: u32) -> CasState {
        match s {
            CasState::Try(d) => match resp.value() {
                Some(Value::Bottom) => CasState::Done(*d),
                Some(v) => CasState::Done(v.as_int().unwrap_or(0).clamp(0, 1) as Decision),
                None => CasState::Done(*d),
            },
            done => done.clone(),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn symmetry(&self) -> Symmetry {
        Symmetry::Symmetric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_model::Explorer;

    #[test]
    fn model_checked_safe_for_small_n() {
        for n in 2..=4 {
            let p = CasModel::new(n);
            let inputs: Vec<Decision> = (0..n).map(|i| (i % 2) as Decision).collect();
            let out = Explorer::default().explore(&p, &inputs);
            assert!(!out.truncated, "n={n}");
            assert!(out.is_safe(), "n={n}");
            assert_eq!(out.can_always_reach_termination, Some(true), "n={n}");
        }
    }

    #[test]
    fn unanimous_inputs_model_checked() {
        let p = CasModel::new(3);
        for input in [0, 1] {
            let out = Explorer::default().explore(&p, &[input; 3]);
            assert!(out.is_safe());
        }
    }
}
