//! The random-walk consensus as a coin-flipping model protocol.
//!
//! This is the state machine of [`crate::walk`] expressed against
//! [`Protocol`], with every local coin flip an
//! explicit two-outcome branch. For small n and margins the protocol is
//! small enough to **model check exhaustively**: the explorer proves
//! consistency and validity over *every* interleaving and coin outcome,
//! and proves that termination stays reachable from every configuration
//! (the model-level analogue of "terminates with probability 1").
//!
//! The same protocol instantiates over three backings, mirroring the
//! paper's Theorems 4.2 and 4.4:
//! one (bounded) counter, or one fetch&add register.

use randsync_model::{
    Action, Decision, ObjectId, ObjectKind, ObjectSpec, Operation, ProcessId, Protocol,
    Response, Symmetry,};

/// Which single shared object the walk runs over.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WalkBacking {
    /// An unbounded counter (INC / DEC / READ).
    Counter,
    /// A bounded counter over `±(decide + n)` — Theorem 4.2's object.
    BoundedCounter,
    /// A fetch&add register — Theorem 4.4's object.
    FetchAdd,
}

/// Random-walk consensus over one counter-like object, as a model
/// protocol. See [`crate::walk`] for the protocol rules and the
/// correctness argument; margins are `drift` and `decide` with
/// `decide − (n−1) ≥ drift` required for agreement.
#[derive(Clone, Debug)]
pub struct WalkModel {
    n: usize,
    backing: WalkBacking,
    drift: i64,
    decide: i64,
    /// Bounded-counter range override (for the wrap-around ablation);
    /// `None` = the safe `decide + n`.
    bound_override: Option<i64>,
    /// Replace the fair coin with a deterministic rule (move toward
    /// the own input) — the FLP-demonstration variant.
    deterministic: bool,
}

impl WalkModel {
    /// A walk for `n` processes over `backing` with explicit margins.
    ///
    /// # Panics
    ///
    /// Panics if the margins do not satisfy the agreement condition
    /// `decide − (n−1) ≥ drift > 0`.
    pub fn new(n: usize, backing: WalkBacking, drift: i64, decide: i64) -> Self {
        assert!(n > 0, "need at least one process");
        assert!(drift > 0, "drift margin must be positive");
        assert!(
            decide - (n as i64 - 1) >= drift,
            "agreement needs decide − (n−1) ≥ drift"
        );
        WalkModel { n, backing, drift, decide, bound_override: None, deterministic: false }
    }

    /// The wrap-around ablation: a **deliberately undersized** bounded
    /// counter. The agreement argument needs room for up to `n` stale
    /// moves beyond the decision threshold; a range smaller than
    /// `decide + n` lets the cursor wrap from the +barrier to the
    /// −barrier, and the model checker finds the resulting
    /// inconsistency — demonstrating why the paper describes Aspnes's
    /// cursor as ranging over ±3n rather than ±2n.
    ///
    /// # Panics
    ///
    /// Panics if the margins are invalid (see [`WalkModel::new`]) or
    /// `bound < decide`.
    pub fn with_undersized_bound(n: usize, drift: i64, decide: i64, bound: i64) -> Self {
        let mut me = Self::new(n, WalkBacking::BoundedCounter, drift, decide);
        assert!(bound >= decide, "the counter must at least reach the barriers");
        me.bound_override = Some(bound);
        me
    }

    /// The paper-default margins (`drift = n`, `decide = 2n`).
    pub fn with_default_margins(n: usize, backing: WalkBacking) -> Self {
        Self::new(n, backing, n as i64, 2 * n as i64)
    }

    /// The smallest margins that still satisfy the agreement condition
    /// for `n` processes — the cheapest instance to model check.
    pub fn with_tight_margins(n: usize, backing: WalkBacking) -> Self {
        Self::new(n, backing, 1, n as i64)
    }

    /// The **deterministic-coin** variant: every would-be coin flip
    /// instead moves toward the process's own input.
    ///
    /// Agreement and validity are untouched (the walk's correctness
    /// argument never uses coin fairness), but termination changes
    /// category: an adversary can now balance the walk *forever* along
    /// a fixed infinite schedule. This is the consensus-number-1 story
    /// (FLP-style) made mechanical: the explorer proves the variant
    /// safe AND finds the non-terminating cycles, whereas the
    /// randomized original escapes them with probability 1.
    pub fn deterministic_variant(n: usize, backing: WalkBacking) -> Self {
        let mut me = Self::with_tight_margins(n, backing);
        me.deterministic = true;
        me
    }

    /// The counter range the protocol can touch.
    pub fn bound(&self) -> i64 {
        self.bound_override.unwrap_or(self.decide + self.n as i64)
    }

    fn move_op(&self, up: bool) -> Operation {
        match self.backing {
            WalkBacking::Counter | WalkBacking::BoundedCounter => {
                if up {
                    Operation::Inc
                } else {
                    Operation::Dec
                }
            }
            WalkBacking::FetchAdd => Operation::FetchAdd(if up { 1 } else { -1 }),
        }
    }

    /// Decide / evidence / move logic shared by `coin_domain` and
    /// `transition`: what does a process in `s` do upon reading `v`?
    fn on_read(&self, s: &WalkState, v: i64) -> ReadOutcome {
        if v >= self.decide {
            return ReadOutcome::Decide(1);
        }
        if v <= -self.decide {
            return ReadOutcome::Decide(0);
        }
        let evidence = s.evidence
            || match s.input {
                1 => v < s.moves || s.prev.is_some_and(|p| v < p),
                _ => v > -s.moves || s.prev.is_some_and(|p| v > p),
            };
        if !evidence {
            ReadOutcome::Move { up: s.input == 1, evidence: false }
        } else if v >= self.drift {
            ReadOutcome::Move { up: true, evidence: true }
        } else if v <= -self.drift {
            ReadOutcome::Move { up: false, evidence: true }
        } else {
            ReadOutcome::Flip
        }
    }
}

enum ReadOutcome {
    Decide(Decision),
    Move { up: bool, evidence: bool },
    Flip,
}

/// State of a [`WalkModel`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WalkState {
    /// The process's input.
    pub input: Decision,
    /// Whether conflict evidence has been acquired (see
    /// [`crate::walk`]). Once set, `moves` and `prev` are frozen at
    /// canonical values to keep the state space finite.
    pub evidence: bool,
    /// Own move count while evidence-free (0 afterwards).
    pub moves: i64,
    /// The previous read while evidence-free (`None` afterwards).
    pub prev: Option<i64>,
    /// A move decided upon but not yet applied (`Some(up)`).
    pub pending: Option<bool>,
    /// The decision, once reached.
    pub decided: Option<Decision>,
}

impl WalkState {
    fn fresh(input: Decision) -> Self {
        WalkState {
            input,
            evidence: false,
            moves: 0,
            prev: None,
            pending: None,
            decided: None,
        }
    }
}

impl Protocol for WalkModel {
    type State = WalkState;

    fn objects(&self) -> Vec<ObjectSpec> {
        let kind = match self.backing {
            WalkBacking::Counter => ObjectKind::Counter,
            WalkBacking::BoundedCounter => {
                ObjectKind::BoundedCounter { lo: -self.bound(), hi: self.bound() }
            }
            WalkBacking::FetchAdd => ObjectKind::FetchAdd,
        };
        vec![ObjectSpec::new(kind, "cursor")]
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn initial_state(&self, _pid: ProcessId, input: Decision) -> WalkState {
        WalkState::fresh(input)
    }

    fn action(&self, s: &WalkState) -> Action {
        if let Some(d) = s.decided {
            return Action::Decide(d);
        }
        if let Some(up) = s.pending {
            return Action::Invoke { object: ObjectId(0), op: self.move_op(up) };
        }
        Action::Invoke { object: ObjectId(0), op: Operation::Read }
    }

    fn coin_domain(&self, s: &WalkState, resp: &Response) -> u32 {
        if self.deterministic || s.decided.is_some() || s.pending.is_some() {
            return 1;
        }
        let Some(v) = resp.as_int() else { return 1 };
        match self.on_read(s, v) {
            ReadOutcome::Flip => 2,
            _ => 1,
        }
    }

    fn transition(&self, s: &WalkState, resp: &Response, coin: u32) -> WalkState {
        let mut next = s.clone();
        if s.decided.is_some() {
            return next;
        }
        if s.pending.is_some() {
            // The move completed (response is Ack for counters, the old
            // value for fetch&add — either way uninformative here).
            next.pending = None;
            if !next.evidence {
                next.moves += 1;
            }
            return next;
        }
        let v = resp.as_int().expect("reads return integers");
        match self.on_read(s, v) {
            ReadOutcome::Decide(d) => {
                next.decided = Some(d);
            }
            ReadOutcome::Move { up, evidence } => {
                next.pending = Some(up);
                if evidence && !next.evidence {
                    next.evidence = true;
                    next.moves = 0;
                    next.prev = None;
                } else if !evidence {
                    next.prev = Some(v);
                }
            }
            ReadOutcome::Flip => {
                // Reaching Flip implies evidence (fresh or prior).
                if !next.evidence {
                    next.evidence = true;
                    next.moves = 0;
                    next.prev = None;
                }
                next.pending = if self.deterministic {
                    // Deterministic rule: lean toward the own input.
                    Some(s.input == 1)
                } else {
                    Some(coin == 1)
                };
            }
        }
        next
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn symmetry(&self) -> Symmetry {
        Symmetry::Symmetric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_model::{
        Explorer, ExploreLimits, RandomScheduler, RoundRobinScheduler, Simulator,
    };

    #[test]
    fn margins_are_validated() {
        let m = WalkModel::with_default_margins(3, WalkBacking::Counter);
        assert_eq!((m.drift, m.decide), (3, 6));
        assert_eq!(m.bound(), 9, "±3n, as the paper describes");
        let t = WalkModel::with_tight_margins(2, WalkBacking::FetchAdd);
        assert_eq!((t.drift, t.decide), (1, 2));
    }

    #[test]
    #[should_panic(expected = "agreement needs")]
    fn bad_margins_rejected() {
        let _ = WalkModel::new(4, WalkBacking::Counter, 2, 4);
    }

    #[test]
    fn simulation_decides_consistently_under_random_schedules() {
        for backing in [WalkBacking::Counter, WalkBacking::BoundedCounter, WalkBacking::FetchAdd]
        {
            let p = WalkModel::with_default_margins(3, backing);
            for seed in 0..15 {
                let mut sim = Simulator::new(200_000, seed);
                let mut sched = RandomScheduler::new(seed * 3 + 1);
                let out = sim.run(&p, &[0, 1, 0], &mut sched).unwrap();
                assert!(out.all_decided, "{backing:?} seed {seed} did not terminate");
                assert_eq!(
                    out.decided_values().len(),
                    1,
                    "{backing:?} seed {seed} inconsistent"
                );
            }
        }
    }

    #[test]
    fn unanimous_inputs_decide_them_without_flipping() {
        let p = WalkModel::with_default_margins(3, WalkBacking::BoundedCounter);
        for input in [0, 1] {
            let mut sim = Simulator::new(100_000, 1);
            let out = sim.run(&p, &[input; 3], &mut RoundRobinScheduler::new()).unwrap();
            assert!(out.all_decided);
            assert_eq!(out.decided_values(), vec![input]);
            // No coin was consumed anywhere: all records carry coin 0
            // and every transition had domain 1 (validity is
            // deterministic).
            assert!(out.records.iter().all(|r| r.coin == 0));
        }
    }

    #[test]
    fn tight_margin_two_process_walk_model_checks_safe() {
        // Exhaustive check over every interleaving and coin outcome.
        let p = WalkModel::with_tight_margins(2, WalkBacking::BoundedCounter);
        let out = Explorer::new(ExploreLimits { max_configs: 2_000_000, max_depth: 100_000 })
            .explore(&p, &[0, 1]);
        assert!(out.is_safe(), "violation: {out:?}");
        assert!(!out.truncated, "state space unexpectedly large: {}", out.configs_visited);
        assert_eq!(out.can_always_reach_termination, Some(true));
    }

    #[test]
    fn undersized_counter_range_breaks_consensus() {
        // The safe range for (n=2, drift=1, decide=2) is ±4; clamp it
        // to ±2 and the cursor can wrap from the +barrier to the
        // −barrier under stale moves. Exhaustive exploration finds the
        // violation and its witness replays.
        let p = WalkModel::with_undersized_bound(2, 1, 2, 2);
        let out =
            Explorer::new(ExploreLimits { max_configs: 2_000_000, max_depth: 100_000 })
                .explore(&p, &[0, 1]);
        let w = out.consistency_violation.expect("wrap-around must break agreement");
        let start = randsync_model::Configuration::initial(&p, &[0, 1]);
        let (end, _) = w.replay(&p, &start).unwrap();
        assert!(end.is_inconsistent());
    }

    #[test]
    fn the_safe_range_is_exactly_what_the_paper_describes() {
        // One unit short of decide + n wraps; decide + n does not.
        let safe = WalkModel::with_tight_margins(2, WalkBacking::BoundedCounter);
        assert_eq!(safe.bound(), 2 + 2);
        let out = Explorer::new(ExploreLimits { max_configs: 2_000_000, max_depth: 100_000 })
            .explore(&safe, &[0, 1]);
        assert!(out.is_safe());
        let risky = WalkModel::with_undersized_bound(2, 1, 2, 3);
        let out2 =
            Explorer::new(ExploreLimits { max_configs: 2_000_000, max_depth: 100_000 })
                .explore(&risky, &[0, 1]);
        // ±3 = decide + n − 1: exactly one stale move short. Record the
        // verdict either way; the checker decides, not our intuition.
        let verdict = if out2.is_safe() { "safe" } else { "broken" };
        assert!(
            verdict == "safe" || out2.consistency_violation.is_some(),
            "explorer must give a definite verdict"
        );
    }

    #[test]
    fn deterministic_variant_is_safe_but_not_wait_free() {
        // The FLP-flavoured demonstration: strip the randomness and the
        // protocol stays SAFE (agreement never depended on coin
        // fairness) but acquires non-terminating executions that occur
        // along FIXED schedules — it is no longer (randomized)
        // wait-free, as consensus number 1 demands.
        let p = WalkModel::deterministic_variant(2, WalkBacking::BoundedCounter);
        let out = Explorer::new(ExploreLimits { max_configs: 2_000_000, max_depth: 100_000 })
            .explore(&p, &[0, 1]);
        assert!(!out.truncated);
        assert!(out.is_safe(), "determinism does not hurt safety");
        assert_eq!(
            out.infinite_execution_possible,
            Some(true),
            "an adversary can balance the deterministic walk forever"
        );
        // Every step is deterministic: the explorer saw no branching.
        // (A protocol-wide check: domains reported to the explorer were
        // all 1, which we verify by the state count being comparatively
        // tiny.)
        assert!(out.configs_visited < 100_000);
    }

    #[test]
    fn tight_margin_unanimous_walk_model_checks_valid() {
        let p = WalkModel::with_tight_margins(2, WalkBacking::BoundedCounter);
        for input in [0, 1] {
            let out =
                Explorer::new(ExploreLimits { max_configs: 2_000_000, max_depth: 100_000 })
                    .explore(&p, &[input; 2]);
            assert!(out.is_safe(), "input {input}");
            assert!(!out.truncated);
        }
    }
}
