//! Mutual-exclusion protocols over registers — the problem family the
//! paper's proof technique descends from.
//!
//! "Our proof technique is most closely related to the elegant method
//! introduced by Burns and Lynch to prove a lower bound on the number
//! of read/write registers required for a deterministic solution to the
//! mutual-exclusion problem." Burns–Lynch show n registers are needed
//! for n-process mutex; the signature move — a process about to write
//! is indistinguishable from one that already did, so its writes can be
//! obliterated — is the ancestor of this paper's block writes.
//!
//! This module models one-shot mutual exclusion (each process tries to
//! enter the critical section once, then exits and finishes):
//!
//! * [`PetersonMutex`] — Peterson's classic 2-process algorithm
//!   (2 intent flags + 1 turn register): exhaustively safe;
//! * [`FlagOnlyMutex`] — the textbook *broken* variant without the turn
//!   register ("set my flag, wait until yours is clear"): both safety
//!   and progress fail, and the explorer exhibits both — a deadlock and,
//!   for the impatient variant, a CS collision.
//!
//! Deciding 1 here means "completed the critical section".

use randsync_model::{
    Action, Configuration, Decision, ObjectId, ObjectKind, ObjectSpec, Operation, ProcessId,
    Protocol, Response, Value,
};

/// Peterson's 2-process mutual exclusion: flags + turn.
#[derive(Clone, Debug)]
pub struct PetersonMutex;

/// State of a [`PetersonMutex`] process (the id is baked in: each
/// process owns one flag).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum PetersonState {
    /// About to raise the own intent flag.
    RaiseFlag {
        /// Which process (0 or 1).
        me: usize,
    },
    /// About to yield the turn to the other process.
    SetTurn {
        /// Which process.
        me: usize,
    },
    /// Spinning: about to read the other's flag.
    ReadOtherFlag {
        /// Which process.
        me: usize,
    },
    /// Spinning: about to read the turn register.
    ReadTurn {
        /// Which process.
        me: usize,
        /// The other's flag as last read.
        other_up: bool,
    },
    /// Inside the critical section; the next step lowers the flag.
    InCs {
        /// Which process.
        me: usize,
    },
    /// Finished.
    Done,
}

impl PetersonState {
    /// Whether this process is currently inside the critical section.
    pub fn in_cs(&self) -> bool {
        matches!(self, PetersonState::InCs { .. })
    }
}

const FLAG0: ObjectId = ObjectId(0);
const FLAG1: ObjectId = ObjectId(1);
const TURN: ObjectId = ObjectId(2);

fn flag_of(me: usize) -> ObjectId {
    if me == 0 {
        FLAG0
    } else {
        FLAG1
    }
}

impl Protocol for PetersonMutex {
    type State = PetersonState;

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::with_initial(ObjectKind::Register, Value::Bool(false), "flag0"),
            ObjectSpec::with_initial(ObjectKind::Register, Value::Bool(false), "flag1"),
            ObjectSpec::with_initial(ObjectKind::Register, Value::Int(0), "turn"),
        ]
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn initial_state(&self, pid: ProcessId, _input: Decision) -> PetersonState {
        PetersonState::RaiseFlag { me: pid.index() }
    }

    fn action(&self, s: &PetersonState) -> Action {
        match s {
            PetersonState::RaiseFlag { me } => Action::Invoke {
                object: flag_of(*me),
                op: Operation::Write(Value::Bool(true)),
            },
            PetersonState::SetTurn { me } => Action::Invoke {
                object: TURN,
                op: Operation::Write(Value::Int(1 - *me as i64)),
            },
            PetersonState::ReadOtherFlag { me } => {
                Action::Invoke { object: flag_of(1 - *me), op: Operation::Read }
            }
            PetersonState::ReadTurn { .. } => {
                Action::Invoke { object: TURN, op: Operation::Read }
            }
            PetersonState::InCs { me } => Action::Invoke {
                object: flag_of(*me),
                op: Operation::Write(Value::Bool(false)),
            },
            PetersonState::Done => Action::Decide(1),
        }
    }

    fn transition(&self, s: &PetersonState, resp: &Response, _coin: u32) -> PetersonState {
        match s {
            PetersonState::RaiseFlag { me } => PetersonState::SetTurn { me: *me },
            PetersonState::SetTurn { me } => PetersonState::ReadOtherFlag { me: *me },
            PetersonState::ReadOtherFlag { me } => {
                let other_up = resp.value().and_then(|v| v.as_bool()).unwrap_or(false);
                if other_up {
                    PetersonState::ReadTurn { me: *me, other_up }
                } else {
                    PetersonState::InCs { me: *me }
                }
            }
            PetersonState::ReadTurn { me, .. } => {
                let turn = resp.as_int().unwrap_or(0);
                if turn == 1 - *me as i64 {
                    // It is the other's turn: keep spinning.
                    PetersonState::ReadOtherFlag { me: *me }
                } else {
                    PetersonState::InCs { me: *me }
                }
            }
            PetersonState::InCs { .. } => PetersonState::Done,
            PetersonState::Done => PetersonState::Done,
        }
    }
}

/// The broken flag-only "mutex": raise your flag, spin until the
/// other's flag is down, enter. Without a turn register the two
/// processes can deadlock (both flags up, both spinning), and the
/// *impatient* variant (enter after one observation of the other's
/// flag) collides in the critical section.
#[derive(Clone, Debug)]
pub struct FlagOnlyMutex {
    /// If `true`, a process reads the other's flag only once *before*
    /// raising its own — the classic check-then-act race with a real CS
    /// collision; if `false`, it raises first then spins — safe but
    /// deadlock-prone.
    pub impatient: bool,
}

/// State of a [`FlagOnlyMutex`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FlagState {
    /// (Impatient variant) about to peek at the other's flag before
    /// raising one's own.
    Peek {
        /// Which process.
        me: usize,
    },
    /// About to raise the own flag.
    Raise {
        /// Which process.
        me: usize,
    },
    /// Spinning on the other's flag.
    Spin {
        /// Which process.
        me: usize,
    },
    /// Inside the critical section.
    InCs {
        /// Which process.
        me: usize,
    },
    /// Finished.
    Done,
}

impl FlagState {
    /// Whether this process is currently inside the critical section.
    pub fn in_cs(&self) -> bool {
        matches!(self, FlagState::InCs { .. })
    }
}

impl Protocol for FlagOnlyMutex {
    type State = FlagState;

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::with_initial(ObjectKind::Register, Value::Bool(false), "flag0"),
            ObjectSpec::with_initial(ObjectKind::Register, Value::Bool(false), "flag1"),
        ]
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn initial_state(&self, pid: ProcessId, _input: Decision) -> FlagState {
        if self.impatient {
            FlagState::Peek { me: pid.index() }
        } else {
            FlagState::Raise { me: pid.index() }
        }
    }

    fn action(&self, s: &FlagState) -> Action {
        match s {
            FlagState::Peek { me } | FlagState::Spin { me } => {
                Action::Invoke { object: flag_of(1 - *me), op: Operation::Read }
            }
            FlagState::Raise { me } => Action::Invoke {
                object: flag_of(*me),
                op: Operation::Write(Value::Bool(true)),
            },
            FlagState::InCs { me } => Action::Invoke {
                object: flag_of(*me),
                op: Operation::Write(Value::Bool(false)),
            },
            FlagState::Done => Action::Decide(1),
        }
    }

    fn transition(&self, s: &FlagState, resp: &Response, _coin: u32) -> FlagState {
        let other_up = resp.value().and_then(|v| v.as_bool()).unwrap_or(false);
        match s {
            FlagState::Peek { me } => {
                if other_up {
                    FlagState::Peek { me: *me } // wait for the flag to drop
                } else {
                    FlagState::Raise { me: *me } // check-then-act: racy!
                }
            }
            FlagState::Raise { me } => {
                if self.impatient {
                    FlagState::InCs { me: *me } // already "checked"
                } else {
                    FlagState::Spin { me: *me }
                }
            }
            FlagState::Spin { me } => {
                if other_up {
                    FlagState::Spin { me: *me }
                } else {
                    FlagState::InCs { me: *me }
                }
            }
            FlagState::InCs { .. } => FlagState::Done,
            FlagState::Done => FlagState::Done,
        }
    }
}

/// Peterson **tournament** mutual exclusion for n = 4 processes: a
/// binary tree of 2-process Peterson instances. Each process plays its
/// leaf match, then the final; the winner of both is in the critical
/// section. Burns–Lynch says n-process mutex needs ≥ n registers; the
/// tournament uses 3 per internal node = 9 for n = 4, comfortably
/// above the bound — and the explorer proves it safe.
#[derive(Clone, Debug)]
pub struct TournamentMutex;

/// Which match a process is currently playing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Level {
    /// The semifinal: processes {0,1} play node 1, {2,3} play node 2.
    Leaf,
    /// The final: the two semifinal winners play node 0.
    Root,
}

/// State of a [`TournamentMutex`] process: Peterson phases parameterized
/// by the tournament level.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TournamentState {
    /// About to raise the intent flag at the current level.
    Raise {
        /// Process id (0..4).
        me: usize,
        /// Current match.
        level: Level,
    },
    /// About to yield the turn at the current level.
    Turn {
        /// Process id.
        me: usize,
        /// Current match.
        level: Level,
    },
    /// Spinning: about to read the rival's flag at the current level.
    ReadFlag {
        /// Process id.
        me: usize,
        /// Current match.
        level: Level,
    },
    /// Spinning: about to read the current level's turn register.
    ReadTurn {
        /// Process id.
        me: usize,
        /// Current match.
        level: Level,
    },
    /// Inside the critical section; next steps lower the flags
    /// (root first, then leaf).
    Exit {
        /// Process id.
        me: usize,
        /// Which flag is lowered next.
        level: Level,
    },
    /// Finished.
    Done,
}

impl TournamentState {
    /// Whether the process holds the global critical section (it has
    /// won the final and not yet begun lowering its root flag... i.e.
    /// is at the `Exit/Root` stage).
    pub fn in_cs(&self) -> bool {
        matches!(self, TournamentState::Exit { level: Level::Root, .. })
    }
}

/// Object layout: per node (0 = root, 1 = left leaf, 2 = right leaf)
/// three registers: flagA, flagB, turn.
fn node_of(me: usize, level: Level) -> usize {
    match level {
        Level::Leaf => 1 + me / 2,
        Level::Root => 0,
    }
}

/// Within a node, side 0 or 1 (who is "A").
fn side_of(me: usize, level: Level) -> usize {
    match level {
        Level::Leaf => me % 2,
        Level::Root => me / 2,
    }
}

fn node_flag(node: usize, side: usize) -> ObjectId {
    ObjectId(node * 3 + side)
}

fn node_turn(node: usize) -> ObjectId {
    ObjectId(node * 3 + 2)
}

impl Protocol for TournamentMutex {
    type State = TournamentState;

    fn objects(&self) -> Vec<ObjectSpec> {
        (0..3)
            .flat_map(|node| {
                [
                    ObjectSpec::with_initial(
                        ObjectKind::Register,
                        Value::Bool(false),
                        format!("node{node}.flagA"),
                    ),
                    ObjectSpec::with_initial(
                        ObjectKind::Register,
                        Value::Bool(false),
                        format!("node{node}.flagB"),
                    ),
                    ObjectSpec::with_initial(
                        ObjectKind::Register,
                        Value::Int(0),
                        format!("node{node}.turn"),
                    ),
                ]
            })
            .collect()
    }

    fn num_processes(&self) -> usize {
        4
    }

    fn initial_state(&self, pid: ProcessId, _input: Decision) -> TournamentState {
        TournamentState::Raise { me: pid.index(), level: Level::Leaf }
    }

    fn action(&self, s: &TournamentState) -> Action {
        match s {
            TournamentState::Raise { me, level } => Action::Invoke {
                object: node_flag(node_of(*me, *level), side_of(*me, *level)),
                op: Operation::Write(Value::Bool(true)),
            },
            TournamentState::Turn { me, level } => Action::Invoke {
                object: node_turn(node_of(*me, *level)),
                op: Operation::Write(Value::Int(1 - side_of(*me, *level) as i64)),
            },
            TournamentState::ReadFlag { me, level } => Action::Invoke {
                object: node_flag(node_of(*me, *level), 1 - side_of(*me, *level)),
                op: Operation::Read,
            },
            TournamentState::ReadTurn { me, level } => {
                Action::Invoke { object: node_turn(node_of(*me, *level)), op: Operation::Read }
            }
            TournamentState::Exit { me, level } => Action::Invoke {
                object: node_flag(node_of(*me, *level), side_of(*me, *level)),
                op: Operation::Write(Value::Bool(false)),
            },
            TournamentState::Done => Action::Decide(1),
        }
    }

    fn transition(&self, s: &TournamentState, resp: &Response, _coin: u32) -> TournamentState {
        match s {
            TournamentState::Raise { me, level } => {
                TournamentState::Turn { me: *me, level: *level }
            }
            TournamentState::Turn { me, level } => {
                TournamentState::ReadFlag { me: *me, level: *level }
            }
            TournamentState::ReadFlag { me, level } => {
                let rival_up = resp.value().and_then(|v| v.as_bool()).unwrap_or(false);
                if rival_up {
                    TournamentState::ReadTurn { me: *me, level: *level }
                } else {
                    advance(*me, *level)
                }
            }
            TournamentState::ReadTurn { me, level } => {
                let turn = resp.as_int().unwrap_or(0);
                if turn == 1 - side_of(*me, *level) as i64 {
                    TournamentState::ReadFlag { me: *me, level: *level }
                } else {
                    advance(*me, *level)
                }
            }
            TournamentState::Exit { me, level } => match level {
                // Lower root flag first, then the leaf flag.
                Level::Root => TournamentState::Exit { me: *me, level: Level::Leaf },
                Level::Leaf => TournamentState::Done,
            },
            TournamentState::Done => TournamentState::Done,
        }
    }
}

/// Won the match at `level`: either move up to the final or enter the
/// critical section (from which exit lowers root then leaf flags).
fn advance(me: usize, level: Level) -> TournamentState {
    match level {
        Level::Leaf => TournamentState::Raise { me, level: Level::Root },
        Level::Root => TournamentState::Exit { me, level: Level::Root },
    }
}

/// The CS-collision predicate for [`TournamentMutex`].
pub fn tournament_collision(c: &Configuration<TournamentState>) -> bool {
    let in_cs = c.procs.iter().filter(|p| p.state().is_some_and(|s| s.in_cs())).count();
    in_cs >= 2
}

/// The mutual-exclusion safety predicate: two processes simultaneously
/// inside the critical section.
pub fn peterson_collision(c: &Configuration<PetersonState>) -> bool {
    let in_cs = c.procs.iter().filter(|p| p.state().is_some_and(|s| s.in_cs())).count();
    in_cs >= 2
}

/// The same predicate for [`FlagOnlyMutex`].
pub fn flag_collision(c: &Configuration<FlagState>) -> bool {
    let in_cs = c.procs.iter().filter(|p| p.state().is_some_and(|s| s.in_cs())).count();
    in_cs >= 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_model::{Explorer, ExploreLimits};

    fn explorer() -> Explorer {
        Explorer::new(ExploreLimits { max_configs: 2_000_000, max_depth: 100_000 })
    }

    #[test]
    fn peterson_is_exhaustively_mutually_exclusive() {
        let (violation, truncated) =
            explorer().find_violation(&PetersonMutex, &[0, 0], peterson_collision);
        assert!(!truncated);
        assert!(violation.is_none(), "Peterson admits a CS collision?!");
    }

    #[test]
    fn peterson_is_deadlock_free_for_two() {
        // Every reachable configuration can still reach termination
        // (both processes done) — no deadlock, no livelock trap.
        let out = explorer().explore(&PetersonMutex, &[0, 0]);
        assert!(!out.truncated);
        assert_eq!(out.can_always_reach_termination, Some(true));
    }

    #[test]
    fn impatient_flag_mutex_collides_and_the_witness_replays() {
        let p = FlagOnlyMutex { impatient: true };
        let (violation, _) = explorer().find_violation(&p, &[0, 0], flag_collision);
        let w = violation.expect("check-then-act must collide");
        let start = Configuration::initial(&p, &[0, 0]);
        let (end, _) = w.replay(&p, &start).unwrap();
        assert!(flag_collision(&end));
        // The classic interleaving, minimal: both peek (flags down),
        // then both raise — each raise transitions straight into the
        // critical section — 4 steps.
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn tournament_mutex_is_exhaustively_safe_for_four() {
        let explorer =
            Explorer::new(ExploreLimits { max_configs: 6_000_000, max_depth: 400_000 });
        let (violation, truncated) =
            explorer.find_violation(&TournamentMutex, &[0; 4], tournament_collision);
        assert!(violation.is_none(), "tournament admits a CS collision?!");
        assert!(!truncated, "state space unexpectedly large");
    }

    #[test]
    fn tournament_uses_three_registers_per_node() {
        let objs = TournamentMutex.objects();
        assert_eq!(objs.len(), 9, "3 nodes × (2 flags + turn)");
        // Burns–Lynch: n-process mutex needs ≥ n registers; 9 ≥ 4.
        assert!(objs.len() >= TournamentMutex.num_processes());
    }

    #[test]
    fn tournament_processes_can_all_finish_round_robin() {
        use randsync_model::{RoundRobinScheduler, Simulator};
        let mut sim = Simulator::new(10_000, 0);
        let out = sim
            .run(&TournamentMutex, &[0; 4], &mut RoundRobinScheduler::new())
            .unwrap();
        assert!(out.all_decided, "all four must pass through the CS");
    }

    #[test]
    fn patient_flag_mutex_is_safe_but_can_deadlock() {
        let p = FlagOnlyMutex { impatient: false };
        // Safety holds...
        let (violation, truncated) = explorer().find_violation(&p, &[0, 0], flag_collision);
        assert!(!truncated);
        assert!(violation.is_none(), "raise-then-spin never collides");
        // ...but progress fails: some reachable configuration cannot
        // reach termination (both flags up, both spinning forever).
        let out = explorer().explore(&p, &[0, 0]);
        assert!(!out.truncated);
        assert_eq!(
            out.can_always_reach_termination,
            Some(false),
            "the both-flags-up deadlock must be reachable"
        );
    }
}
