//! The deterministic 2-process protocols as model protocols.

use randsync_model::{
    Action, Decision, ObjectId, ObjectKind, ObjectSpec, Operation, ProcessId, Protocol,
    Response, Value, Symmetry,};

/// 2-process consensus from one swap register (Section 4's "response
/// from one application … different than … the second").
#[derive(Clone, Debug)]
pub struct SwapTwoModel;

/// State of a [`SwapTwoModel`] process.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SwapState {
    /// About to swap in the (encoded) input.
    Swapping(Decision),
    /// Decided.
    Done(Decision),
}

impl Protocol for SwapTwoModel {
    type State = SwapState;

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![ObjectSpec::new(ObjectKind::SwapRegister, "s")]
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn initial_state(&self, _pid: ProcessId, input: Decision) -> SwapState {
        SwapState::Swapping(input)
    }

    fn action(&self, s: &SwapState) -> Action {
        match s {
            SwapState::Swapping(d) => Action::Invoke {
                object: ObjectId(0),
                op: Operation::Swap(Value::Int(*d as i64 + 1)),
            },
            SwapState::Done(d) => Action::Decide(*d),
        }
    }

    fn transition(&self, s: &SwapState, resp: &Response, _coin: u32) -> SwapState {
        match s {
            SwapState::Swapping(d) => match resp.value() {
                Some(Value::Bottom) => SwapState::Done(*d),
                Some(Value::Int(v)) => SwapState::Done(((v - 1).clamp(0, 1)) as Decision),
                _ => SwapState::Done(*d),
            },
            done => done.clone(),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }

    fn symmetry(&self) -> Symmetry {
        Symmetry::Symmetric
    }
}

/// 2-process consensus from one test&set register plus two single-writer
/// input registers.
#[derive(Clone, Debug)]
pub struct TasTwoModel;

/// State of a [`TasTwoModel`] process. The process id is baked into the
/// state (this protocol is *not* symmetric: each process owns a
/// register).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TasState {
    /// About to publish the input in the own register.
    Publish {
        /// Which process this is (0 or 1).
        me: usize,
        /// The input to publish.
        input: Decision,
    },
    /// About to race on the test&set flag.
    Race {
        /// Which process this is.
        me: usize,
        /// The published input.
        input: Decision,
    },
    /// Lost the race; about to read the winner's register.
    ReadOther {
        /// Which process this is.
        me: usize,
    },
    /// Decided.
    Done(Decision),
}

impl Protocol for TasTwoModel {
    type State = TasState;

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::new(ObjectKind::TestAndSet, "flag"),
            ObjectSpec::with_initial(ObjectKind::Register, Value::Bottom, "in0"),
            ObjectSpec::with_initial(ObjectKind::Register, Value::Bottom, "in1"),
        ]
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn initial_state(&self, pid: ProcessId, input: Decision) -> TasState {
        TasState::Publish { me: pid.index(), input }
    }

    fn action(&self, s: &TasState) -> Action {
        match s {
            TasState::Publish { me, input } => Action::Invoke {
                object: ObjectId(1 + me),
                op: Operation::Write(Value::Int(*input as i64)),
            },
            TasState::Race { .. } => {
                Action::Invoke { object: ObjectId(0), op: Operation::TestAndSet }
            }
            TasState::ReadOther { me } => {
                Action::Invoke { object: ObjectId(1 + (1 - me)), op: Operation::Read }
            }
            TasState::Done(d) => Action::Decide(*d),
        }
    }

    fn transition(&self, s: &TasState, resp: &Response, _coin: u32) -> TasState {
        match s {
            TasState::Publish { me, input } => TasState::Race { me: *me, input: *input },
            TasState::Race { me, input } => {
                let lost = resp.value().and_then(|v| v.as_bool()).unwrap_or(false);
                if lost {
                    TasState::ReadOther { me: *me }
                } else {
                    TasState::Done(*input)
                }
            }
            TasState::ReadOther { .. } => {
                TasState::Done(resp.as_int().unwrap_or(0).clamp(0, 1) as Decision)
            }
            done => done.clone(),
        }
    }
}

/// 2-process consensus from one fetch&increment register plus two
/// single-writer input registers.
///
/// Section 4: FETCH&ADD from any starting value answers its first
/// caller differently than its second, so it solves 2-process
/// consensus. Like test&set (and unlike swap) the response carries no
/// payload, so each process publishes its input in its own register
/// before racing; the loser reads the winner's.
#[derive(Clone, Debug)]
pub struct FetchIncTwoModel;

/// State of a [`FetchIncTwoModel`] process. As with [`TasTwoModel`],
/// the process id is baked into the state (each process owns a
/// register), so the protocol is *not* symmetric.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum FetchIncState {
    /// About to publish the input in the own register.
    Publish {
        /// Which process this is (0 or 1).
        me: usize,
        /// The input to publish.
        input: Decision,
    },
    /// About to fetch&increment the ticket.
    Race {
        /// Which process this is.
        me: usize,
        /// The published input.
        input: Decision,
    },
    /// Drew ticket 1; about to read the winner's register.
    ReadOther {
        /// Which process this is.
        me: usize,
    },
    /// Decided.
    Done(Decision),
}

impl Protocol for FetchIncTwoModel {
    type State = FetchIncState;

    fn objects(&self) -> Vec<ObjectSpec> {
        vec![
            ObjectSpec::new(ObjectKind::FetchIncrement, "ticket"),
            ObjectSpec::with_initial(ObjectKind::Register, Value::Bottom, "in0"),
            ObjectSpec::with_initial(ObjectKind::Register, Value::Bottom, "in1"),
        ]
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn initial_state(&self, pid: ProcessId, input: Decision) -> FetchIncState {
        FetchIncState::Publish { me: pid.index(), input }
    }

    fn action(&self, s: &FetchIncState) -> Action {
        match s {
            FetchIncState::Publish { me, input } => Action::Invoke {
                object: ObjectId(1 + me),
                op: Operation::Write(Value::Int(*input as i64)),
            },
            FetchIncState::Race { .. } => {
                Action::Invoke { object: ObjectId(0), op: Operation::FetchAdd(1) }
            }
            FetchIncState::ReadOther { me } => {
                Action::Invoke { object: ObjectId(1 + (1 - me)), op: Operation::Read }
            }
            FetchIncState::Done(d) => Action::Decide(*d),
        }
    }

    fn transition(&self, s: &FetchIncState, resp: &Response, _coin: u32) -> FetchIncState {
        match s {
            FetchIncState::Publish { me, input } => {
                FetchIncState::Race { me: *me, input: *input }
            }
            FetchIncState::Race { me, input } => {
                // Ticket 0 wins; any later ticket loses.
                if resp.as_int() == Some(0) {
                    FetchIncState::Done(*input)
                } else {
                    FetchIncState::ReadOther { me: *me }
                }
            }
            FetchIncState::ReadOther { .. } => {
                FetchIncState::Done(resp.as_int().unwrap_or(0).clamp(0, 1) as Decision)
            }
            done => done.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_model::Explorer;

    #[test]
    fn swap_two_is_model_checked_safe() {
        let p = SwapTwoModel;
        for inputs in [[0, 1], [1, 0], [0, 0], [1, 1]] {
            let out = Explorer::default().explore(&p, &inputs);
            assert!(!out.truncated);
            assert!(out.is_safe(), "inputs {inputs:?}");
            assert_eq!(out.can_always_reach_termination, Some(true));
        }
    }

    #[test]
    fn tas_two_is_model_checked_safe() {
        let p = TasTwoModel;
        for inputs in [[0, 1], [1, 0], [0, 0], [1, 1]] {
            let out = Explorer::default().explore(&p, &inputs);
            assert!(!out.truncated);
            assert!(out.is_safe(), "inputs {inputs:?}");
        }
    }

    #[test]
    fn fetch_inc_two_is_model_checked_safe() {
        let p = FetchIncTwoModel;
        for inputs in [[0, 1], [1, 0], [0, 0], [1, 1]] {
            let out = Explorer::default().explore(&p, &inputs);
            assert!(!out.truncated);
            assert!(out.is_safe(), "inputs {inputs:?}");
            assert_eq!(out.can_always_reach_termination, Some(true));
        }
    }

    #[test]
    fn fetch_inc_model_ticket_is_not_historyless() {
        // fetch&inc keeps count — the paper's Section 4 point is exactly
        // that such non-historyless objects escape the space lower bound.
        let p = FetchIncTwoModel;
        let objs = p.objects();
        assert_eq!(objs.len(), 3);
        assert_eq!(objs[0].kind, ObjectKind::FetchIncrement);
    }

    #[test]
    fn swap_model_uses_one_historyless_object() {
        let p = SwapTwoModel;
        let objs = p.objects();
        assert_eq!(objs.len(), 1);
        assert!(objs[0].kind.is_historyless());
    }

    #[test]
    fn tas_model_uses_three_historyless_objects() {
        let p = TasTwoModel;
        let objs = p.objects();
        assert_eq!(objs.len(), 3);
        assert!(objs.iter().all(|o| o.kind.is_historyless()));
    }
}
