//! The shared protocol registry: one table mapping protocol names to
//! constructors, defaults, paper hooks, and harness capabilities.
//!
//! Before this module existed, the CLI (`randsync check/valency/attack`),
//! the exploration performance harness, and the property suites each
//! hand-maintained their own list of model protocols; adding a protocol
//! meant touching three match statements. The registry is the single
//! source of truth: every consumer iterates [`registry()`] or looks a
//! name up with [`find`].
//!
//! Because the explorer, simulator, runtime, and adversaries are all
//! generic over [`Protocol`], the registry needs one *concrete* type
//! that can hold any of the crate's model protocols: [`AnyProtocol`], an
//! enum that delegates every trait method to the wrapped machine (with
//! [`AnyState`] wrapping the per-protocol states). The dispatch adds an
//! enum tag per step — negligible next to the hash-and-memoize work of
//! exploration — and buys `fn(usize, usize) -> AnyProtocol` constructor
//! pointers, which is what makes a *data-driven* table possible.

use randsync_model::{
    Action, Decision, ObjectSpec, ProcessId, Protocol, Response, Symmetry,
};

use crate::model_protocols::{
    CasModel, FetchIncTwoModel, LocalCoinModel, MixedZigzag, NaiveWriteRead, Optimistic,
    PhaseModel, SwapChain, SwapTwoModel, TasRace, TasTwoModel, WalkBacking, WalkModel, Zigzag,
};
use crate::model_protocols::historyless::{ChainState, MixedState, RaceState};
use crate::model_protocols::naive::{NaiveState, OptState};
use crate::model_protocols::phase_model::PhaseState;
use crate::model_protocols::two_proc::{FetchIncState, SwapState, TasState};
use crate::model_protocols::cas_model::CasState;
use crate::model_protocols::local_coin::LocalCoinState;
use crate::model_protocols::walk_model::WalkState;

macro_rules! any_protocol {
    ($( $variant:ident : $proto:ty , $state:ty ; )+) => {
        /// Any of the crate's model protocols behind one concrete
        /// [`Protocol`] type, so registry entries can expose plain
        /// `fn(n, r) -> AnyProtocol` constructors and every generic
        /// consumer (explorer, simulator, threaded runtime, adversary)
        /// works off the same table.
        #[derive(Clone, Debug)]
        pub enum AnyProtocol {
            $( #[doc = concat!("A [`", stringify!($proto), "`].")] $variant($proto), )+
        }

        /// The per-process state of an [`AnyProtocol`]; each variant
        /// wraps the corresponding protocol's state type.
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
        pub enum AnyState {
            $( #[doc = concat!("State of a [`", stringify!($proto), "`] process.")] $variant($state), )+
        }

        impl Protocol for AnyProtocol {
            type State = AnyState;

            fn objects(&self) -> Vec<ObjectSpec> {
                match self { $( AnyProtocol::$variant(p) => p.objects(), )+ }
            }

            fn num_processes(&self) -> usize {
                match self { $( AnyProtocol::$variant(p) => p.num_processes(), )+ }
            }

            fn initial_state(&self, pid: ProcessId, input: Decision) -> AnyState {
                match self {
                    $( AnyProtocol::$variant(p) => AnyState::$variant(p.initial_state(pid, input)), )+
                }
            }

            fn action(&self, state: &AnyState) -> Action {
                match (self, state) {
                    $( (AnyProtocol::$variant(p), AnyState::$variant(s)) => p.action(s), )+
                    _ => panic!("state does not belong to this protocol"),
                }
            }

            fn coin_domain(&self, state: &AnyState, resp: &Response) -> u32 {
                match (self, state) {
                    $( (AnyProtocol::$variant(p), AnyState::$variant(s)) => p.coin_domain(s, resp), )+
                    _ => panic!("state does not belong to this protocol"),
                }
            }

            fn transition(&self, state: &AnyState, resp: &Response, coin: u32) -> AnyState {
                match (self, state) {
                    $( (AnyProtocol::$variant(p), AnyState::$variant(s)) =>
                        AnyState::$variant(p.transition(s, resp, coin)), )+
                    _ => panic!("state does not belong to this protocol"),
                }
            }

            fn is_symmetric(&self) -> bool {
                match self { $( AnyProtocol::$variant(p) => p.is_symmetric(), )+ }
            }

            fn symmetry(&self) -> Symmetry {
                match self { $( AnyProtocol::$variant(p) => p.symmetry(), )+ }
            }
        }
    };
}

any_protocol! {
    Walk: WalkModel, WalkState;
    Cas: CasModel, CasState;
    SwapTwo: SwapTwoModel, SwapState;
    TasTwo: TasTwoModel, TasState;
    FetchIncTwo: FetchIncTwoModel, FetchIncState;
    Naive: NaiveWriteRead, NaiveState;
    Optimistic: Optimistic, OptState;
    Zigzag: Zigzag, OptState;
    SwapChain: SwapChain, ChainState;
    TasRace: TasRace, RaceState;
    Mixed: MixedZigzag, MixedState;
    Phase: PhaseModel, PhaseState;
    LocalCoin: LocalCoinModel, LocalCoinState;
}

/// Which lower-bound adversary (if any) applies to a protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttackFamily {
    /// The Lemma 3.2 adversary for identical processes over registers
    /// (`randsync_core::attack::attack_identical`).
    RegisterIdentical,
    /// The Lemma 3.6 adversary for historyless non-register objects
    /// (`randsync_core::combine35::attack_historyless`).
    Historyless,
    /// No adversary targets this protocol (it is correct, or uses
    /// objects outside both adversaries' hypotheses).
    NotApplicable,
}

impl AttackFamily {
    /// Stable machine-readable name, used by the job server's
    /// `protocols` and `verify_witness` results and by CLI output.
    pub fn label(self) -> &'static str {
        match self {
            AttackFamily::RegisterIdentical => "register-identical",
            AttackFamily::Historyless => "historyless",
            AttackFamily::NotApplicable => "none",
        }
    }
}

/// One registered protocol: its name, construction, defaults, paper
/// hook, and which harnesses apply to it.
#[derive(Debug)]
pub struct ProtocolEntry {
    /// The CLI/registry name (`randsync check <name>` etc.).
    pub name: &'static str,
    /// The shared objects, for the inventory table.
    pub objects: &'static str,
    /// Where in the paper this protocol lives.
    pub paper: &'static str,
    /// Process count the defaults are tuned for.
    pub default_n: usize,
    /// Default round/repetition parameter (ignored by protocols without
    /// one).
    pub default_r: usize,
    /// The default input vector (length `default_n`).
    pub default_inputs: &'static [u8],
    /// Whether the second `build` argument (rounds/repetitions) matters.
    pub takes_r: bool,
    /// Whether the protocol is *correct* consensus: exploration and
    /// execution must never observe a consistency or validity violation.
    /// `false` marks the deliberately flawed adversary targets.
    pub expected_safe: bool,
    /// Whether the protocol terminates with probability 1 under free
    /// scheduling, making it meaningful to run on real threads. `false`
    /// for machines with adversarial-schedule livelocks (the
    /// deterministic walk variant) or spin states (the phase model),
    /// which only the explorer and simulator should drive.
    pub runnable: bool,
    /// Which lower-bound adversary targets this protocol.
    pub attack: AttackFamily,
    /// Construct the protocol for `n` processes with round parameter
    /// `r`. Fixed-arity protocols (the 2-process separations) ignore
    /// `n`; protocols without a round parameter ignore `r`.
    pub build: fn(n: usize, r: usize) -> AnyProtocol,
}

impl ProtocolEntry {
    /// The protocol at its registered defaults.
    pub fn build_default(&self) -> AnyProtocol {
        (self.build)(self.default_n, self.default_r)
    }
}

/// The input vector used when a caller overrides `n`: alternating
/// `0, 1, 0, …` (both values present for every `n ≥ 2`).
pub fn alternating_inputs(n: usize) -> Vec<u8> {
    (0..n).map(|p| (p % 2) as u8).collect()
}

const ENTRIES: &[ProtocolEntry] = &[
    ProtocolEntry {
        name: "cas",
        objects: "1 compare&swap register",
        paper: "Herlihy [20], via Corollary 4.1",
        default_n: 3,
        default_r: 1,
        default_inputs: &[0, 1, 0],
        takes_r: false,
        expected_safe: true,
        runnable: true,
        attack: AttackFamily::NotApplicable,
        build: |n, _| AnyProtocol::Cas(CasModel::new(n.max(1))),
    },
    ProtocolEntry {
        name: "swap2",
        objects: "1 swap register",
        paper: "Section 4, 2-process separations",
        default_n: 2,
        default_r: 1,
        default_inputs: &[0, 1],
        takes_r: false,
        expected_safe: true,
        runnable: true,
        attack: AttackFamily::NotApplicable,
        build: |_, _| AnyProtocol::SwapTwo(SwapTwoModel),
    },
    ProtocolEntry {
        name: "tas2",
        objects: "1 test&set + 2 registers",
        paper: "Section 4, 2-process separations",
        default_n: 2,
        default_r: 1,
        default_inputs: &[0, 1],
        takes_r: false,
        expected_safe: true,
        runnable: true,
        attack: AttackFamily::NotApplicable,
        build: |_, _| AnyProtocol::TasTwo(TasTwoModel),
    },
    ProtocolEntry {
        name: "fetchinc2",
        objects: "1 fetch&increment + 2 registers",
        paper: "Section 4, 2-process separations",
        default_n: 2,
        default_r: 1,
        default_inputs: &[0, 1],
        takes_r: false,
        expected_safe: true,
        runnable: true,
        attack: AttackFamily::NotApplicable,
        build: |_, _| AnyProtocol::FetchIncTwo(FetchIncTwoModel),
    },
    ProtocolEntry {
        name: "walk-counter",
        objects: "1 bounded counter",
        paper: "Theorem 4.2 (Aspnes), tight margins",
        default_n: 2,
        default_r: 1,
        default_inputs: &[0, 1],
        takes_r: false,
        expected_safe: true,
        runnable: true,
        attack: AttackFamily::NotApplicable,
        build: |n, _| {
            AnyProtocol::Walk(WalkModel::with_tight_margins(n.max(1), WalkBacking::BoundedCounter))
        },
    },
    ProtocolEntry {
        name: "walk-fetchadd",
        objects: "1 fetch&add register",
        paper: "Theorem 4.4, tight margins",
        default_n: 2,
        default_r: 1,
        default_inputs: &[0, 1],
        takes_r: false,
        expected_safe: true,
        runnable: true,
        attack: AttackFamily::NotApplicable,
        build: |n, _| {
            AnyProtocol::Walk(WalkModel::with_tight_margins(n.max(1), WalkBacking::FetchAdd))
        },
    },
    ProtocolEntry {
        name: "walk-default",
        objects: "1 bounded counter (range ±3n)",
        paper: "Theorem 4.2, the paper's margins",
        default_n: 3,
        default_r: 1,
        default_inputs: &[0, 1, 0],
        takes_r: false,
        expected_safe: true,
        runnable: true,
        attack: AttackFamily::NotApplicable,
        build: |n, _| {
            AnyProtocol::Walk(WalkModel::with_default_margins(
                n.max(1),
                WalkBacking::BoundedCounter,
            ))
        },
    },
    ProtocolEntry {
        name: "walk-deterministic",
        objects: "1 bounded counter",
        paper: "consensus number 1 (FLP-style demonstration)",
        default_n: 2,
        default_r: 1,
        default_inputs: &[0, 1],
        takes_r: false,
        expected_safe: true,
        // Safe, but an adversarial schedule balances the walk forever —
        // real threads are not guaranteed to terminate.
        runnable: false,
        attack: AttackFamily::NotApplicable,
        build: |n, _| {
            AnyProtocol::Walk(WalkModel::deterministic_variant(
                n.max(1),
                WalkBacking::BoundedCounter,
            ))
        },
    },
    ProtocolEntry {
        name: "naive",
        objects: "n single-writer registers",
        paper: "Section 3 warm-up (broken by Lemma 3.2)",
        default_n: 2,
        default_r: 1,
        default_inputs: &[0, 1],
        takes_r: false,
        expected_safe: false,
        runnable: true,
        attack: AttackFamily::RegisterIdentical,
        build: |n, _| AnyProtocol::Naive(NaiveWriteRead::new(n.max(1))),
    },
    ProtocolEntry {
        name: "optimistic",
        objects: "n single-writer registers",
        paper: "Section 3 warm-up (broken by Lemma 3.2)",
        default_n: 2,
        default_r: 2,
        default_inputs: &[0, 1],
        takes_r: true,
        expected_safe: false,
        runnable: true,
        attack: AttackFamily::RegisterIdentical,
        build: |n, r| AnyProtocol::Optimistic(Optimistic::new(n.max(1), r.max(1))),
    },
    ProtocolEntry {
        name: "zigzag",
        objects: "n single-writer registers",
        paper: "Section 3 warm-up (broken by Lemma 3.2, Figure 4 case)",
        default_n: 2,
        default_r: 2,
        default_inputs: &[0, 1],
        takes_r: true,
        expected_safe: false,
        runnable: true,
        attack: AttackFamily::RegisterIdentical,
        build: |n, r| AnyProtocol::Zigzag(Zigzag::new(n.max(1), r.max(1))),
    },
    ProtocolEntry {
        name: "swapchain",
        objects: "1 swap register (3 processes)",
        paper: "Lemma 3.6 target (historyless, non-register)",
        default_n: 3,
        default_r: 1,
        default_inputs: &[0, 1, 1],
        takes_r: false,
        expected_safe: false,
        runnable: true,
        attack: AttackFamily::Historyless,
        build: |n, _| AnyProtocol::SwapChain(SwapChain::new(n.max(1))),
    },
    ProtocolEntry {
        name: "tasrace",
        objects: "1 test&set flag",
        paper: "Lemma 3.6 target (historyless, non-register)",
        default_n: 2,
        default_r: 1,
        default_inputs: &[0, 1],
        takes_r: false,
        expected_safe: false,
        runnable: true,
        attack: AttackFamily::Historyless,
        build: |n, _| AnyProtocol::TasRace(TasRace::new(n.max(1))),
    },
    ProtocolEntry {
        name: "mixedzigzag",
        objects: "2 registers + 1 swap + 1 test&set",
        paper: "Lemma 3.6 target (mixed historyless objects)",
        default_n: 2,
        default_r: 1,
        default_inputs: &[0, 1],
        takes_r: false,
        expected_safe: false,
        runnable: true,
        attack: AttackFamily::Historyless,
        build: |n, _| AnyProtocol::Mixed(MixedZigzag::new(n.max(1))),
    },
    ProtocolEntry {
        name: "localcoin",
        objects: "n private bounded counters + 1 compare&swap",
        paper: "private mixing before Herlihy's CAS (Section 4 flavor)",
        default_n: 2,
        default_r: 4,
        default_inputs: &[0, 1],
        takes_r: true,
        expected_safe: true,
        runnable: true,
        attack: AttackFamily::NotApplicable,
        build: |n, r| AnyProtocol::LocalCoin(LocalCoinModel::new(n.max(1), r.max(1) as u32)),
    },
    ProtocolEntry {
        name: "phase",
        objects: "per-round registers + counters",
        paper: "phase-structured randomized consensus (Section 4 flavor)",
        default_n: 2,
        default_r: 2,
        default_inputs: &[0, 1],
        takes_r: true,
        expected_safe: true,
        // The model has a Parked spin state: a process can loop on an
        // unchanged read, so free-running threads may livelock.
        runnable: false,
        attack: AttackFamily::NotApplicable,
        build: |n, r| AnyProtocol::Phase(PhaseModel::new(n.max(1), r.max(1))),
    },
];

/// Every registered protocol, in display order.
pub fn registry() -> &'static [ProtocolEntry] {
    ENTRIES
}

/// Look a protocol up by its registry name.
pub fn find(name: &str) -> Option<&'static ProtocolEntry> {
    ENTRIES.iter().find(|e| e.name == name)
}

/// The entries a lower-bound adversary targets — the deliberately
/// flawed protocols whose counterexamples the verification gate's
/// witness corpus regression-tests. Every entry here has an
/// [`AttackFamily`] other than `NotApplicable`.
pub fn adversary_targets() -> impl Iterator<Item = &'static ProtocolEntry> {
    ENTRIES.iter().filter(|e| e.attack != AttackFamily::NotApplicable)
}

/// The protocol inventory as a Markdown table (the source of the
/// README/crate-docs inventory).
pub fn markdown_table() -> String {
    let mut out = String::from(
        "| Protocol | Objects | Paper hook | Correct? | Threads? |\n|---|---|---|---|---|\n",
    );
    for e in ENTRIES {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} |\n",
            e.name,
            e.objects,
            e.paper,
            if e.expected_safe { "yes" } else { "**flawed**" },
            if e.runnable { "yes" } else { "model-only" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use randsync_model::{ExploreLimits, Explorer, RandomScheduler, Simulator};

    #[test]
    fn names_are_unique_and_findable() {
        for e in registry() {
            let found = find(e.name).expect("every entry resolves by name");
            assert!(std::ptr::eq(found, e));
        }
        let names: std::collections::HashSet<_> = registry().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), registry().len(), "duplicate registry names");
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn defaults_are_coherent() {
        for e in registry() {
            assert_eq!(
                e.default_inputs.len(),
                e.default_n,
                "{}: default inputs must cover default_n",
                e.name
            );
            let p = e.build_default();
            assert_eq!(p.num_processes(), e.default_n, "{}: arity mismatch", e.name);
            assert!(!p.objects().is_empty(), "{}: protocols use shared objects", e.name);
        }
    }

    #[test]
    fn any_protocol_delegates_faithfully() {
        // Spot-check the enum dispatch against the wrapped protocol.
        let direct = CasModel::new(2);
        let wrapped = AnyProtocol::Cas(CasModel::new(2));
        assert_eq!(wrapped.num_processes(), direct.num_processes());
        assert_eq!(wrapped.objects(), direct.objects());
        assert_eq!(wrapped.symmetry(), direct.symmetry());
        let s0 = wrapped.initial_state(ProcessId(0), 1);
        let d0 = direct.initial_state(ProcessId(0), 1);
        assert_eq!(wrapped.action(&s0), direct.action(&d0));
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn foreign_states_are_rejected() {
        let cas = AnyProtocol::Cas(CasModel::new(2));
        let swap = AnyProtocol::SwapTwo(SwapTwoModel);
        let s = swap.initial_state(ProcessId(0), 0);
        let _ = cas.action(&s);
    }

    #[test]
    fn expected_safe_entries_simulate_clean() {
        for e in registry() {
            let p = e.build_default();
            let mut sim = Simulator::new(2_000_000, 7);
            let mut sched = RandomScheduler::new(11);
            let out = sim.run(&p, e.default_inputs, &mut sched).expect("simulation runs");
            if e.expected_safe && out.all_decided {
                let vals = out.decided_values();
                assert_eq!(vals.len(), 1, "{}: inconsistent decisions", e.name);
                assert!(e.default_inputs.contains(&vals[0]), "{}: invalid decision", e.name);
            }
        }
    }

    #[test]
    fn flawed_entries_are_actually_broken_and_safe_entries_check_out() {
        // The registry's `expected_safe` claims are enforced by the
        // explorer on the cheap entries (2-process defaults).
        let limits = ExploreLimits { max_configs: 500_000, max_depth: 50_000 };
        for e in registry() {
            if e.default_n > 2 {
                continue;
            }
            let out = Explorer::new(limits).explore(&e.build_default(), e.default_inputs);
            if out.truncated {
                continue;
            }
            assert_eq!(
                out.is_safe(),
                e.expected_safe,
                "{}: registry safety claim contradicts the model checker",
                e.name
            );
        }
    }

    #[test]
    fn markdown_table_lists_every_protocol() {
        let table = markdown_table();
        for e in registry() {
            assert!(table.contains(e.name), "inventory missing {}", e.name);
        }
    }
}
