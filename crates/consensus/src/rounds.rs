//! Round-based randomized consensus from read–write registers
//! (Aspnes–Herlihy \[9\] architecture, with Ben-Or-style propose/ratify
//! phases).
//!
//! This is the register-protocol family behind the O(n) upper bound the
//! paper's lower bound is contrasted with: asynchronous rounds driven
//! by a **weak shared coin**, as in Aspnes–Herlihy's "Fast Randomized
//! Consensus Using Shared Memory". We use the propose/ratify phase
//! structure (Ben-Or's rounds, in shared memory) because its agreement
//! argument is airtight with plain write-once flag registers:
//!
//! Round r uses five flags — `prop[r][v]` for v ∈ {0,1} and
//! `vote[r][w]` for w ∈ {0, 1, ⊥}:
//!
//! 1. **propose**: set `prop[r][prefer]`; read both proposal flags.
//!    If only one value is proposed, *vote* for it; otherwise vote ⊥.
//! 2. **ratify**: set `vote[r][my vote]`; read all three vote flags.
//!    * Both 0- and 1-votes can never coexist: a v-vote requires having
//!      seen *only* v proposed, and proposal flags are persistent — the
//!      later voter would have seen both values. So at most one real
//!      value appears among the round's votes.
//!    * If exactly value v is voted (no ⊥): **decide v** — any process
//!      that reads this round's votes later still sees the persistent
//!      v-flag and therefore adopts v.
//!    * If v is voted alongside ⊥: adopt v as the new preference.
//!    * If only ⊥ is voted: take the round's **shared coin**.
//!
//! Validity: with unanimous inputs every proposal and vote is that
//! input, and everyone decides in round 1 — no coin is ever consumed.
//! Termination: each round the weak shared coin gives all flippers the
//! same value with constant probability (and it matches any v-vote with
//! probability ≥ 1/2 of that), so the expected number of rounds is
//! O(1).
//!
//! **Space accounting**: 5 flag registers per round plus an n-register
//! snapshot-counter coin per round, with `max_rounds` rounds
//! preallocated; past them the protocol falls back to local coins
//! (correctness is unaffected — only the expected round count would
//! degrade, and the probability of ever getting there is
//! `(1 − δ)^max_rounds`). [`AhConsensus::object_count`] reports the
//! true allocation; the journal version of \[9\] recycles this space to
//! reach O(n) total.

use std::sync::atomic::{AtomicBool, AtomicPtr, Ordering};

use randsync_objects::SnapshotCounter;

use crate::coin::WalkCoin;
use crate::spec::Consensus;

const ORD: Ordering = Ordering::SeqCst;

/// One round's shared state: proposal flags, vote flags, and the coin.
#[derive(Debug)]
struct Round {
    prop: [AtomicBool; 2],
    /// Votes for 0, 1, and ⊥ (index 2).
    vote: [AtomicBool; 3],
    coin: WalkCoin<SnapshotCounter>,
}

impl Round {
    fn new(n: usize, seed: u64) -> Self {
        Round {
            prop: [AtomicBool::new(false), AtomicBool::new(false)],
            vote: [AtomicBool::new(false), AtomicBool::new(false), AtomicBool::new(false)],
            coin: WalkCoin::new(SnapshotCounter::new(n), n, 4, seed),
        }
    }
}

/// Round-based randomized consensus from read–write registers.
///
/// Rounds are allocated lazily through a lock-free bank of
/// compare-and-swap-installed slots, so the protocol has (practically)
/// unbounded rounds without locks: a looser bound than the paper-cited
/// O(n) recycling construction, but honest about where the space goes
/// (see [`AhConsensus::object_count`]).
#[derive(Debug)]
pub struct AhConsensus {
    n: usize,
    slots: Vec<AtomicPtr<Round>>,
    seed: u64,
}

impl AhConsensus {
    /// An instance for `n` processes with headroom for `max_rounds`
    /// lazily allocated rounds (the expected round count is O(1); the
    /// probability of needing even 50 rounds is astronomically small).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max_rounds == 0`.
    pub fn new(n: usize, max_rounds: usize, seed: u64) -> Self {
        assert!(n > 0, "consensus needs at least one process");
        assert!(max_rounds > 0, "at least one round is required");
        AhConsensus {
            n,
            slots: (0..max_rounds).map(|_| AtomicPtr::new(std::ptr::null_mut())).collect(),
            seed,
        }
    }

    /// A default-sized instance with headroom for 2048 rounds.
    pub fn with_defaults(n: usize, seed: u64) -> Self {
        Self::new(n, 2048, seed)
    }

    /// Get round `r`, allocating it lock-free on first access.
    ///
    /// # Panics
    ///
    /// Panics if `r` exceeds the round headroom — which happens with
    /// probability at most `(1 − δ)^max_rounds` (δ the shared coin's
    /// agreement parameter); failing loudly is preferable to silent
    /// livelock.
    fn round(&self, r: usize) -> &Round {
        let slot = self
            .slots
            .get(r)
            .unwrap_or_else(|| panic!("round headroom ({}) exhausted", self.slots.len()));
        let mut ptr = slot.load(ORD);
        if ptr.is_null() {
            let fresh = Box::into_raw(Box::new(Round::new(
                self.n,
                self.seed ^ (r as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
            )));
            match slot.compare_exchange(std::ptr::null_mut(), fresh, ORD, ORD) {
                Ok(_) => ptr = fresh,
                Err(winner) => {
                    // Another process installed the round first.
                    // SAFETY: `fresh` was never shared.
                    drop(unsafe { Box::from_raw(fresh) });
                    ptr = winner;
                }
            }
        }
        // SAFETY: installed pointers are never replaced or freed until
        // drop, and `&self` outlives the returned reference.
        unsafe { &*ptr }
    }

    /// Number of rounds allocated so far.
    pub fn rounds_allocated(&self) -> usize {
        self.slots.iter().filter(|s| !s.load(ORD).is_null()).count()
    }
}

impl Drop for AhConsensus {
    fn drop(&mut self) {
        for slot in &self.slots {
            let ptr = slot.load(ORD);
            if !ptr.is_null() {
                // SAFETY: exclusive access in drop; each pointer was
                // created by Box::into_raw exactly once.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

impl Consensus for AhConsensus {
    fn decide(&self, process: usize, input: u8) -> u8 {
        assert!(process < self.n, "process index out of range");
        assert!(input <= 1, "binary consensus inputs are 0 or 1");
        let mut prefer = input;
        let mut r = 0usize;
        loop {
            let round = self.round(r);
            // Phase 1: propose, then read the proposal flags.
            round.prop[prefer as usize].store(true, ORD);
            let p0 = round.prop[0].load(ORD);
            let p1 = round.prop[1].load(ORD);
            let my_vote: usize = match (p0, p1) {
                (true, false) => 0,
                (false, true) => 1,
                // Both proposed (or — impossible — neither): ⊥.
                _ => 2,
            };

            // Phase 2: ratify, then read the vote flags.
            round.vote[my_vote].store(true, ORD);
            let v0 = round.vote[0].load(ORD);
            let v1 = round.vote[1].load(ORD);
            let vbot = round.vote[2].load(ORD);
            debug_assert!(
                !(v0 && v1),
                "both values ratified in one round: proposal flags are \
                 persistent, so this cannot happen"
            );
            match (v0, v1, vbot) {
                (true, false, false) => return 0,
                (false, true, false) => return 1,
                (true, _, true) => prefer = 0,
                (_, true, true) => prefer = 1,
                // Only ⊥ (or nothing but our own ⊥): shared coin.
                _ => prefer = round.coin.flip(process).value,
            }
            r += 1;
        }
    }

    fn num_processes(&self) -> usize {
        self.n
    }

    fn object_count(&self) -> usize {
        // Per allocated round: 5 flag registers + n coin registers.
        self.rounds_allocated().max(1) * (5 + self.n)
    }

    fn name(&self) -> &'static str {
        "Aspnes-Herlihy rounds (registers)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{decide_concurrently, run_trials};

    #[test]
    fn solo_decision_is_immediate_and_own_input() {
        for input in [0, 1] {
            let c = AhConsensus::with_defaults(3, 7);
            assert_eq!(c.decide(0, input), input);
        }
    }

    #[test]
    fn unanimous_inputs_decide_that_input() {
        for input in [0u8, 1] {
            for seed in 0..5 {
                let c = AhConsensus::with_defaults(4, seed);
                let ds = decide_concurrently(&c, &[input; 4]);
                assert!(ds.iter().all(|&d| d == input), "validity: {ds:?}");
            }
        }
    }

    #[test]
    fn mixed_inputs_agree_across_many_seeds() {
        let stats = run_trials(
            150,
            |t| AhConsensus::with_defaults(4, t as u64 * 37 + 11),
            |t| (0..4).map(|p| ((p + t) % 2) as u8).collect(),
        );
        assert!(stats.all_correct(), "{stats}");
        assert!(stats.decided_one > 0 && stats.decided_one < stats.trials, "{stats}");
    }

    #[test]
    fn larger_instances_agree() {
        let stats = run_trials(
            40,
            |t| AhConsensus::with_defaults(8, t as u64 ^ 0xBEEF),
            |t| (0..8).map(|p| ((p * 5 + t) % 2) as u8).collect(),
        );
        assert!(stats.all_correct(), "{stats}");
    }

    #[test]
    fn object_count_reports_flags_plus_coins_per_allocated_round() {
        let c = AhConsensus::new(5, 8, 0);
        assert_eq!(c.rounds_allocated(), 0, "rounds are lazy");
        assert_eq!(c.object_count(), 5 + 5, "at least one round's worth");
        let _ = c.decide(0, 1);
        assert_eq!(c.rounds_allocated(), 1, "a solo run needs one round");
        assert_eq!(c.object_count(), 5 + 5);
        assert!(c.name().contains("Aspnes"));
    }

    #[test]
    fn staggered_latecomers_adopt_the_decision() {
        for seed in 0..20 {
            let c = AhConsensus::with_defaults(5, seed);
            // Three decide concurrently; two stragglers with the
            // opposite input arrive afterwards and must agree.
            let cref = &c;
            let early: Vec<u8> = std::thread::scope(|s| {
                let hs: Vec<_> = [(0usize, 0u8), (1, 1), (2, 0)]
                    .into_iter()
                    .map(|(p, input)| s.spawn(move || cref.decide(p, input)))
                    .collect();
                hs.into_iter().map(|h| h.join().unwrap()).collect()
            });
            let d = early[0];
            assert!(early.iter().all(|&x| x == d), "seed {seed}: {early:?}");
            assert_eq!(c.decide(3, 1 - d), d, "seed {seed}: straggler flipped");
            assert_eq!(c.decide(4, 1 - d), d, "seed {seed}: straggler flipped");
        }
    }

    #[test]
    fn small_round_banks_still_terminate_and_agree() {
        // A modest headroom exercises multi-round paths and lazy
        // allocation under contention.
        let stats = run_trials(
            60,
            |t| AhConsensus::new(3, 64, t as u64 * 101 + 3),
            |t| (0..3).map(|p| ((p + t) % 2) as u8).collect(),
        );
        assert!(stats.all_correct(), "{stats}");
    }

    #[test]
    fn lazy_allocation_is_race_safe() {
        // Many threads hammer the same instance; the CAS-install path
        // must not leak or double-free (exercised under the test
        // allocator by sheer repetition).
        for seed in 0..30 {
            let c = AhConsensus::with_defaults(6, seed);
            let ds = decide_concurrently(&c, &[0, 1, 0, 1, 0, 1]);
            assert!(ds.windows(2).all(|w| w[0] == w[1]), "seed {seed}");
            assert!(c.rounds_allocated() >= 1);
        }
    }
}
