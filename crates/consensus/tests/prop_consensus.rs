//! Property tests: consensus correctness over randomized seeds, inputs
//! and schedules — threaded and simulated.

use proptest::prelude::*;
use randsync_consensus::model_protocols::{WalkBacking, WalkModel};
use randsync_consensus::spec::decide_concurrently;
use randsync_consensus::{CasConsensus, SwapTwoConsensus, WalkConsensus};
use randsync_model::{RandomScheduler, Simulator};
use randsync_objects::FetchAddRegister;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// The threaded counter walk is consistent and valid for every
    /// seed/input combination.
    #[test]
    fn threaded_counter_walk_is_correct(
        n in 2usize..6,
        seed in any::<u64>(),
        input_bits in any::<u16>(),
    ) {
        let inputs: Vec<u8> = (0..n).map(|p| ((input_bits >> p) & 1) as u8).collect();
        let proto = WalkConsensus::with_bounded_counter(n, seed);
        let ds = decide_concurrently(&proto, &inputs);
        let d = ds[0];
        prop_assert!(ds.iter().all(|&x| x == d), "inconsistent: {ds:?}");
        prop_assert!(inputs.contains(&d), "invalid: {d} not in {inputs:?}");
    }

    /// Same for the fetch&add instantiation (Theorem 4.4).
    #[test]
    fn threaded_fetch_add_walk_is_correct(
        n in 2usize..6,
        seed in any::<u64>(),
        input_bits in any::<u16>(),
    ) {
        let inputs: Vec<u8> = (0..n).map(|p| ((input_bits >> p) & 1) as u8).collect();
        let proto = WalkConsensus::with_fetch_add(FetchAddRegister::new(0), n, seed);
        let ds = decide_concurrently(&proto, &inputs);
        let d = ds[0];
        prop_assert!(ds.iter().all(|&x| x == d));
        prop_assert!(inputs.contains(&d));
    }

    /// CAS consensus under arbitrary thread interleavings.
    #[test]
    fn threaded_cas_is_correct(n in 2usize..9, input_bits in any::<u16>()) {
        let inputs: Vec<u8> = (0..n).map(|p| ((input_bits >> p) & 1) as u8).collect();
        let proto = CasConsensus::new(n);
        let ds = decide_concurrently(&proto, &inputs);
        let d = ds[0];
        prop_assert!(ds.iter().all(|&x| x == d));
        prop_assert!(inputs.contains(&d));
    }

    /// Two-process swap consensus under arbitrary interleavings.
    #[test]
    fn threaded_swap2_is_correct(a in 0u8..2, b in 0u8..2) {
        let proto = SwapTwoConsensus::new();
        let ds = decide_concurrently(&proto, &[a, b]);
        prop_assert_eq!(ds[0], ds[1]);
        prop_assert!([a, b].contains(&ds[0]));
    }

    /// The model walk, simulated under arbitrary random schedules with
    /// arbitrary coin seeds, terminates consistently and validly —
    /// randomized wait-freedom observed end to end.
    #[test]
    fn simulated_walk_is_correct_under_random_adversaries(
        n in 2usize..5,
        coin_seed in any::<u64>(),
        sched_seed in any::<u64>(),
        input_bits in any::<u8>(),
        backing_fa in any::<bool>(),
    ) {
        let backing =
            if backing_fa { WalkBacking::FetchAdd } else { WalkBacking::BoundedCounter };
        let p = WalkModel::with_default_margins(n, backing);
        let inputs: Vec<u8> = (0..n).map(|i| (input_bits >> i) & 1).collect();
        let mut sim = Simulator::new(2_000_000, coin_seed);
        let mut sched = RandomScheduler::new(sched_seed);
        let out = sim.run(&p, &inputs, &mut sched).unwrap();
        prop_assert!(out.all_decided, "did not terminate within budget");
        let vals = out.decided_values();
        prop_assert_eq!(vals.len(), 1, "inconsistent: {:?}", vals);
        prop_assert!(inputs.contains(&vals[0]), "invalid");
    }

    /// Unanimity is decided deterministically — no coin is consumed —
    /// for every seed and schedule (the validity mechanism of the walk).
    #[test]
    fn simulated_walk_unanimity_never_flips_coins(
        n in 2usize..5,
        input in 0u8..2,
        coin_seed in any::<u64>(),
        sched_seed in any::<u64>(),
    ) {
        let p = WalkModel::with_default_margins(n, WalkBacking::BoundedCounter);
        let inputs = vec![input; n];
        let mut sim = Simulator::new(1_000_000, coin_seed);
        let mut sched = RandomScheduler::new(sched_seed);
        let out = sim.run(&p, &inputs, &mut sched).unwrap();
        prop_assert!(out.all_decided);
        prop_assert_eq!(out.decided_values(), vec![input]);
        prop_assert!(out.records.iter().all(|r| r.coin == 0));
    }
}
