//! Equivalence properties for the parallel exploration engine.
//!
//! The engine promises results identical to a sequential BFS for every
//! thread and shard count. These tests hold it to that promise against
//! an independent **retained sequential reference**: a verbatim
//! re-implementation of the pre-parallel `Explorer::explore_from` loop
//! (`Configuration`-keyed `HashMap`, `VecDeque` queue, clone-per-probe)
//! built on the public [`successors`] enumeration. For random protocols,
//! inputs, and budgets, the engine at `threads = 1` and `threads = 4`
//! (and across shard counts) must agree with the reference on
//! `configs_visited`, `terminal_configs`, `is_safe()`, truncation, and
//! the depth of each violation witness.

use std::collections::{HashMap, VecDeque};

use proptest::prelude::*;
use randsync_consensus::model_protocols::{
    NaiveWriteRead, Optimistic, PhaseModel, SwapTwoModel, TasTwoModel,
};
use randsync_model::explore::successors;
use randsync_model::{Configuration, ExploreConfig, ExploreLimits, Explorer, Protocol};

/// What the reference BFS observes; the subset of `ExploreOutcome` the
/// engine must reproduce exactly.
#[derive(Clone, PartialEq, Eq, Debug)]
struct RefOutcome {
    consistency_depth: Option<usize>,
    validity_depth: Option<usize>,
    configs_visited: usize,
    terminal_configs: usize,
    truncated: bool,
}

/// The pre-parallel sequential exploration, kept as the oracle: plain
/// queue-order BFS, configurations cloned into a `HashMap` for dedup,
/// one full clone per enumerated successor.
fn reference_explore<P>(protocol: &P, inputs: &[u8], limits: ExploreLimits) -> RefOutcome
where
    P: Protocol,
{
    let start = Configuration::initial(protocol, inputs);
    let mut nodes = vec![start.clone()];
    let mut depth = vec![0usize];
    let mut index: HashMap<Configuration<P::State>, usize> = HashMap::new();
    index.insert(start, 0);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);

    let mut consistency_depth = None;
    let mut validity_depth = None;
    let mut truncated = false;
    let mut terminal_configs = 0usize;

    while let Some(i) = queue.pop_front() {
        let config = nodes[i].clone();
        if config.is_inconsistent() && consistency_depth.is_none() {
            consistency_depth = Some(depth[i]);
        }
        if validity_depth.is_none()
            && config.decided_values().iter().any(|d| !inputs.contains(d))
        {
            validity_depth = Some(depth[i]);
        }
        let active = config.active_processes();
        if active.is_empty() {
            terminal_configs += 1;
            continue;
        }
        if depth[i] >= limits.max_depth {
            truncated = true;
            continue;
        }
        for pid in active {
            for (_step, next) in successors(protocol, &config, pid) {
                if index.contains_key(&next) {
                    continue;
                }
                if nodes.len() >= limits.max_configs {
                    truncated = true;
                    continue;
                }
                let j = nodes.len();
                nodes.push(next.clone());
                depth.push(depth[i] + 1);
                index.insert(next, j);
                queue.push_back(j);
            }
        }
    }

    RefOutcome {
        consistency_depth,
        validity_depth,
        configs_visited: nodes.len(),
        terminal_configs,
        truncated,
    }
}

/// Run the engine under the given parallel shape and project onto the
/// reference's observables.
fn engine_explore<P>(
    protocol: &P,
    inputs: &[u8],
    limits: ExploreLimits,
    threads: usize,
    shards: usize,
) -> RefOutcome
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let out = Explorer::with_config(ExploreConfig { limits, threads, shards, ..ExploreConfig::default() })
        .explore(protocol, inputs);
    RefOutcome {
        consistency_depth: out.consistency_violation.as_ref().map(|w| w.len()),
        validity_depth: out.validity_violation.as_ref().map(|w| w.len()),
        configs_visited: out.configs_visited,
        terminal_configs: out.terminal_configs,
        truncated: out.truncated,
    }
}

/// Engine (at several parallel shapes) versus reference.
fn check_against_reference<P>(
    protocol: &P,
    inputs: &[u8],
    limits: ExploreLimits,
) -> Result<(), TestCaseError>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let oracle = reference_explore(protocol, inputs, limits);
    for (threads, shards) in [(1, 1), (1, 0), (4, 1), (4, 128)] {
        let got = engine_explore(protocol, inputs, limits, threads, shards);
        prop_assert_eq!(
            &oracle,
            &got,
            "threads={} shards={} inputs={:?} limits={:?}",
            threads,
            shards,
            inputs,
            limits
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The broken naive write/read protocol: violations (and their
    /// shortest-witness depth) must agree everywhere.
    #[test]
    fn naive_engine_matches_reference(
        n in 2usize..=3,
        bits in prop::collection::vec(0u8..=1, 3),
        cap in prop_oneof![Just(usize::MAX), Just(400usize), Just(50usize)],
    ) {
        let inputs = &bits[..n];
        let limits = ExploreLimits { max_configs: cap, max_depth: 10_000 };
        check_against_reference(&NaiveWriteRead::new(n), inputs, limits)?;
    }

    /// Correct two-process protocols (swap- and test&set-based): the
    /// engine must agree they are safe and on every count.
    #[test]
    fn two_proc_engine_matches_reference(
        a in 0u8..=1,
        b in 0u8..=1,
        depth_cap in prop_oneof![Just(10_000usize), Just(4usize)],
    ) {
        let limits = ExploreLimits { max_configs: 100_000, max_depth: depth_cap };
        check_against_reference(&SwapTwoModel, &[a, b], limits)?;
        check_against_reference(&TasTwoModel, &[a, b], limits)?;
    }

    /// The randomized phase protocol: coin branching plus truncation.
    #[test]
    fn phase_model_engine_matches_reference(
        a in 0u8..=1,
        b in 0u8..=1,
        rounds in 1usize..=2,
        cap in prop_oneof![Just(usize::MAX), Just(2_000usize)],
    ) {
        let limits = ExploreLimits { max_configs: cap, max_depth: 10_000 };
        check_against_reference(&PhaseModel::new(2, rounds), &[a, b], limits)?;
    }

    /// Valency analysis rides the same engine; it must be invariant
    /// under the parallel shape too.
    #[test]
    fn valency_is_thread_invariant(
        a in 0u8..=1,
        b in 0u8..=1,
        rounds in 1usize..=2,
    ) {
        let p = PhaseModel::new(2, rounds);
        let limits = ExploreLimits::default();
        let base = Explorer::with_config(ExploreConfig { limits, threads: 1, shards: 1, ..ExploreConfig::default() })
            .valency(&p, &[a, b]);
        let par = Explorer::with_config(ExploreConfig { limits, threads: 4, shards: 64, ..ExploreConfig::default() })
            .valency(&p, &[a, b]);
        match (base, par) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.initial, y.initial);
                prop_assert_eq!(x.zero_valent, y.zero_valent);
                prop_assert_eq!(x.one_valent, y.one_valent);
                prop_assert_eq!(x.bivalent, y.bivalent);
                prop_assert_eq!(x.stuck, y.stuck);
                prop_assert_eq!(x.configs, y.configs);
                prop_assert_eq!(x.bivalent_cycle, y.bivalent_cycle);
                prop_assert_eq!(x.critical_configs, y.critical_configs);
            }
            (x, y) => prop_assert!(
                x.is_none() && y.is_none(),
                "one shape truncated, the other did not"
            ),
        }
    }
}

/// A deterministic repeated-run check on a space wide enough (~10^4
/// configs, BFS levels far past the engine's parallel threshold) to
/// actually schedule worker threads.
#[test]
fn wide_space_is_stable_across_runs_and_threads() {
    let p = Optimistic::new(3, 3);
    let inputs = [0u8, 1, 0];
    let limits = ExploreLimits::default();
    let oracle = reference_explore(&p, &inputs, limits);
    for run in 0..2 {
        for threads in [2, 4] {
            let got = engine_explore(&p, &inputs, limits, threads, 0);
            assert_eq!(oracle, got, "run={run} threads={threads}");
        }
    }
}
