//! Equivalence properties for symmetry-quotient (canonical)
//! exploration.
//!
//! The canonicalizer promises that for a protocol declaring itself
//! `Symmetric`, exploring one representative per process-permutation
//! class changes *what is counted*, never *what is true*: the
//! `is_safe()` verdict, the existence of each violation kind, the
//! valency classification of the initial configuration, and the
//! termination/cycle facts must all match a raw exploration. These
//! tests hold canonical mode to that promise across every symmetric
//! model protocol, random inputs, budgets, and parallel shapes — and
//! check permutation invariance directly: permuting the input vector
//! must not change anything canonical mode reports.

use proptest::prelude::*;
use randsync_consensus::model_protocols::{
    CasModel, MixedZigzag, NaiveWriteRead, Optimistic, PhaseModel, SwapChain, SwapTwoModel,
    TasRace, TasTwoModel, WalkBacking, WalkModel, Zigzag,
};
use randsync_model::{
    ExploreConfig, ExploreLimits, ExploreOutcome, Explorer, Protocol, Symmetry,
};

fn run<P>(
    protocol: &P,
    inputs: &[u8],
    limits: ExploreLimits,
    threads: usize,
    shards: usize,
    canonical: bool,
) -> ExploreOutcome
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    Explorer::with_config(ExploreConfig { limits, threads, shards, canonical, ..Default::default() })
        .explore(protocol, inputs)
}

/// Core property: raw and canonical exploration agree on every verdict.
///
/// Only applies when the raw run completes within budget — the
/// canonical run then completes too (it visits no more configurations
/// and the same depths), and all verdict fields are comparable. When
/// the raw run truncates, verdict fields are `None`/partial by design
/// and only the reduction inequality is checked.
fn check_verdicts_agree<P>(
    protocol: &P,
    inputs: &[u8],
    limits: ExploreLimits,
    threads: usize,
    shards: usize,
) -> Result<(), TestCaseError>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let raw = run(protocol, inputs, limits, threads, shards, false);
    let canon = run(protocol, inputs, limits, threads, shards, true);

    prop_assert!(canon.canonicalized, "protocol must declare Symmetric for this test");
    prop_assert!(
        canon.configs_visited <= raw.configs_visited,
        "quotient cannot be larger than the raw space"
    );
    prop_assert!(canon.raw_configs >= canon.configs_visited);
    prop_assert_eq!(canon.canonical_configs, canon.configs_visited);

    if raw.truncated {
        return Ok(());
    }
    prop_assert!(!canon.truncated, "canonical truncated where raw completed");
    prop_assert_eq!(raw.is_safe(), canon.is_safe(), "safety verdict diverged");
    prop_assert_eq!(
        raw.consistency_violation.is_some(),
        canon.consistency_violation.is_some(),
        "consistency-violation existence diverged"
    );
    prop_assert_eq!(
        raw.validity_violation.is_some(),
        canon.validity_violation.is_some(),
        "validity-violation existence diverged"
    );
    prop_assert_eq!(
        raw.can_always_reach_termination,
        canon.can_always_reach_termination,
        "termination reachability diverged"
    );
    prop_assert_eq!(
        raw.infinite_execution_possible,
        canon.infinite_execution_possible,
        "infinite-execution verdict diverged"
    );
    prop_assert_eq!(
        raw.terminal_configs == 0,
        canon.terminal_configs == 0,
        "terminal-config existence diverged"
    );
    Ok(())
}

/// Valency classification must agree between raw and canonical mode:
/// same initial valency, same emptiness per class, same bivalent-cycle
/// fact. (Per-class *counts* legitimately differ — that is the point of
/// the quotient.)
fn check_valency_agrees<P>(protocol: &P, inputs: &[u8]) -> Result<(), TestCaseError>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let limits = ExploreLimits::default();
    let raw = Explorer::new(limits).valency(protocol, inputs);
    let canon = Explorer::new(limits).canonical(true).valency(protocol, inputs);
    match (raw, canon) {
        (Some(r), Some(c)) => {
            prop_assert_eq!(r.initial, c.initial, "initial valency diverged");
            prop_assert_eq!(r.zero_valent == 0, c.zero_valent == 0);
            prop_assert_eq!(r.one_valent == 0, c.one_valent == 0);
            prop_assert_eq!(r.bivalent == 0, c.bivalent == 0);
            prop_assert_eq!(r.stuck == 0, c.stuck == 0);
            prop_assert_eq!(r.bivalent_cycle, c.bivalent_cycle, "bivalent cycle diverged");
            prop_assert_eq!(
                r.critical_configs == 0,
                c.critical_configs == 0,
                "critical-config existence diverged"
            );
            prop_assert!(c.configs <= r.configs);
        }
        (r, c) => prop_assert!(
            r.is_none() && c.is_none(),
            "one mode truncated the valency analysis, the other did not"
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The broken register protocols (Naive/Optimistic/Zigzag): the
    /// violation the raw search finds must survive the quotient, at
    /// every parallel shape.
    #[test]
    fn broken_register_protocols_agree(
        n in 2usize..=3,
        bits in prop::collection::vec(0u8..=1, 3),
        r in 1usize..=2,
        shape in 0usize..=1,
        cap in prop_oneof![Just(usize::MAX), Just(300usize)],
    ) {
        let (threads, shards) = [(1, 1), (4, 64)][shape];
        let inputs = &bits[..n];
        let limits = ExploreLimits { max_configs: cap, max_depth: 10_000 };
        check_verdicts_agree(&NaiveWriteRead::new(n), inputs, limits, threads, shards)?;
        check_verdicts_agree(&Optimistic::new(n, r), inputs, limits, threads, shards)?;
        check_verdicts_agree(&Zigzag::new(n, r), inputs, limits, threads, shards)?;
    }

    /// The correct protocols (CAS, 2-process swap) and the historyless
    /// adversary targets (SwapChain, TasRace, MixedZigzag).
    #[test]
    fn correct_and_historyless_protocols_agree(
        bits in prop::collection::vec(0u8..=1, 3),
        shape in 0usize..=1,
    ) {
        let (threads, shards) = [(1, 1), (4, 16)][shape];
        let limits = ExploreLimits::default();
        check_verdicts_agree(&CasModel::new(3), &bits[..3], limits, threads, shards)?;
        check_verdicts_agree(&SwapTwoModel, &bits[..2], limits, threads, shards)?;
        check_verdicts_agree(&SwapChain::new(3), &bits[..3], limits, threads, shards)?;
        check_verdicts_agree(&TasRace::new(2), &bits[..2], limits, threads, shards)?;
        check_verdicts_agree(&MixedZigzag::new(2), &bits[..2], limits, threads, shards)?;
    }

    /// The randomized protocols (coin branching): phase rounds and the
    /// random-walk counter protocol, including its cycle verdicts.
    #[test]
    fn randomized_protocols_agree(
        bits in prop::collection::vec(0u8..=1, 3),
        rounds in 1usize..=2,
        cap in prop_oneof![Just(usize::MAX), Just(2_000usize)],
    ) {
        let limits = ExploreLimits { max_configs: cap, max_depth: 10_000 };
        check_verdicts_agree(&PhaseModel::new(2, rounds), &bits[..2], limits, 1, 1)?;
        check_verdicts_agree(
            &WalkModel::with_tight_margins(2, WalkBacking::BoundedCounter),
            &bits[..2],
            limits,
            1,
            1,
        )?;
    }

    /// Valency classification is quotient-invariant on symmetric
    /// protocols, broken and correct alike.
    #[test]
    fn valency_classification_agrees(
        a in 0u8..=1,
        b in 0u8..=1,
        rounds in 1usize..=2,
    ) {
        check_valency_agrees(&NaiveWriteRead::new(2), &[a, b])?;
        check_valency_agrees(&CasModel::new(2), &[a, b])?;
        check_valency_agrees(&PhaseModel::new(2, rounds), &[a, b])?;
    }

    /// Permutation invariance: canonical exploration must report
    /// byte-for-byte identical numbers for any permutation of the input
    /// vector — all permuted starts share one canonical representative.
    #[test]
    fn canonical_outcome_is_permutation_invariant(
        bits in prop::collection::vec(0u8..=1, 3),
    ) {
        let limits = ExploreLimits::default();
        let p = NaiveWriteRead::new(3);
        let base = run(&p, &bits, limits, 1, 1, true);
        let mut perm = bits.clone();
        perm.rotate_left(1);
        let rot = run(&p, &perm, limits, 1, 1, true);
        perm.swap(0, 1);
        let swp = run(&p, &perm, limits, 1, 1, true);
        for other in [&rot, &swp] {
            prop_assert_eq!(base.configs_visited, other.configs_visited);
            prop_assert_eq!(base.raw_configs, other.raw_configs);
            prop_assert_eq!(base.terminal_configs, other.terminal_configs);
            prop_assert_eq!(base.is_safe(), other.is_safe());
            prop_assert_eq!(base.arena_bytes, other.arena_bytes);
        }
    }
}

/// Canonical mode on an *asymmetric* protocol must be a no-op: the
/// declaration gates the quotient, whatever the caller requested.
#[test]
fn asymmetric_protocols_are_never_quotiented() {
    assert_eq!(TasTwoModel.symmetry(), Symmetry::Asymmetric);
    let limits = ExploreLimits::default();
    let raw = Explorer::new(limits).explore(&TasTwoModel, &[0, 1]);
    let req = Explorer::new(limits).canonical(true).explore(&TasTwoModel, &[0, 1]);
    assert!(!req.canonicalized);
    assert_eq!(raw.configs_visited, req.configs_visited);
    assert_eq!(raw.is_safe(), req.is_safe());
}

/// Every protocol the quotient is claimed sound for actually declares
/// itself symmetric — and the broken three actually reduce on a space
/// wide enough for the reduction to matter.
#[test]
fn symmetric_declarations_and_real_reduction() {
    assert_eq!(NaiveWriteRead::new(3).symmetry(), Symmetry::Symmetric);
    assert_eq!(CasModel::new(3).symmetry(), Symmetry::Symmetric);
    assert_eq!(PhaseModel::new(3, 2).symmetry(), Symmetry::Symmetric);
    assert_eq!(SwapTwoModel.symmetry(), Symmetry::Symmetric);
    assert_eq!(
        WalkModel::with_tight_margins(2, WalkBacking::BoundedCounter).symmetry(),
        Symmetry::Symmetric
    );

    let p = PhaseModel::new(3, 2);
    let inputs = [0u8, 1, 1];
    let limits = ExploreLimits::default();
    let raw = Explorer::new(limits).explore(&p, &inputs);
    let canon = Explorer::new(limits).canonical(true).explore(&p, &inputs);
    assert!(!raw.truncated && !canon.truncated);
    assert!(
        (canon.configs_visited as f64) < 0.75 * raw.configs_visited as f64,
        "expected a real reduction: {} canonical vs {} raw",
        canon.configs_visited,
        raw.configs_visited
    );
    assert_eq!(raw.is_safe(), canon.is_safe());
}
