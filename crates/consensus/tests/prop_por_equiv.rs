//! Equivalence properties for partial-order-reduced exploration.
//!
//! The POR layer promises that pruning enabled moves down to an ample
//! subset changes *what is counted*, never *what is true*: pruned
//! interleavings are Mazurkiewicz-equivalent to retained ones, so the
//! `is_safe()` verdict, the existence of each violation kind, the
//! valency classification of the initial configuration, and the
//! termination/cycle facts must all match a raw exploration. These
//! tests hold `ExploreConfig::por` to that promise across the registry
//! protocols, random inputs, budgets, and parallel shapes; check that
//! the reduction composes with the symmetry quotient (`--canonical`);
//! and check that the best-first guided mode returns schedules the
//! configuration algebra replays deterministically.

use proptest::prelude::*;
use randsync_consensus::model_protocols::{
    CasModel, FetchIncTwoModel, LocalCoinModel, MixedZigzag, NaiveWriteRead, Optimistic,
    PhaseModel, SwapChain, SwapTwoModel, TasRace, TasTwoModel, WalkBacking, WalkModel, Zigzag,
};
use randsync_model::{
    Configuration, ExploreConfig, ExploreLimits, ExploreOutcome, Explorer, Protocol, SearchMode,
};

fn run<P>(
    protocol: &P,
    inputs: &[u8],
    limits: ExploreLimits,
    threads: usize,
    shards: usize,
    por: bool,
    canonical: bool,
) -> ExploreOutcome
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    Explorer::with_config(ExploreConfig {
        limits,
        threads,
        shards,
        canonical,
        por,
        ..Default::default()
    })
    .explore(protocol, inputs)
}

/// Core property: raw and reduced exploration agree on every verdict.
///
/// Only applies when the raw run completes within budget — the reduced
/// run then completes too (it visits no more configurations and the
/// same depths), and all verdict fields are comparable. When the raw
/// run truncates, verdict fields are `None`/partial by design and only
/// the reduction inequality is checked.
fn check_verdicts_agree<P>(
    protocol: &P,
    inputs: &[u8],
    limits: ExploreLimits,
    threads: usize,
    shards: usize,
) -> Result<(), TestCaseError>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let raw = run(protocol, inputs, limits, threads, shards, false, false);
    let red = run(protocol, inputs, limits, threads, shards, true, false);

    prop_assert!(red.por_enabled, "POR was requested but did not engage");
    prop_assert!(!raw.por_enabled, "raw run must not report POR");
    prop_assert!(
        red.configs_visited <= raw.configs_visited,
        "reduced space cannot be larger than the raw space"
    );

    if raw.truncated {
        return Ok(());
    }
    prop_assert!(!red.truncated, "POR truncated where raw completed");
    prop_assert_eq!(raw.is_safe(), red.is_safe(), "safety verdict diverged");
    prop_assert_eq!(
        raw.consistency_violation.is_some(),
        red.consistency_violation.is_some(),
        "consistency-violation existence diverged"
    );
    prop_assert_eq!(
        raw.validity_violation.is_some(),
        red.validity_violation.is_some(),
        "validity-violation existence diverged"
    );
    prop_assert_eq!(
        raw.can_always_reach_termination,
        red.can_always_reach_termination,
        "termination reachability diverged"
    );
    prop_assert_eq!(
        raw.infinite_execution_possible,
        red.infinite_execution_possible,
        "infinite-execution verdict diverged"
    );
    prop_assert_eq!(
        raw.terminal_configs == 0,
        red.terminal_configs == 0,
        "terminal-config existence diverged"
    );
    Ok(())
}

/// Valency classification must agree between raw and reduced mode: same
/// initial valency, same emptiness per class, same bivalent-cycle fact.
/// (Per-class *counts* legitimately differ — that is the point of the
/// reduction.)
fn check_valency_agrees<P>(protocol: &P, inputs: &[u8]) -> Result<(), TestCaseError>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let limits = ExploreLimits::default();
    let raw = Explorer::new(limits).valency(protocol, inputs);
    let red = Explorer::new(limits).por(true).valency(protocol, inputs);
    match (raw, red) {
        (Some(r), Some(p)) => {
            prop_assert_eq!(r.initial, p.initial, "initial valency diverged");
            prop_assert_eq!(r.zero_valent == 0, p.zero_valent == 0);
            prop_assert_eq!(r.one_valent == 0, p.one_valent == 0);
            prop_assert_eq!(r.bivalent == 0, p.bivalent == 0);
            prop_assert_eq!(r.stuck == 0, p.stuck == 0);
            prop_assert_eq!(r.bivalent_cycle, p.bivalent_cycle, "bivalent cycle diverged");
            prop_assert_eq!(
                r.critical_configs == 0,
                p.critical_configs == 0,
                "critical-config existence diverged"
            );
            prop_assert!(p.configs <= r.configs);
        }
        (r, p) => prop_assert!(
            r.is_none() && p.is_none(),
            "one mode truncated the valency analysis, the other did not"
        ),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The broken register protocols (Naive/Optimistic/Zigzag): the
    /// violation the raw search finds must survive the reduction, at
    /// every parallel shape.
    #[test]
    fn broken_register_protocols_agree(
        n in 2usize..=3,
        bits in prop::collection::vec(0u8..=1, 3),
        r in 1usize..=2,
        shape in 0usize..=1,
        cap in prop_oneof![Just(usize::MAX), Just(300usize)],
    ) {
        let (threads, shards) = [(1, 1), (4, 64)][shape];
        let inputs = &bits[..n];
        let limits = ExploreLimits { max_configs: cap, max_depth: 10_000 };
        check_verdicts_agree(&NaiveWriteRead::new(n), inputs, limits, threads, shards)?;
        check_verdicts_agree(&Optimistic::new(n, r), inputs, limits, threads, shards)?;
        check_verdicts_agree(&Zigzag::new(n, r), inputs, limits, threads, shards)?;
    }

    /// The correct protocols (CAS, the 2-process pairs) and the
    /// historyless adversary targets (SwapChain, TasRace, MixedZigzag)
    /// — including the asymmetric ones, which POR handles and the
    /// symmetry quotient must skip.
    #[test]
    fn correct_and_historyless_protocols_agree(
        bits in prop::collection::vec(0u8..=1, 3),
        shape in 0usize..=1,
    ) {
        let (threads, shards) = [(1, 1), (4, 16)][shape];
        let limits = ExploreLimits::default();
        check_verdicts_agree(&CasModel::new(3), &bits[..3], limits, threads, shards)?;
        check_verdicts_agree(&SwapTwoModel, &bits[..2], limits, threads, shards)?;
        check_verdicts_agree(&TasTwoModel, &bits[..2], limits, threads, shards)?;
        check_verdicts_agree(&FetchIncTwoModel, &bits[..2], limits, threads, shards)?;
        check_verdicts_agree(&SwapChain::new(3), &bits[..3], limits, threads, shards)?;
        check_verdicts_agree(&TasRace::new(2), &bits[..2], limits, threads, shards)?;
        check_verdicts_agree(&MixedZigzag::new(2), &bits[..2], limits, threads, shards)?;
    }

    /// The randomized protocols (coin branching): phase rounds, the
    /// random-walk counter protocol with its cycle verdicts, and the
    /// private-mixing protocol POR was built to collapse.
    #[test]
    fn randomized_protocols_agree(
        bits in prop::collection::vec(0u8..=1, 3),
        rounds in 1usize..=2,
        mix in 2u32..=4,
        cap in prop_oneof![Just(usize::MAX), Just(2_000usize)],
    ) {
        let limits = ExploreLimits { max_configs: cap, max_depth: 10_000 };
        check_verdicts_agree(&PhaseModel::new(2, rounds), &bits[..2], limits, 1, 1)?;
        check_verdicts_agree(
            &WalkModel::with_tight_margins(2, WalkBacking::BoundedCounter),
            &bits[..2],
            limits,
            1,
            1,
        )?;
        check_verdicts_agree(&LocalCoinModel::new(2, mix), &bits[..2], limits, 1, 1)?;
    }

    /// Valency classification is reduction-invariant, broken and
    /// correct alike.
    #[test]
    fn valency_classification_agrees(
        a in 0u8..=1,
        b in 0u8..=1,
        rounds in 1usize..=2,
        mix in 2u32..=3,
    ) {
        check_valency_agrees(&NaiveWriteRead::new(2), &[a, b])?;
        check_valency_agrees(&CasModel::new(2), &[a, b])?;
        check_valency_agrees(&PhaseModel::new(2, rounds), &[a, b])?;
        check_valency_agrees(&LocalCoinModel::new(2, mix), &[a, b])?;
    }

    /// POR composes with the symmetry quotient: requesting both on a
    /// symmetric protocol keeps every verdict intact and visits no more
    /// configurations than the quotient alone.
    #[test]
    fn por_composes_with_canonical(
        bits in prop::collection::vec(0u8..=1, 3),
        rounds in 1usize..=2,
    ) {
        let limits = ExploreLimits::default();
        for (raw, both) in [
            {
                let p = NaiveWriteRead::new(3);
                (run(&p, &bits, limits, 1, 1, false, false), run(&p, &bits, limits, 1, 1, true, true))
            },
            {
                let p = PhaseModel::new(2, rounds);
                (
                    run(&p, &bits[..2], limits, 1, 1, false, false),
                    run(&p, &bits[..2], limits, 1, 1, true, true),
                )
            },
        ] {
            prop_assert!(both.por_enabled && both.canonicalized);
            prop_assert!(both.configs_visited <= raw.configs_visited);
            prop_assert!(!raw.truncated && !both.truncated);
            prop_assert_eq!(raw.is_safe(), both.is_safe());
            prop_assert_eq!(
                raw.consistency_violation.is_some(),
                both.consistency_violation.is_some()
            );
            prop_assert_eq!(
                raw.validity_violation.is_some(),
                both.validity_violation.is_some()
            );
            prop_assert_eq!(raw.terminal_configs == 0, both.terminal_configs == 0);
        }
    }

    /// Best-first guided search: whenever raw BFS proves a protocol
    /// inconsistent, the guided mode finds a witness schedule too, and
    /// that schedule replays deterministically — two replays from the
    /// initial configuration land on the same inconsistent state.
    #[test]
    fn best_first_witnesses_replay_deterministically(
        n in 2usize..=3,
        bits in prop::collection::vec(0u8..=1, 3),
        r in 1usize..=2,
    ) {
        let inputs = &bits[..n];
        // Only mixed inputs can produce an inconsistency witness.
        prop_assume!(inputs.contains(&0) && inputs.contains(&1));
        let p = Optimistic::new(n, r);
        let bad = |c: &Configuration<_>| c.is_inconsistent();
        let (guided, truncated) = Explorer::default()
            .search(SearchMode::BestFirst)
            .find_violation(&p, inputs, bad);
        prop_assert!(!truncated);
        let exec = guided.expect("optimistic register consensus is inconsistent");
        let start = Configuration::initial(&p, inputs);
        let (end_a, trace_a) = exec.replay(&p, &start).expect("witness replays");
        let (end_b, trace_b) = exec.replay(&p, &start).expect("witness replays twice");
        prop_assert!(end_a.is_inconsistent());
        prop_assert_eq!(format!("{end_a:?}"), format!("{end_b:?}"), "replay diverged");
        prop_assert_eq!(trace_a.len(), trace_b.len());
        // Exhaustive BFS agrees on existence (witness shapes may differ).
        let (bfs, _) = Explorer::default().find_violation(&p, inputs, bad);
        prop_assert!(bfs.is_some());
    }
}

/// The showcase reduction: private coin mixing before a shared CAS.
/// Every mixing step is independent of every other process's, so the
/// reduced space must collapse the interleaving lattice — by well over
/// the 1.5× the benchmarks advertise — while agreeing on safety.
#[test]
fn local_coin_reduction_is_real_and_sound() {
    let p = LocalCoinModel::new(2, 4);
    let inputs = [0u8, 1];
    let limits = ExploreLimits::default();
    let raw = run(&p, &inputs, limits, 1, 1, false, false);
    let red = run(&p, &inputs, limits, 1, 1, true, false);
    assert!(!raw.truncated && !red.truncated);
    assert!(red.por_pruned > 0, "no moves pruned on the showcase protocol");
    assert!(
        (red.configs_visited as f64) * 1.5 < raw.configs_visited as f64,
        "expected a real reduction: {} reduced vs {} raw",
        red.configs_visited,
        raw.configs_visited
    );
    assert_eq!(raw.is_safe(), red.is_safe());
    assert!(red.is_safe(), "localcoin is a correct consensus protocol");
}
