//! Equivalence properties for the out-of-core tier and
//! checkpoint/resume (DESIGN.md §14).
//!
//! The spillable engine promises that a resident-memory budget changes
//! *where bytes live*, never *what is computed*: every outcome field —
//! visit counts, witness executions, termination/cycle facts, the
//! arena's total footprint — must be bit-identical to the in-RAM tier,
//! at every thread/shard shape and budget. Checkpointing promises that
//! a search interrupted at a deadline or depth budget and resumed
//! (possibly on the other storage tier) reaches the same final outcome
//! as one that was never interrupted. These tests hold both features to
//! those promises across the model protocols, random inputs, and
//! parallel shapes.

use proptest::prelude::*;
use randsync_consensus::model_protocols::{
    CasModel, NaiveWriteRead, Optimistic, PhaseModel, SwapChain, WalkBacking, WalkModel,
};
use randsync_model::{
    Checkpoint, CheckpointRequest, ExploreConfig, ExploreLimits, ExploreOutcome, Explorer,
    Protocol, TruncationReason,
};

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A collision-free checkpoint path for one test case.
fn ckpt_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "randsync-prop-ckpt-{}-{tag}-{seq}.ckpt",
        std::process::id()
    ))
}

fn run<P>(
    protocol: &P,
    inputs: &[u8],
    limits: ExploreLimits,
    threads: usize,
    shards: usize,
    mem_budget_bytes: usize,
) -> ExploreOutcome
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    Explorer::with_config(ExploreConfig {
        limits,
        threads,
        shards,
        mem_budget_bytes,
        ..Default::default()
    })
    .explore(protocol, inputs)
}

/// Bit-identity between two outcomes of the *same* search on different
/// storage tiers: everything observable must match, including witness
/// step sequences and the arena's total (resident + spilled) footprint.
fn assert_identical(ram: &ExploreOutcome, other: &ExploreOutcome) -> Result<(), TestCaseError> {
    prop_assert_eq!(ram.configs_visited, other.configs_visited);
    prop_assert_eq!(ram.raw_configs, other.raw_configs);
    prop_assert_eq!(ram.terminal_configs, other.terminal_configs);
    prop_assert_eq!(ram.truncated, other.truncated);
    prop_assert_eq!(ram.truncation_reason, other.truncation_reason);
    prop_assert_eq!(&ram.consistency_violation, &other.consistency_violation);
    prop_assert_eq!(&ram.validity_violation, &other.validity_violation);
    prop_assert_eq!(ram.can_always_reach_termination, other.can_always_reach_termination);
    prop_assert_eq!(ram.infinite_execution_possible, other.infinite_execution_possible);
    prop_assert_eq!(ram.arena_bytes, other.arena_bytes, "total arena footprint diverged");
    prop_assert_eq!(ram.bytes_per_config.to_bits(), other.bytes_per_config.to_bits());
    Ok(())
}

/// Core spill property: a memory budget never changes the outcome.
fn check_spill_matches_ram<P>(
    protocol: &P,
    inputs: &[u8],
    limits: ExploreLimits,
    threads: usize,
    shards: usize,
    budget: usize,
) -> Result<(), TestCaseError>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let ram = run(protocol, inputs, limits, threads, shards, 0);
    let spill = run(protocol, inputs, limits, threads, shards, budget);
    prop_assert!(spill.spill_mode, "nonzero budget must select the out-of-core tier");
    prop_assert!(!ram.spill_mode && ram.spilled_bytes == 0);
    assert_identical(&ram, &spill)
}

/// Checkpoint/resume property: interrupt a search with `limits_cut`,
/// resume the written checkpoint (under `resume_budget` bytes of
/// resident memory), and require the final outcome to be bit-identical
/// to a search that was never interrupted.
fn check_resume_completes<P>(
    protocol: &P,
    inputs: &[u8],
    limits_cut: ExploreLimits,
    deadline_in_past: bool,
    resume_budget: usize,
    tag: &str,
) -> Result<(), TestCaseError>
where
    P: Protocol + Sync,
    P::State: Send + Sync,
{
    let full_limits = ExploreLimits { max_configs: 3_000_000, max_depth: 200_000 };
    let uninterrupted = run(protocol, inputs, full_limits, 1, 1, 0);
    prop_assert!(!uninterrupted.truncated, "pick protocols the full budget exhausts");

    let path = ckpt_path(tag);
    let req = CheckpointRequest {
        path: path.clone(),
        protocol: tag.to_string(),
        n: inputs.len() as u32,
        r: 0,
        inputs: inputs.to_vec(),
    };
    let mut config = ExploreConfig {
        limits: limits_cut,
        checkpoint: Some(req),
        ..Default::default()
    };
    if deadline_in_past {
        // Already expired: the search must stop at the first level
        // boundary, whatever the host's speed — the most adversarial
        // deadline cut that is still deterministic to test against.
        config.deadline = Some(std::time::Instant::now());
    }
    let cut = Explorer::with_config(config).explore(protocol, inputs);
    prop_assert!(cut.truncated, "the cut run must actually be interrupted");
    prop_assert!(
        matches!(
            cut.truncation_reason,
            Some(TruncationReason::DepthCap) | Some(TruncationReason::Deadline)
        ),
        "resumable truncation reasons only"
    );
    let Some(written) = &cut.checkpoint else {
        return Err(TestCaseError::fail(format!(
            "no checkpoint written: {:?}",
            cut.checkpoint_error
        )));
    };

    let ckpt = Checkpoint::load(written).expect("checkpoint loads");
    prop_assert_eq!(ckpt.nodes(), cut.configs_visited, "checkpoint carries the visited set");
    let resumed = Explorer::new(full_limits).mem_budget(resume_budget).resume(protocol, &ckpt);
    let _ = std::fs::remove_file(&path);
    let resumed = resumed.expect("resume succeeds");
    assert_identical(&uninterrupted, &resumed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Broken register protocols: the violation witness the in-RAM
    /// search finds must survive spilling, at every parallel shape and
    /// down to pathologically small budgets.
    #[test]
    fn spilled_broken_protocols_match_ram(
        bits in prop::collection::vec(0u8..=1, 3),
        r in 1usize..=2,
        shape in 0usize..=1,
        budget in prop_oneof![Just(1024usize), Just(4096), Just(64 * 1024)],
    ) {
        let (threads, shards) = [(1, 1), (4, 64)][shape];
        let limits = ExploreLimits::default();
        check_spill_matches_ram(&NaiveWriteRead::new(3), &bits, limits, threads, shards, budget)?;
        check_spill_matches_ram(&Optimistic::new(3, r), &bits, limits, threads, shards, budget)?;
    }

    /// Correct and randomized protocols, including cycle verdicts and
    /// truncated (config-capped) searches: the cap must bite at the
    /// same configuration on both tiers.
    #[test]
    fn spilled_correct_protocols_match_ram(
        bits in prop::collection::vec(0u8..=1, 3),
        shape in 0usize..=1,
        cap in prop_oneof![Just(usize::MAX), Just(500usize)],
    ) {
        let (threads, shards) = [(1, 1), (4, 16)][shape];
        let limits = ExploreLimits { max_configs: cap, max_depth: 10_000 };
        check_spill_matches_ram(&CasModel::new(3), &bits, limits, threads, shards, 2048)?;
        check_spill_matches_ram(&SwapChain::new(3), &bits, limits, threads, shards, 2048)?;
        check_spill_matches_ram(
            &WalkModel::with_tight_margins(2, WalkBacking::BoundedCounter),
            &bits[..2],
            limits,
            threads,
            shards,
            2048,
        )?;
    }

    /// Valency classification is tier-invariant: the spill engine must
    /// reproduce the full per-class counts, not just verdicts.
    #[test]
    fn spilled_valency_matches_ram(
        a in 0u8..=1,
        b in 0u8..=1,
        rounds in 1usize..=2,
    ) {
        let limits = ExploreLimits::default();
        let ram = Explorer::new(limits).valency(&PhaseModel::new(2, rounds), &[a, b]);
        let spill =
            Explorer::new(limits).mem_budget(2048).valency(&PhaseModel::new(2, rounds), &[a, b]);
        prop_assert_eq!(format!("{ram:?}"), format!("{spill:?}"));

        let ram = Explorer::new(limits).valency(&NaiveWriteRead::new(2), &[a, b]);
        let spill = Explorer::new(limits).mem_budget(1024).valency(&NaiveWriteRead::new(2), &[a, b]);
        prop_assert_eq!(format!("{ram:?}"), format!("{spill:?}"));
    }

    /// Depth-capped interruption: checkpoint at a level boundary, then
    /// resume — in RAM and under a budget — to the uninterrupted
    /// outcome.
    #[test]
    fn depth_capped_checkpoint_resumes_to_uninterrupted_outcome(
        bits in prop::collection::vec(0u8..=1, 3),
        depth in 1usize..=3,
        budget in prop_oneof![Just(0usize), Just(4096)],
    ) {
        let cut = ExploreLimits { max_configs: 3_000_000, max_depth: depth };
        check_resume_completes(&NaiveWriteRead::new(3), &bits, cut, false, budget, "depthcap")?;
    }

    /// Deadline interruption: an already-expired deadline cuts the
    /// search at the first level boundary; resuming the checkpoint
    /// still reaches the uninterrupted outcome (the resumed search also
    /// exercises the spill tier).
    #[test]
    fn deadline_checkpoint_resumes_to_uninterrupted_outcome(
        bits in prop::collection::vec(0u8..=1, 2),
        rounds in 1usize..=2,
        budget in prop_oneof![Just(0usize), Just(2048)],
    ) {
        let full = ExploreLimits { max_configs: 3_000_000, max_depth: 200_000 };
        check_resume_completes(&PhaseModel::new(2, rounds), &bits, full, true, budget, "deadline")?;
    }
}

/// A checkpoint round-trips through its binary format unchanged, and
/// resuming twice from the same file is deterministic.
#[test]
fn resume_is_deterministic_across_repeats() {
    let p = NaiveWriteRead::new(3);
    let inputs = [0u8, 1, 0];
    let path = ckpt_path("repeat");
    let req = CheckpointRequest {
        path: path.clone(),
        protocol: "repeat".into(),
        n: 3,
        r: 0,
        inputs: inputs.to_vec(),
    };
    let cut = Explorer::with_config(ExploreConfig {
        limits: ExploreLimits { max_configs: 3_000_000, max_depth: 2 },
        checkpoint: Some(req),
        ..Default::default()
    })
    .explore(&p, &inputs);
    let written = cut.checkpoint.expect("checkpoint written");
    let ckpt = Checkpoint::load(&written).expect("loads");
    let full = ExploreLimits { max_configs: 3_000_000, max_depth: 200_000 };
    let a = Explorer::new(full).resume(&p, &ckpt).expect("resumes");
    let b = Explorer::new(full).mem_budget(4096).resume(&p, &ckpt).expect("resumes");
    let _ = std::fs::remove_file(&path);
    assert_eq!(a.configs_visited, b.configs_visited);
    assert_eq!(a.arena_bytes, b.arena_bytes);
    assert_eq!(a.consistency_violation, b.consistency_violation);
    assert_eq!(a.validity_violation, b.validity_violation);
}
