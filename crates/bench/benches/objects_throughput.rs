//! S2 — Section 2's object zoo: operation semantics, classification
//! cost, and raw throughput of the threaded primitives.

use criterion::{BenchmarkId, Criterion, Throughput};
use randsync_bench::banner;
use randsync_model::{ObjectKind, ObjectSpec, Operation, Value};
use randsync_objects::bridge;
use randsync_objects::traits::{CompareSwap, Counter, FetchAdd, ReadWrite, Swap, TestAndSet};
use randsync_objects::{
    AtomicCounter, AtomicRegister, BoundedAtomicCounter, CasRegister, FetchAddRegister,
    SnapshotCounter, SwapRegister, TestAndSetFlag,
};

fn main() {
    banner(
        "S2",
        "object semantics and throughput",
        "the classification (historyless / interfering) drives the whole paper; \
         the primitives themselves are single atomic instructions",
    );

    println!("{:<28} {:>12} {:>12}", "kind", "historyless", "interfering");
    for k in ObjectKind::all() {
        println!("{:<28} {:>12} {:>12}", k.name(), k.is_historyless(), k.is_interfering());
    }

    let mut c = Criterion::default().configure_from_args();

    // Classification decision procedures (they check definitions over
    // sampled spaces — cheap, but worth pinning).
    c.bench_function("classify/historyless(compare&swap)", |b| {
        b.iter(|| std::hint::black_box(ObjectKind::CompareSwap).is_historyless())
    });
    c.bench_function("classify/overwrites(swap,write)", |b| {
        let f = Operation::Swap(Value::Int(1));
        let g = Operation::Write(Value::Int(2));
        b.iter(|| ObjectKind::SwapRegister.overwrites(&f, &g))
    });

    // Single-threaded op latency.
    let mut group = c.benchmark_group("ops_single_thread");
    group.throughput(Throughput::Elements(1));
    let reg = AtomicRegister::new(0);
    group.bench_function("register/write+read", |b| {
        b.iter(|| {
            reg.write(7);
            std::hint::black_box(reg.read())
        })
    });
    let swap = SwapRegister::new(0);
    group.bench_function("swap/swap", |b| b.iter(|| std::hint::black_box(swap.swap(3))));
    let tas = TestAndSetFlag::new();
    group.bench_function("tas/test_and_set+reset", |b| {
        b.iter(|| {
            let w = tas.test_and_set();
            tas.reset();
            std::hint::black_box(w)
        })
    });
    let fa = FetchAddRegister::new(0);
    group.bench_function("fetch_add/fetch_add", |b| {
        b.iter(|| std::hint::black_box(fa.fetch_add(1)))
    });
    let cas = CasRegister::new(0);
    group.bench_function("cas/compare_swap", |b| {
        b.iter(|| std::hint::black_box(cas.compare_swap(0, 0)))
    });
    let ctr = AtomicCounter::new();
    group.bench_function("counter/inc+read", |b| {
        b.iter(|| {
            ctr.inc();
            std::hint::black_box(Counter::read(&ctr))
        })
    });
    let bounded = BoundedAtomicCounter::new(-1000, 1000);
    group.bench_function("bounded_counter/inc", |b| b.iter(|| bounded.inc()));
    group.finish();

    // The same primitives behind the runtime's object bridge: every
    // threaded protocol run pays this `dyn DynObject` + word-codec
    // dispatch per shared-memory operation, so its margin over the raw
    // trait calls above is the interpreter's per-op overhead.
    let mut group = c.benchmark_group("ops_bridged_dyn");
    group.throughput(Throughput::Elements(1));
    for kind in [
        ObjectKind::Register,
        ObjectKind::SwapRegister,
        ObjectKind::FetchAdd,
        ObjectKind::CompareSwap,
        ObjectKind::Counter,
    ] {
        let obj = bridge::instantiate(&ObjectSpec::new(kind, "bench")).unwrap();
        let op = match kind {
            ObjectKind::Register => Operation::Write(Value::Int(7)),
            ObjectKind::SwapRegister => Operation::Swap(Value::Int(3)),
            ObjectKind::FetchAdd => Operation::FetchAdd(1),
            ObjectKind::CompareSwap => Operation::CompareSwap {
                expected: Value::Int(0),
                new: Value::Int(0),
            },
            _ => Operation::Inc,
        };
        group.bench_function(kind.name(), |b| {
            b.iter(|| std::hint::black_box(obj.apply(0, &op).unwrap()))
        });
    }
    group.finish();

    // The observability tax on the bridge: every bridged `apply` now
    // carries a relaxed-load enabled check, and — when the metrics
    // registry is on — one relaxed counter increment. `disabled` must
    // sit within noise of `ops_bridged_dyn` above (the check is the
    // whole cost), and `enabled` bounds what `--metrics` costs per op.
    let mut group = c.benchmark_group("ops_bridged_metrics");
    group.throughput(Throughput::Elements(1));
    let obj = bridge::instantiate(&ObjectSpec::new(ObjectKind::SwapRegister, "bench")).unwrap();
    let op = Operation::Swap(Value::Int(3));
    randsync_obs::set_metrics_enabled(false);
    group.bench_function("swap/disabled", |b| {
        b.iter(|| std::hint::black_box(obj.apply(0, &op).unwrap()))
    });
    randsync_obs::set_metrics_enabled(true);
    group.bench_function("swap/enabled", |b| {
        b.iter(|| std::hint::black_box(obj.apply(0, &op).unwrap()))
    });
    randsync_obs::set_metrics_enabled(false);
    group.finish();

    // The register-based counter: INC is one write, READ is a scan —
    // the O(n) space trade-off has a time face too.
    let mut group = c.benchmark_group("snapshot_counter_read");
    for n in [2usize, 8, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let sc = SnapshotCounter::new(n);
            for i in 0..n {
                sc.inc(i);
            }
            b.iter(|| std::hint::black_box(sc.read()));
        });
    }
    group.finish();

    c.final_summary();
}
