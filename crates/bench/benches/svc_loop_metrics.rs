//! S13b — the event loop's observability tax: the server times frame
//! decode, dispatch, and flush into `svc.loop.*` histograms, each site
//! guarded by one relaxed `metrics_enabled()` load. `disabled` must
//! sit within noise of the bare operation (the load+branch is the
//! whole cost), and `enabled` bounds what a monitored server pays per
//! frame: two `Instant::now()` reads and one lock-free histogram
//! observe.

use std::time::Instant;

use criterion::{Criterion, Throughput};
use randsync_bench::banner;
use randsync_svc::Request;

/// A representative request frame: the job submission shape the loop
/// decodes all day under load.
const LINE: &str =
    "{\"id\": 7, \"job\": \"valency\", \"params\": {\"protocol\": \"cas\", \"threads\": 2}}";

fn main() {
    banner(
        "S13b",
        "event-loop instrumentation cost",
        "frame decode -> dispatch latency histograms must be free when metrics are off; \
         `disabled` is the relaxed load+branch, `enabled` adds two clock reads + one observe",
    );

    let mut c = Criterion::default().configure_from_args();

    let decode_us = randsync_obs::global_metrics().histogram("svc.loop.decode_us");

    // The bare operation, no instrumentation at all: the floor the
    // `disabled` variant must not drift from.
    let mut group = c.benchmark_group("ops_svc_loop_metrics");
    group.throughput(Throughput::Elements(1));
    group.bench_function("decode/bare", |b| {
        b.iter(|| std::hint::black_box(Request::parse(LINE)))
    });

    // The loop's exact decode instrumentation pattern, toggled the
    // same way `ops_bridged_metrics` toggles the bridge.
    let timed_decode = || {
        let instrumented = randsync_obs::metrics_enabled();
        let started = if instrumented { Some(Instant::now()) } else { None };
        let parsed = std::hint::black_box(Request::parse(LINE));
        if let Some(started) = started {
            decode_us.observe(started.elapsed().as_micros() as u64);
        }
        parsed
    };
    randsync_obs::set_metrics_enabled(false);
    group.bench_function("decode/disabled", |b| b.iter(timed_decode));
    randsync_obs::set_metrics_enabled(true);
    group.bench_function("decode/enabled", |b| b.iter(timed_decode));
    randsync_obs::set_metrics_enabled(false);
    group.finish();

    c.final_summary();
}
