//! F4 — Figure 4: the incomparable case (V ⊄ W, W ⊄ V).
//!
//! When the two sides' object sets are incomparable, the proof builds a
//! block-write cover of U = V ∪ W (cloning the other side's poised
//! processes), finds a solo execution γ deciding after it, and recurses
//! with the γ-side enlarged to U. The zigzag protocol (input 0 writes
//! registers ascending, input 1 descending) makes the very first
//! comparison incomparable, so this case must fire.

use criterion::{BenchmarkId, Criterion};
use randsync_bench::banner;
use randsync_consensus::model_protocols::{Optimistic, Zigzag};
use randsync_core::attack::attack_for_witness;
use randsync_core::combine31::CombineLimits;

fn main() {
    banner(
        "F4",
        "Figure 4 incomparable-case resolutions",
        "incomparable V, W are resolved by block-writing U = V ∪ W with cloned \
         covers and recursing on γ's side",
    );

    println!(
        "{:>12} {:>4} {:>10} {:>10} {:>10}",
        "protocol", "r", "incomp", "splits", "steps"
    );
    for r in 1..=5usize {
        let p = Zigzag::new(2, r);
        let (witness, stats) =
            attack_for_witness(&p, &CombineLimits::default()).expect("attack succeeds");
        println!(
            "{:>12} {:>4} {:>10} {:>10} {:>10}",
            "zigzag",
            r,
            stats.incomparable_resolutions,
            stats.subset_splits,
            witness.execution.len()
        );
        if r >= 2 {
            assert!(stats.incomparable_resolutions > 0, "figure 4 must fire at r={r}");
        }
    }
    for r in 1..=5usize {
        let p = Optimistic::new(2, r);
        let (witness, stats) =
            attack_for_witness(&p, &CombineLimits::default()).expect("attack succeeds");
        println!(
            "{:>12} {:>4} {:>10} {:>10} {:>10}",
            "optimistic",
            r,
            stats.incomparable_resolutions,
            stats.subset_splits,
            witness.execution.len()
        );
    }
    println!(
        "\nshape check: order-agreeing protocols (optimistic) never need Figure 4; \
         order-diverging ones (zigzag, r ≥ 2) always do."
    );

    let mut c = Criterion::default().sample_size(15).configure_from_args();
    let mut group = c.benchmark_group("fig4_incomparable_attack");
    for r in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let p = Zigzag::new(2, r);
            b.iter(|| attack_for_witness(&p, &CombineLimits::default()).unwrap());
        });
    }
    group.finish();
    c.final_summary();
}
