//! C4.1/4.3/4.5 — the Section 4 separation table.
//!
//! Regenerates the qualitative "who wins" comparison of the paper's
//! corollaries: per primitive, the deterministic consensus number next
//! to the randomized space bounds, evaluated at concrete n.

use criterion::Criterion;
use randsync_bench::banner;
use randsync_core::hierarchy::{
    implementation_lower_bound, render_table, separation_table, ConsensusNumber, SpaceBound,
};
use randsync_model::ObjectKind;

fn main() {
    banner(
        "C4.x",
        "the deterministic hierarchy vs the randomized space measure",
        "corollaries 4.1/4.3/4.5: implementing compare&swap, counters, or \
         fetch&add/inc/dec from historyless objects requires Ω(√n) instances",
    );

    for n in [64u64, 1024, 65536] {
        println!("--- n = {n} ---");
        print!("{}", render_table(n));
        println!();
    }

    // The corollaries, evaluated.
    println!(
        "{:<28} {:>10} {:>10} {:>10}",
        "implementing … from historyless", "n=64", "n=1024", "n=65536"
    );
    for target in [
        ObjectKind::CompareSwap,
        ObjectKind::Counter,
        ObjectKind::FetchAdd,
        ObjectKind::FetchIncrement,
        ObjectKind::FetchDecrement,
    ] {
        let r: Vec<String> = [64u64, 1024, 65536]
            .iter()
            .map(|&n| implementation_lower_bound(target, n).unwrap().to_string())
            .collect();
        println!("{:<28} {:>10} {:>10} {:>10}", target.name(), r[0], r[1], r[2]);
    }

    // Invariants the table must satisfy (the paper's claims).
    let table = separation_table();
    for p in &table {
        // Historyless ⇒ √n lower bound; single-instance solvers ⇒ 1.
        if p.historyless {
            assert_eq!(p.randomized_lower, SpaceBound::SqrtN, "{}", p.kind.name());
        } else {
            assert_eq!(p.randomized_upper, SpaceBound::Constant(1), "{}", p.kind.name());
        }
    }
    let det_order = |c: &ConsensusNumber| match c {
        ConsensusNumber::Finite(k) => *k,
        ConsensusNumber::Infinite => u64::MAX,
    };
    // The deterministic order does NOT predict the randomized one:
    // exhibit an inversion (counter: det 1, randomized space 1;
    // swap: det 2, randomized space Θ(√n)).
    let counter = table.iter().find(|p| p.kind == ObjectKind::Counter).unwrap();
    let swap = table.iter().find(|p| p.kind == ObjectKind::SwapRegister).unwrap();
    assert!(det_order(&counter.consensus_number) < det_order(&swap.consensus_number));
    assert!(counter.randomized_upper.eval(1024) < swap.randomized_lower.eval(1024));
    println!(
        "\nshape check: deterministic order inverted under the randomized measure \
         (counter < swap deterministically, counter ≪ swap in randomized space)."
    );

    let mut c = Criterion::default().configure_from_args();
    c.bench_function("render_separation_table", |b| {
        b.iter(|| render_table(std::hint::black_box(4096)))
    });
    c.final_summary();
}
