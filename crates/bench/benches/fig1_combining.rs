//! F1 — Figure 1: combining two executions via a block write.
//!
//! The seed construction of the whole paper: run β (deciding 1), have
//! poised processes block-write V (obliterating β from shared memory),
//! then run α (deciding 0). We regenerate it on the naive register
//! protocol and time the construction as the pool grows.

use criterion::{BenchmarkId, Criterion};
use randsync_bench::banner;
use randsync_consensus::model_protocols::NaiveWriteRead;
use randsync_core::attack::attack_for_witness;
use randsync_core::combine31::CombineLimits;

fn main() {
    banner(
        "F1",
        "combining two executions (Figure 1)",
        "an execution deciding 0 and an execution deciding 1 can be spliced into \
         one execution deciding both, because the block write makes β invisible",
    );

    println!("{:>6} {:>12} {:>16} {:>14}", "n", "steps", "processes used", "splices");
    for n in [2usize, 4, 8, 16] {
        let p = NaiveWriteRead::new(n);
        let (witness, stats) =
            attack_for_witness(&p, &CombineLimits::default()).expect("attack succeeds");
        println!(
            "{:>6} {:>12} {:>16} {:>14}",
            n,
            witness.execution.len(),
            witness.processes_used,
            stats.base_splices
        );
    }
    println!(
        "\nshape check: the splice always uses the SAME small core (two solos and \
         one block write) — size is independent of n, exactly as in the paper."
    );

    let mut c = Criterion::default().sample_size(20).configure_from_args();
    let mut group = c.benchmark_group("fig1_combining");
    for n in [2usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let p = NaiveWriteRead::new(n);
            b.iter(|| attack_for_witness(&p, &CombineLimits::default()).unwrap());
        });
    }
    group.finish();
    c.final_summary();
}
