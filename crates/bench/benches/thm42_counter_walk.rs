//! T4.2 — Theorem 4.2 (Aspnes): randomized consensus from ONE bounded
//! counter.
//!
//! We verify the protocol's space claim (1 object, cursor within ±3n),
//! measure the random walk's total work as n grows (the classic
//! quadratic hitting-time shape), and time the threaded protocol.
//!
//! The threaded group exercises the unified path end to end: each
//! `decide` call drives the `WalkModel` state machine through the
//! runtime interpreter against the real counter, so this bench times
//! interpreter dispatch *and* the atomics underneath it.

use criterion::{BenchmarkId, Criterion};
use randsync_bench::{banner, walk_profile};
use randsync_consensus::model_protocols::WalkBacking;
use randsync_consensus::spec::decide_concurrently;
use randsync_consensus::{Consensus, WalkConsensus};

fn main() {
    banner(
        "T4.2",
        "one bounded counter suffices (Aspnes)",
        "a single bounded counter (values in ±3n) solves randomized n-process \
         consensus; total work follows the random walk's quadratic hitting time",
    );

    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>12}",
        "n", "mean steps", "max steps", "max |cursor|", "range ±3n"
    );
    let trials = 12u64;
    let mut means = Vec::new();
    for n in [2usize, 3, 4, 6, 8] {
        let (mean, max, exc) = walk_profile(n, WalkBacking::BoundedCounter, trials);
        means.push((n, mean));
        println!("{:>4} {:>12.1} {:>12} {:>14} {:>12}", n, mean, max, exc, 3 * n);
        assert!(exc <= 3 * n as i64, "cursor left the paper's ±3n range");
    }
    // Quadratic-ish growth: mean(n=8) / mean(n=2) should far exceed the
    // linear ratio 4.
    let first = means.first().unwrap().1;
    let last = means.last().unwrap().1;
    println!(
        "\nshape check: work grew {:.1}× from n=2 to n=8 (linear would be 4×, \
         quadratic 16×) — superlinear, as the walk analysis predicts.",
        last / first
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let mut group = c.benchmark_group("thm42_threaded_counter_walk");
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let proto = WalkConsensus::with_bounded_counter(n, seed);
                assert_eq!(proto.object_count(), 1);
                let inputs: Vec<u8> = (0..n).map(|p| (p % 2) as u8).collect();
                let ds = decide_concurrently(&proto, &inputs);
                assert!(ds.windows(2).all(|w| w[0] == w[1]));
            });
        });
    }
    group.finish();
    c.final_summary();
}
