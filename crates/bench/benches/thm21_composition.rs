//! T2.1 — Theorem 2.1: the composition bound g(n)/f(n).
//!
//! If f(n) instances of X solve randomized consensus and g(n) instances
//! of Y are required, any randomized non-blocking implementation of X
//! from Y needs g(n)/f(n) instances. We evaluate the bound over the
//! concrete stacks this workspace ships and time the composed protocol.

use criterion::{BenchmarkId, Criterion};
use randsync_bench::banner;
use randsync_consensus::spec::decide_concurrently;
use randsync_consensus::{Consensus, WalkConsensus};
use randsync_core::bounds::{composition_lower_bound, min_historyless_objects};
use randsync_core::hierarchy::implementation_lower_bound;
use randsync_model::ObjectKind;

fn main() {
    banner(
        "T2.1",
        "composition: implementing counters/fetch&add/CAS from registers",
        "h(n) ≥ g(n)/f(n): with f = 1 (one counter solves consensus) and \
         g = Ω(√n) (registers are historyless), every counter-from-registers \
         implementation needs Ω(√n) registers",
    );

    println!(
        "{:>8} {:>12} {:>16} {:>16}",
        "n", "g(n)=Ω(√n)", "bound g/f (f=1)", "ours (n slots)"
    );
    for n in [4u64, 16, 64, 256, 1024] {
        let g = min_historyless_objects(n);
        let bound = composition_lower_bound(g, 1);
        println!("{:>8} {:>12} {:>16} {:>16}", n, g, bound, n);
        assert!(n >= bound, "our n-register counter violates the bound?!");
        assert_eq!(implementation_lower_bound(ObjectKind::Counter, n), Some(bound));
        assert_eq!(implementation_lower_bound(ObjectKind::CompareSwap, n), Some(bound));
        assert_eq!(implementation_lower_bound(ObjectKind::FetchAdd, n), Some(bound));
    }
    println!(
        "\nshape check: our register-backed counter (n slots) sits between the \
         Ω(√n) floor and the conjectured Θ(n); corollaries 4.1/4.3/4.5 all \
         evaluate to the same floor."
    );

    // Time the composed stack end-to-end: consensus over the n-register
    // snapshot counter (f·h = n registers in total).
    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let mut group = c.benchmark_group("thm21_composed_consensus");
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let proto = WalkConsensus::with_register_counter(n, seed);
                let inputs: Vec<u8> = (0..n).map(|p| (p % 2) as u8).collect();
                let ds = decide_concurrently(&proto, &inputs);
                assert!(ds.windows(2).all(|w| w[0] == w[1]));
                assert_eq!(proto.object_count(), n);
            });
        });
    }
    group.finish();
    c.final_summary();
}
