//! F2 — Figure 2 / Lemma 3.1: the full combiner, with its process
//! budget.
//!
//! Lemma 3.1 bounds the processes consumed by the combination by
//! r² − r + (3v + 3w − v² − w²)/2, which at the Lemma 3.2 entry point
//! (v = w = 1) is r² − r + 2. We attack the write-all/validate-all
//! protocol for growing register counts and report consumption against
//! the budget.

use criterion::{BenchmarkId, Criterion};
use randsync_bench::banner;
use randsync_consensus::model_protocols::Optimistic;
use randsync_core::attack::attack_for_witness;
use randsync_core::bounds::max_identical_processes;
use randsync_core::combine31::CombineLimits;

fn main() {
    banner(
        "F2",
        "Lemma 3.1 combination and its process budget",
        "the combination uses at most r² − r + (3v+3w−v²−w²)/2 identical processes \
         (= r² − r + 2 at the Lemma 3.2 entry point)",
    );

    println!(
        "{:>4} {:>14} {:>14} {:>10} {:>10} {:>10} {:>8}",
        "r", "budget r²−r+2", "procs used", "steps", "splits", "incomp", "clones"
    );
    for r in 1..=5usize {
        let p = Optimistic::new(2, r);
        let (witness, stats) =
            attack_for_witness(&p, &CombineLimits::default()).expect("attack succeeds");
        let budget = max_identical_processes(r as u64) + 1;
        assert!(witness.processes_used as u64 <= budget, "budget violated at r={r}");
        println!(
            "{:>4} {:>14} {:>14} {:>10} {:>10} {:>10} {:>8}",
            r,
            budget,
            witness.processes_used,
            witness.execution.len(),
            stats.subset_splits,
            stats.incomparable_resolutions,
            stats.clones_spawned
        );
    }
    println!("\nshape check: consumption stays within the quadratic budget at every r.");

    let mut c = Criterion::default().sample_size(15).configure_from_args();
    let mut group = c.benchmark_group("fig2_lemma31_attack");
    for r in [1usize, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let p = Optimistic::new(2, r);
            b.iter(|| attack_for_witness(&p, &CombineLimits::default()).unwrap());
        });
    }
    group.finish();
    c.final_summary();
}
