//! T3.7 — Theorem 3.7: the Ω(√n) curve against the O(n) upper bound.
//!
//! The paper's main theorem: a randomized wait-free implementation of
//! n-process consensus from historyless objects requires Ω(√n)
//! instances, while O(n) bounded registers suffice. We print both
//! curves (the gap is the paper's open conjecture of Θ(n)).

use criterion::Criterion;
use randsync_bench::banner;
use randsync_core::bounds::{
    max_processes_historyless, min_historyless_objects, registers_upper_bound,
};

fn main() {
    banner(
        "T3.7",
        "Ω(√n) historyless objects vs the O(n) register upper bound",
        "Ω(√n) objects necessary (Theorem 3.7); O(n) registers sufficient \
         (Section 1); conjectured tight at Θ(n)",
    );

    println!(
        "{:>10} {:>16} {:>16} {:>14}",
        "n", "lower Ω(√n)", "upper O(n)", "ratio upper/lower"
    );
    for exp in (1..=20).step_by(1) {
        let n = 1u64 << exp;
        let lo = min_historyless_objects(n);
        let hi = registers_upper_bound(n);
        println!("{:>10} {:>16} {:>16} {:>14.1}", n, lo, hi, hi as f64 / lo as f64);
    }

    // Verify the √ shape numerically: r(4n)/r(n) → 2.
    let mut ratios = Vec::new();
    for exp in [8u32, 10, 12, 14, 16, 18] {
        let n = 1u64 << exp;
        let ratio = min_historyless_objects(4 * n) as f64 / min_historyless_objects(n) as f64;
        ratios.push(ratio);
    }
    println!(
        "\nshape check: quadrupling n roughly doubles the lower bound: \
         ratios {:?}",
        ratios.iter().map(|r| (r * 100.0).round() / 100.0).collect::<Vec<_>>()
    );
    assert!(ratios.iter().all(|r| (1.8..=2.2).contains(r)));

    // And the threshold identity the adversary is built on.
    for r in 1..=100u64 {
        assert_eq!(min_historyless_objects(max_processes_historyless(r)), r);
    }
    println!("threshold inversion verified for r = 1..=100.");

    let mut c = Criterion::default().configure_from_args();
    c.bench_function("min_historyless_objects(2^20)", |b| {
        b.iter(|| min_historyless_objects(std::hint::black_box(1 << 20)))
    });
    c.final_summary();
}
