//! F3 — Figure 3: the subset case (V ⊆ W, α writes some R ∉ W).
//!
//! Each time the 0-deciding continuation writes a register outside the
//! other side's set, the proof cuts it there, leaves clones poised to
//! re-perform the last writes to V, and grows V by R. For the
//! write-all protocol over r registers the continuation crosses r − 1
//! new registers, so the split count tracks r — which is what we
//! measure.

use criterion::{BenchmarkId, Criterion};
use randsync_bench::banner;
use randsync_consensus::model_protocols::Optimistic;
use randsync_core::attack::attack_for_witness;
use randsync_core::combine31::CombineLimits;

fn main() {
    banner(
        "F3",
        "Figure 3 subset-case splits",
        "α is cut at its first write outside W; clones re-arm V; V grows by one \
         register per split",
    );

    println!("{:>4} {:>10} {:>10} {:>10}", "r", "splits", "clones", "steps");
    let mut prev_splits = 0usize;
    for r in 1..=5usize {
        let p = Optimistic::new(2, r);
        let (witness, stats) =
            attack_for_witness(&p, &CombineLimits::default()).expect("attack succeeds");
        println!(
            "{:>4} {:>10} {:>10} {:>10}",
            r,
            stats.subset_splits,
            stats.clones_spawned,
            witness.execution.len()
        );
        assert!(
            stats.subset_splits >= prev_splits,
            "splits should not shrink as registers grow"
        );
        prev_splits = stats.subset_splits;
    }
    println!("\nshape check: split count grows with the register count, clones track V.");

    let mut c = Criterion::default().sample_size(15).configure_from_args();
    let mut group = c.benchmark_group("fig3_subset_splits");
    for r in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let p = Optimistic::new(2, r);
            b.iter(|| attack_for_witness(&p, &CombineLimits::default()).unwrap());
        });
    }
    group.finish();
    c.final_summary();
}
