//! A — ablation: the walk under a fair scheduler vs a strong adaptive
//! adversary.
//!
//! The paper's model lets the adversary control all scheduling; the
//! walk protocols' O(n²) expected-work claims are *against* such
//! adversaries. This ablation pits the Theorem 4.2 walk against a
//! value-observing contrarian scheduler that drags the cursor toward
//! zero, and against crash injection — the protocol must still
//! terminate consistently, just more slowly.

use criterion::{BenchmarkId, Criterion};
use randsync_bench::banner;
use randsync_consensus::model_protocols::{WalkBacking, WalkModel};
use randsync_model::{
    ContrarianScheduler, CrashScheduler, ProcessId, RandomScheduler, Scheduler, Simulator,
};

fn steps_under<S: Scheduler>(
    p: &WalkModel,
    inputs: &[u8],
    mut sched: S,
    seed: u64,
) -> usize {
    let mut sim = Simulator::new(5_000_000, seed);
    let out = sim.run(p, inputs, &mut sched).expect("simulation runs");
    assert!(out.all_decided, "walk must terminate even against the adversary");
    assert_eq!(out.decided_values().len(), 1, "consistency under adversary");
    out.steps
}

fn main() {
    banner(
        "A",
        "walk consensus vs a strong adaptive adversary (ablation)",
        "the adversary stretches the walk but cannot defeat agreement, validity, \
         or probability-1 termination",
    );

    println!(
        "{:>4} {:>14} {:>16} {:>14} {:>10}",
        "n", "fair steps", "contrarian steps", "crash steps", "slowdown"
    );
    let trials = 10u64;
    for n in [2usize, 3, 4, 6] {
        let p = WalkModel::with_default_margins(n, WalkBacking::BoundedCounter);
        let inputs: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let mut fair = 0usize;
        let mut hostile = 0usize;
        let mut crashy = 0usize;
        for t in 0..trials {
            fair += steps_under(&p, &inputs, RandomScheduler::new(t * 17 + 1), t);
            hostile += steps_under(&p, &inputs, ContrarianScheduler::new(0, t * 17 + 1), t);
            crashy += steps_under(
                &p,
                &inputs,
                CrashScheduler::new(
                    RandomScheduler::new(t * 17 + 1),
                    vec![(3, ProcessId(0))],
                ),
                t,
            );
        }
        println!(
            "{:>4} {:>14} {:>16} {:>14} {:>9.1}x",
            n,
            fair / trials as usize,
            hostile / trials as usize,
            crashy / trials as usize,
            hostile as f64 / fair as f64
        );
    }
    println!(
        "\nshape check: every adversarial run still terminated, agreed, and was \
         valid — the content of randomized wait-freedom. The value-observing \
         contrarian's leverage is small at tiny n (the drift zones dominate) \
         and grows with the width of the coin-flipping band."
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let mut group = c.benchmark_group("ablation_walk_vs_adversary");
    for n in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("fair", n), &n, |b, &n| {
            let p = WalkModel::with_default_margins(n, WalkBacking::BoundedCounter);
            let inputs: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                steps_under(&p, &inputs, RandomScheduler::new(t), t)
            });
        });
        group.bench_with_input(BenchmarkId::new("contrarian", n), &n, |b, &n| {
            let p = WalkModel::with_default_margins(n, WalkBacking::BoundedCounter);
            let inputs: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                steps_under(&p, &inputs, ContrarianScheduler::new(0, t), t)
            });
        });
    }
    group.finish();
    c.final_summary();
}
