//! T4.4 — Theorem 4.4: randomized consensus from ONE fetch&add
//! register.
//!
//! The register implements the Theorem 4.2 counter (INC/DEC/READ are
//! FETCH&ADD(±1)/(0)), so one instance solves randomized n-process
//! consensus — although fetch&add's deterministic consensus number is
//! only 2. Same harness as T4.2, on the fetch&add backing, plus the
//! deterministic-vs-randomized contrast. As in T4.2, the threaded
//! group runs the `WalkModel` state machine through the runtime
//! interpreter over the real fetch&add register — one protocol
//! definition, timed on its production interpreter.

use criterion::{BenchmarkId, Criterion};
use randsync_bench::{banner, walk_profile};
use randsync_consensus::model_protocols::WalkBacking;
use randsync_consensus::spec::decide_concurrently;
use randsync_consensus::{Consensus, WalkConsensus};
use randsync_core::bounds::min_historyless_objects;
use randsync_core::hierarchy::{separation_table, ConsensusNumber};
use randsync_model::ObjectKind;
use randsync_objects::FetchAddRegister;

fn main() {
    banner(
        "T4.4",
        "one fetch&add register suffices",
        "fetch&add (deterministic consensus number 2) solves randomized \
         n-consensus with ONE instance, while Ω(√n) swap registers \
         (same deterministic number) are necessary",
    );

    println!("{:>4} {:>12} {:>12} {:>14}", "n", "mean steps", "max steps", "max |cursor|");
    let trials = 12u64;
    for n in [2usize, 3, 4, 6, 8] {
        let (mean, max, exc) = walk_profile(n, WalkBacking::FetchAdd, trials);
        println!("{:>4} {:>12.1} {:>12} {:>14}", n, mean, max, exc);
    }

    // The separation this theorem is quoted for.
    let table = separation_table();
    let fa = table.iter().find(|p| p.kind == ObjectKind::FetchAdd).unwrap();
    let swap = table.iter().find(|p| p.kind == ObjectKind::SwapRegister).unwrap();
    assert_eq!(fa.consensus_number, ConsensusNumber::Finite(2));
    assert_eq!(swap.consensus_number, ConsensusNumber::Finite(2));
    println!("\n{:>8} {:>16} {:>16}", "n", "fetch&add needs", "swap needs ≥");
    for n in [16u64, 256, 4096, 65536] {
        println!("{:>8} {:>16} {:>16}", n, 1, min_historyless_objects(n));
    }
    println!(
        "\nshape check: equal deterministic power, diverging randomized space — \
         the paper's headline separation."
    );

    let mut c = Criterion::default().sample_size(10).configure_from_args();
    let mut group = c.benchmark_group("thm44_threaded_fetch_add_walk");
    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let proto =
                    WalkConsensus::with_fetch_add(FetchAddRegister::new(0), n, seed);
                assert_eq!(proto.object_count(), 1);
                let inputs: Vec<u8> = (0..n).map(|p| (p % 2) as u8).collect();
                let ds = decide_concurrently(&proto, &inputs);
                assert!(ds.windows(2).all(|w| w[0] == w[1]));
            });
        });
    }
    group.finish();
    c.final_summary();
}
