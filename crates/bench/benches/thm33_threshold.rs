//! T3.3 — Theorem 3.3: the r² − r + 1 identical-process threshold.
//!
//! Theorem 3.3: at most r² − r + 1 identical processes can solve
//! randomized consensus using r read–write registers. The adversary
//! realizes the matching Lemma 3.2 construction; we report, per r, the
//! threshold, the processes the adversary actually consumed, and the
//! witness size — confirming the construction stays within its budget.

use criterion::{BenchmarkId, Criterion};
use randsync_bench::banner;
use randsync_consensus::model_protocols::{Optimistic, Zigzag};
use randsync_core::attack::attack_for_witness;
use randsync_core::bounds::{max_identical_processes, min_registers_identical};
use randsync_core::combine31::CombineLimits;

fn main() {
    banner(
        "T3.3",
        "the identical-process threshold r² − r + 1",
        "no consensus with nondeterministic solo termination from r registers \
         with r² − r + 2 or more identical processes",
    );

    println!(
        "{:>4} {:>18} {:>16} {:>16}",
        "r", "threshold r²−r+1", "optimistic used", "zigzag used"
    );
    for r in 1..=5usize {
        let t = max_identical_processes(r as u64);
        let (w1, _) =
            attack_for_witness(&Optimistic::new(2, r), &CombineLimits::default()).unwrap();
        let (w2, _) =
            attack_for_witness(&Zigzag::new(2, r), &CombineLimits::default()).unwrap();
        assert!(w1.processes_used as u64 <= t + 1);
        assert!(w2.processes_used as u64 <= t + 1);
        println!("{:>4} {:>18} {:>16} {:>16}", r, t, w1.processes_used, w2.processes_used);
    }

    println!("\ninverse view (registers forced by a process count):");
    println!("{:>10} {:>24}", "n", "min registers (identical)");
    for n in [1u64, 2, 4, 8, 16, 64, 256, 1024] {
        println!("{:>10} {:>24}", n, min_registers_identical(n));
    }
    println!("\nshape check: the inverse grows as Θ(√n).");

    let mut c = Criterion::default().sample_size(15).configure_from_args();
    let mut group = c.benchmark_group("thm33_attack_cost");
    for r in [2usize, 3, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            let p = Optimistic::new(2, r);
            b.iter(|| attack_for_witness(&p, &CombineLimits::default()).unwrap());
        });
    }
    group.finish();
    c.final_summary();
}
