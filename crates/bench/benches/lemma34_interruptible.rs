//! L3.4 — Lemma 3.4: constructing interruptible executions.
//!
//! From a configuration with enough poised processes, the lemma builds
//! an interruptible execution with strictly nested piece object sets.
//! We construct them over the write-all protocol for growing register
//! counts and pools, reporting pieces, steps, and the pool's fate —
//! including the insufficiency reports when the pool drops below the
//! lemma's threshold.

use std::collections::BTreeSet;

use criterion::{BenchmarkId, Criterion};
use randsync_bench::banner;
use randsync_consensus::model_protocols::Optimistic;
use randsync_core::interruptible::{construct_interruptible, ExcessCapacity};
use randsync_model::{Configuration, ExploreLimits, ProcessId};

fn build(r: usize, pool: usize) -> Result<(usize, usize), String> {
    let p = Optimistic::new(pool.max(2), r);
    let inputs = vec![0u8; pool];
    let base = Configuration::initial_with_pool(&p, &inputs, pool);
    let procs: BTreeSet<ProcessId> = (0..pool).map(ProcessId).collect();
    match construct_interruptible(
        &p,
        &base,
        BTreeSet::new(),
        procs,
        &ExcessCapacity::default(),
        &ExploreLimits::default(),
    ) {
        Ok((ie, _)) => {
            ie.validate(&p, &base)?;
            Ok((ie.pieces.len(), ie.len()))
        }
        Err(e) => Err(e.to_string()),
    }
}

fn main() {
    banner(
        "L3.4",
        "interruptible-execution construction",
        "given enough poised processes, an interruptible execution with nested \
         pieces exists from any configuration (and the pieces' block writes are \
         the splice points of Lemma 3.5)",
    );

    println!("{:>4} {:>6} {:>10} {:>10} {:>24}", "r", "pool", "pieces", "steps", "outcome");
    for r in 1..=4usize {
        for pool in [1usize, 2, 4, 8, 16] {
            match build(r, pool) {
                Ok((pieces, steps)) => {
                    println!("{:>4} {:>6} {:>10} {:>10} {:>24}", r, pool, pieces, steps, "ok")
                }
                Err(e) => {
                    let short = if e.contains("insufficient") || e.contains("nsufficient") {
                        "insufficient processes"
                    } else {
                        "failed"
                    };
                    println!("{:>4} {:>6} {:>10} {:>10} {:>24}", r, pool, "-", "-", short)
                }
            }
        }
    }
    println!(
        "\nshape check: small pools are reported insufficient (the lemma's \
         threshold in action); ample pools construct validated executions whose \
         piece count grows with r."
    );

    let mut c = Criterion::default().sample_size(20).configure_from_args();
    let mut group = c.benchmark_group("lemma34_construct");
    for r in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| build(r, 16).unwrap());
        });
    }
    group.finish();
    c.final_summary();
}
