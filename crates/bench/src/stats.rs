//! Small summary-statistics helpers for the experiment harness.

/// Summary statistics over a sample of measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (by nearest-rank).
    pub median: f64,
    /// 95th percentile (by nearest-rank).
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Summarize a sample. Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in measurements"));
        let rank = |q: f64| {
            let idx = ((q * count as f64).ceil() as usize).clamp(1, count) - 1;
            sorted[idx]
        };
        Some(Summary {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            median: rank(0.5),
            p95: rank(0.95),
            max: sorted[count - 1],
        })
    }

    /// Summarize integer samples.
    pub fn of_usize(samples: &[usize]) -> Option<Summary> {
        let f: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&f)
    }
}

impl core::fmt::Display for Summary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} sd={:.1} min={:.0} med={:.0} p95={:.0} max={:.0}",
            self.count, self.mean, self.stddev, self.min, self.median, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn known_distribution() {
        let s = Summary::of_usize(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]).unwrap();
        assert_eq!(s.mean, 5.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.median, 5.0, "nearest-rank median of 10 samples");
        assert_eq!(s.p95, 10.0);
        assert!((s.stddev - 3.0276).abs() < 1e-3);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 2.0]).unwrap();
        let txt = s.to_string();
        assert!(txt.contains("n=2"));
        assert!(txt.contains("mean=1.5"));
    }
}
