//! Shared harness utilities for the experiment benches.
//!
//! Each bench target regenerates one artifact of the paper (a figure's
//! construction or a theorem's quantitative content): it prints the
//! measured series in a table mirroring what EXPERIMENTS.md records,
//! then (where timing is meaningful) runs a small Criterion group.

pub mod stats;

pub use stats::Summary;

use randsync_consensus::model_protocols::{WalkBacking, WalkModel};
use randsync_model::{monte_carlo, RandomScheduler, Simulator};

/// Print the standard experiment banner.
pub fn banner(id: &str, title: &str, claim: &str) {
    println!("\n== {id}: {title} ==");
    println!("paper claim: {claim}\n");
}

/// Simulate the walk consensus (model version) for `n` processes with
/// alternating inputs over `trials` seeds; returns
/// `(mean steps, max steps, max |cursor| excursion)`.
///
/// Seeds fan out across worker threads via [`monte_carlo`]; each trial
/// derives its simulator and scheduler streams from its seed alone, so
/// the profile is identical to a sequential loop over `0..trials`.
pub fn walk_profile(n: usize, backing: WalkBacking, trials: u64) -> (f64, usize, i64) {
    let p = WalkModel::with_default_margins(n, backing);
    let inputs: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
    let per_trial = monte_carlo(0..trials, 0, |seed| {
        let mut sim = Simulator::new(2_000_000, seed * 7 + 1);
        let mut sched = RandomScheduler::new(seed * 131 + 3);
        let out = sim.run(&p, &inputs, &mut sched).expect("simulation runs");
        assert!(out.all_decided, "walk did not terminate (n={n}, seed={seed})");
        assert_eq!(out.decided_values().len(), 1, "inconsistent (n={n}, seed={seed})");
        // Excursion from the records: track the cursor value.
        let mut cursor = 0i64;
        let mut exc = 0i64;
        for r in &out.records {
            if let Some((_, op, _resp)) = r.op {
                match op {
                    randsync_model::Operation::Inc => cursor += 1,
                    randsync_model::Operation::Dec => cursor -= 1,
                    randsync_model::Operation::FetchAdd(d) => cursor += d,
                    _ => {}
                }
                exc = exc.max(cursor.abs());
            }
        }
        (out.steps, exc)
    });
    let total: usize = per_trial.iter().map(|(s, _)| s).sum();
    let max_steps = per_trial.iter().map(|(s, _)| *s).max().unwrap_or(0);
    let max_exc = per_trial.iter().map(|(_, e)| *e).max().unwrap_or(0);
    (total as f64 / trials as f64, max_steps, max_exc)
}

/// A simple fixed-width row printer.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Convenience for building a row from displayables.
#[macro_export]
macro_rules! table_row {
    ($($x:expr),* $(,)?) => {
        $crate::row(&[$(format!("{}", $x)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_profile_returns_sane_numbers() {
        let (mean, max, exc) = walk_profile(2, WalkBacking::BoundedCounter, 3);
        assert!(mean > 0.0);
        assert!(max as f64 >= mean);
        // The excursion is bounded by the protocol's range ±3n.
        assert!(exc <= 6);
    }
}
