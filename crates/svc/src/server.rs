//! The job server: TCP accept loop, bounded queue, worker pool,
//! progress routing, and graceful drain.
//!
//! Threading model — three kinds of threads, none shared:
//!
//! * the **accept loop** ([`Server::run`], the caller's thread) polls a
//!   non-blocking listener so it can notice the shutdown flag;
//! * one **connection thread** per client reads frames, answers control
//!   frames (`metrics`, `shutdown`) inline, serves cache hits, and
//!   enqueues everything else — [`std::sync::mpsc::sync_channel`] *is*
//!   the bounded queue, and a failed `try_send` is the backpressure
//!   signal (`overloaded`), so the server never buffers unboundedly;
//! * `workers` **worker threads** share the receiving end behind a
//!   mutex and execute jobs under a per-job wall-clock budget.
//!
//! Shutdown is drain-then-exit: the `shutdown` control frame drops the
//! queue's sender, so workers finish everything already accepted (their
//! `recv` then reports disconnection and they exit), the accept loop
//! stops, and [`Server::run`] joins the workers before returning —
//! every accepted job gets its response frame.
//!
//! Progress streaming rides on the `obs` trace pipeline: the explorer
//! emits an `explore.level` event per BFS level *on the thread running
//! the search*, so a process-global [`TraceSink`] keyed by
//! [`ThreadId`] can route those events to whichever connection the
//! running job belongs to, as `progress` frames.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use randsync_obs::{Field, Json, TraceSink};

use crate::cache::{ResultsCache, DEFAULT_CACHE_CAPACITY};
use crate::job::Job;
use crate::wire::{code, error_frame, ok_frame, progress_frame, Request, WIRE_SCHEMA_VERSION};

/// Server sizing and budgets.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (0 = host parallelism, min 1).
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with `overloaded`.
    pub queue: usize,
    /// Per-job wall-clock budget, enforced cooperatively.
    pub job_budget: Duration,
    /// Results-cache capacity in entries.
    pub cache_capacity: usize,
    /// Directory for `explore` checkpoints (`None` = a pid-unique temp
    /// subdirectory). Process-global and fixed at first use, so only
    /// the first server bound in a process can set it.
    pub checkpoint_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue: 64,
            job_budget: Duration::from_secs(120),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            checkpoint_dir: None,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers != 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// A write handle to one client connection, shared by the connection
/// thread and whichever worker runs that client's jobs. Whole frames
/// are written under the lock, so concurrent frames never interleave.
#[derive(Clone, Debug)]
struct ConnWriter(Arc<Mutex<TcpStream>>);

impl ConnWriter {
    /// Write one frame line; errors are swallowed (a vanished client
    /// must not take a worker down).
    fn send(&self, frame: &str) {
        let mut stream = self.0.lock().expect("connection writer poisoned");
        let _ = stream.write_all(frame.as_bytes());
        let _ = stream.write_all(b"\n");
        let _ = stream.flush();
    }
}

/// One accepted job traveling from a connection thread to a worker.
#[derive(Debug)]
struct Ticket {
    id: Json,
    job: Job,
    conn: ConnWriter,
}

/// Routes the explorer's per-level trace events, emitted on worker
/// threads, to the connection whose job is running there — and is
/// installed once per process, so any number of in-process servers
/// share it (routes are keyed by worker [`ThreadId`], which never
/// collides across servers).
#[derive(Debug, Default)]
struct ProgressRouter {
    routes: Mutex<HashMap<ThreadId, (Json, ConnWriter)>>,
}

impl ProgressRouter {
    fn global() -> &'static Arc<ProgressRouter> {
        static ROUTER: OnceLock<Arc<ProgressRouter>> = OnceLock::new();
        ROUTER.get_or_init(|| Arc::new(ProgressRouter::default()))
    }

    fn register(&self, id: Json, conn: ConnWriter) {
        self.routes
            .lock()
            .expect("progress routes poisoned")
            .insert(std::thread::current().id(), (id, conn));
    }

    fn deregister(&self) {
        self.routes.lock().expect("progress routes poisoned").remove(&std::thread::current().id());
    }
}

impl TraceSink for ProgressRouter {
    fn event(&self, name: &str, _timestamp_micros: u64, fields: &[(&str, Field)]) {
        if name != "explore.level" {
            return;
        }
        let route = {
            let routes = self.routes.lock().expect("progress routes poisoned");
            routes.get(&std::thread::current().id()).cloned()
        };
        let Some((id, conn)) = route else { return };
        let extra: Vec<(&str, Json)> = fields
            .iter()
            .map(|(k, v)| {
                let j = match v {
                    Field::U64(u) => Json::Int(i128::from(*u)),
                    Field::I64(i) => Json::Int(i128::from(*i)),
                    Field::F64(f) => Json::Float(*f),
                    Field::Str(s) => Json::Str(s.clone()),
                    Field::Bool(b) => Json::Bool(*b),
                };
                (*k, j)
            })
            .collect();
        conn.send(&progress_frame(&id, "explore.level", &extra));
    }
}

/// Shared server state: the queue's sending end (taken on shutdown),
/// depth accounting, and the results cache.
#[derive(Debug)]
struct ServerState {
    shutting_down: AtomicBool,
    queue_tx: Mutex<Option<SyncSender<Ticket>>>,
    queue_depth: AtomicUsize,
    cache: ResultsCache,
    job_budget: Duration,
}

impl ServerState {
    fn set_depth_gauge(&self) {
        randsync_obs::global_metrics()
            .gauge("svc.queue.depth")
            .set(self.queue_depth.load(Ordering::SeqCst) as i64);
    }
}

/// A bound job server. [`Server::bind`] claims the address (so an
/// ephemeral `:0` port is known before serving starts);
/// [`Server::run`] serves until a `shutdown` control frame drains it.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    state: Arc<ServerState>,
    queue_rx: Receiver<Ticket>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7450"`, or port `0` for an
    /// ephemeral port) with the given sizing.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        if let Some(dir) = &config.checkpoint_dir {
            crate::cache::set_checkpoint_dir(dir.clone());
        }
        let listener = TcpListener::bind(addr)?;
        let (tx, rx) = std::sync::mpsc::sync_channel(config.queue.max(1));
        let state = Arc::new(ServerState {
            shutting_down: AtomicBool::new(false),
            queue_tx: Mutex::new(Some(tx)),
            queue_depth: AtomicUsize::new(0),
            cache: ResultsCache::new(config.cache_capacity),
            job_budget: config.job_budget,
        });
        Ok(Server { listener, config, state, queue_rx: rx })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until shut down: accept connections, dispatch jobs, then
    /// drain the queue and join the workers. Enables the global metrics
    /// registry and installs the process-wide progress router.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (transient accept errors are
    /// tolerated).
    pub fn run(self) -> std::io::Result<()> {
        randsync_obs::set_metrics_enabled(true);
        randsync_obs::install_trace_sink(ProgressRouter::global().clone());
        self.listener.set_nonblocking(true)?;

        let workers = self.config.effective_workers().max(1);
        randsync_obs::global_metrics().gauge("svc.workers").set(workers as i64);
        let rx = Arc::new(Mutex::new(self.queue_rx));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            handles.push(std::thread::spawn(move || worker_loop(&state, &rx)));
        }

        while !self.state.shutting_down.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    randsync_obs::global_metrics().counter("svc.connections").inc();
                    // Accepted sockets must block: connection threads
                    // read frames, they do not poll.
                    let _ = stream.set_nonblocking(false);
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || connection_loop(&state, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: the sender was dropped by the shutdown handler, so
        // each worker exits once the queue is empty.
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Per-connection read loop: control frames are answered inline; job
/// frames are validated, served from cache, or enqueued.
fn connection_loop(state: &Arc<ServerState>, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else { return };
    let conn = ConnWriter(Arc::new(Mutex::new(write_half)));
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let req = match Request::parse(&line) {
            Ok(req) => req,
            Err(message) => {
                conn.send(&error_frame(&Json::Null, code::BAD_REQUEST, &message));
                continue;
            }
        };
        match req.job.as_str() {
            "metrics" => {
                let snapshot = randsync_obs::global_metrics().snapshot();
                conn.send(&ok_frame(
                    &req.id,
                    "metrics",
                    Json::Obj(vec![
                        (
                            "schema_version".to_string(),
                            Json::Int(i128::from(WIRE_SCHEMA_VERSION)),
                        ),
                        ("metrics".to_string(), snapshot.to_json()),
                    ]),
                ));
            }
            "shutdown" => {
                state.shutting_down.store(true, Ordering::SeqCst);
                // Dropping the sender is the drain signal: workers
                // finish the queue, then their recv disconnects.
                drop(state.queue_tx.lock().expect("queue sender poisoned").take());
                let draining = state.queue_depth.load(Ordering::SeqCst);
                conn.send(&ok_frame(
                    &req.id,
                    "shutdown",
                    Json::Obj(vec![("draining".to_string(), Json::Int(draining as i128))]),
                ));
            }
            _ => submit_job(state, req, &conn),
        }
    }
}

/// Validate, cache-check, and enqueue one job request.
fn submit_job(state: &Arc<ServerState>, req: Request, conn: &ConnWriter) {
    let m = randsync_obs::global_metrics();
    m.counter("svc.jobs.submitted").inc();
    let job = match Job::parse(&req.job, &req.params) {
        Ok(job) => job,
        Err(e) => {
            m.counter("svc.jobs.error").inc();
            conn.send(&error_frame(&req.id, e.code, &e.message));
            return;
        }
    };
    if job.cacheable() {
        if let Some(result) = state.cache.get(&job.cache_key()) {
            m.counter("svc.jobs.ok").inc();
            conn.send(&ok_frame(&req.id, job.kind(), result));
            return;
        }
    }
    let tx = state.queue_tx.lock().expect("queue sender poisoned").clone();
    let Some(tx) = tx else {
        m.counter("svc.jobs.error").inc();
        conn.send(&error_frame(&req.id, code::SHUTTING_DOWN, "server is draining"));
        return;
    };
    match tx.try_send(Ticket { id: req.id.clone(), job, conn: conn.clone() }) {
        Ok(()) => {
            state.queue_depth.fetch_add(1, Ordering::SeqCst);
            state.set_depth_gauge();
            conn.send(&progress_frame(&req.id, "queued", &[]));
        }
        Err(TrySendError::Full(_)) => {
            m.counter("svc.jobs.rejected").inc();
            conn.send(&error_frame(
                &req.id,
                code::OVERLOADED,
                "job queue is full; retry later",
            ));
        }
        Err(TrySendError::Disconnected(_)) => {
            m.counter("svc.jobs.error").inc();
            conn.send(&error_frame(&req.id, code::SHUTTING_DOWN, "server is draining"));
        }
    }
}

/// Worker: pull tickets until the queue disconnects (shutdown drain),
/// executing each under the per-job budget with progress routing.
fn worker_loop(state: &Arc<ServerState>, rx: &Arc<Mutex<Receiver<Ticket>>>) {
    loop {
        // Hold the receiver lock only for the handoff; contention is
        // one lock per job, not per byte of work.
        let ticket = {
            let rx = rx.lock().expect("queue receiver poisoned");
            rx.recv()
        };
        let Ok(ticket) = ticket else { break };
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        state.set_depth_gauge();
        execute_ticket(state, ticket);
    }
}

fn execute_ticket(state: &Arc<ServerState>, ticket: Ticket) {
    let m = randsync_obs::global_metrics();
    let kind = ticket.job.kind();
    ticket.conn.send(&progress_frame(&ticket.id, "started", &[]));
    let router = ProgressRouter::global();
    router.register(ticket.id.clone(), ticket.conn.clone());
    let started = Instant::now();
    let span = randsync_obs::span("svc.job", &[("kind", Field::Str(kind.to_string()))]);
    let outcome = ticket.job.execute(started + state.job_budget);
    drop(span);
    router.deregister();
    m.histogram(&format!("svc.job.micros.{kind}")).observe(started.elapsed().as_micros() as u64);
    match outcome {
        Ok(result) => {
            if ticket.job.cacheable() {
                state.cache.put(ticket.job.cache_key(), result.clone());
            }
            m.counter("svc.jobs.ok").inc();
            ticket.conn.send(&ok_frame(&ticket.id, kind, result));
        }
        Err(e) => {
            m.counter("svc.jobs.error").inc();
            if e.code == code::DEADLINE_EXCEEDED {
                m.counter("svc.jobs.deadline").inc();
            }
            ticket.conn.send(&error_frame(&ticket.id, e.code, &e.message));
        }
    }
}
