//! The job server: a readiness event loop multiplexing every
//! connection, a bounded queue, a worker pool, progress routing, and
//! graceful drain.
//!
//! Threading model — the big change from the original
//! thread-per-connection design is that connections no longer own
//! threads:
//!
//! * the **event loop** ([`Server::run`], the caller's thread) drives
//!   the nonblocking listener *and every accepted connection* through
//!   one `poll` wait per iteration. Each connection is a small state
//!   machine (`Conn`): a [`FrameBuffer`] reassembling
//!   partial frames on the read side, and an explicit write buffer
//!   drained as the socket accepts bytes. Thousands of idle or slow
//!   connections cost table entries, not stacks. Control frames
//!   (`metrics`, `shutdown`), cache hits, request validation, and the
//!   `frontier_*` shard session frames are all answered inline on the
//!   loop; only real jobs travel to the pool —
//!   [`std::sync::mpsc::sync_channel`] *is* the bounded queue, and a
//!   failed `try_send` is the backpressure signal (`overloaded`);
//! * `workers` **worker threads** share the receiving end behind a
//!   mutex and execute jobs under a per-job wall-clock budget. Workers
//!   never touch sockets: they hand finished frames to the loop's
//!   outbox (`FrameSender`) keyed by connection id, and wake it
//!   through a loopback datagram socket (std has no pipe; a connected
//!   `UdpSocket` pair is the zero-dependency self-wake).
//!
//! Frame ordering is a loop-iteration argument: the `queued` progress
//! frame is appended to the connection's write buffer inline while its
//! request is being read, and a worker's `started` frame can only
//! arrive through the outbox, which is drained at the *top* of a later
//! iteration — so `queued` always precedes `started` on the wire.
//!
//! Shutdown is drain-then-exit: the `shutdown` control frame drops the
//! queue's sender, so workers finish everything already accepted and
//! exit. The loop keeps serving reads (new jobs are refused with
//! `shutting_down`) until every worker has exited — checked *before*
//! draining the outbox, so every frame a worker sent is already routed
//! when the check reads true — and every write buffer has flushed;
//! then [`Server::run`] joins the workers and returns. Every accepted
//! job gets its response frame.
//!
//! Progress streaming rides on the `obs` trace pipeline: the explorer
//! emits an `explore.level` event per BFS level *on the worker thread
//! running the search*, so a process-global [`TraceSink`] keyed by
//! [`ThreadId`] routes those events into the outbox as `progress`
//! frames for whichever connection the running job belongs to.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use randsync_obs::{Field, Json, TraceSink};

use crate::cache::{ResultsCache, DEFAULT_CACHE_CAPACITY};
use crate::dist::FrontierSessions;
use crate::job::{ExecContext, Job};
use crate::poll::{self, PollEntry, SysFd};
use crate::wire::{
    code, error_frame, ok_frame, progress_frame, FrameBuffer, Request, WIRE_SCHEMA_VERSION,
};

/// How long the drain phase keeps trying to flush response bytes to
/// clients that have stopped reading before giving up and exiting.
const DRAIN_FLUSH_GRACE: Duration = Duration::from_secs(5);

/// Write-buffer compaction threshold: consumed prefixes shorter than
/// this are kept (a cursor bump is cheaper than a memmove).
const WBUF_COMPACT_BYTES: usize = 64 * 1024;

/// Server sizing and budgets.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (0 = host parallelism, min 1).
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with `overloaded`.
    pub queue: usize,
    /// Per-job wall-clock budget, enforced cooperatively.
    pub job_budget: Duration,
    /// Results-cache capacity in entries.
    pub cache_capacity: usize,
    /// Directory for `explore` checkpoints (`None` = a pid-unique temp
    /// subdirectory). Process-global and fixed at first use, so only
    /// the first server bound in a process can set it.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Maximum simultaneously open connections; one more is accepted
    /// only to be told `overloaded` and closed.
    pub max_conns: usize,
    /// Addresses of frontier shard servers. When non-empty, `valency`,
    /// `explore`, and `resume` jobs run their dedup against these
    /// shards ([`crate::dist::DistributedFrontier`]) instead of
    /// in-process — results stay bit-identical by construction.
    pub frontier_workers: Vec<String>,
    /// When set, every trace event this process emits is also appended
    /// to this JSONL file (in addition to progress routing), so
    /// `randsync trace-tree` can stitch this process into cross-process
    /// causal trees.
    pub trace_path: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue: 64,
            job_budget: Duration::from_secs(120),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            checkpoint_dir: None,
            max_conns: 1024,
            frontier_workers: Vec::new(),
            trace_path: None,
        }
    }
}

impl ServerConfig {
    fn effective_workers(&self) -> usize {
        if self.workers != 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// The worker-to-event-loop outbox: frames keyed by connection id,
/// plus the datagram self-wake that gets the loop out of its poll.
/// `depth` counts frames queued but not yet drained, for the
/// `svc.loop.outbox_depth` gauge.
#[derive(Clone, Debug)]
pub(crate) struct FrameSender {
    tx: Sender<(u64, String)>,
    waker: Arc<UdpSocket>,
    depth: Arc<AtomicUsize>,
}

impl FrameSender {
    /// Queue one frame for `conn` and wake the loop. Errors are
    /// swallowed: a vanished loop or connection must not take a worker
    /// down (matching the old per-connection writer's semantics).
    pub(crate) fn send(&self, conn: u64, frame: String) {
        if self.tx.send((conn, frame)).is_ok() {
            self.depth.fetch_add(1, Ordering::Relaxed);
            let _ = self.waker.send(&[1]);
        }
    }
}

/// One accepted job traveling from the event loop to a worker. `conn`
/// names the connection in the loop's table; by the time the response
/// comes back the connection may be gone, and the frame is dropped.
/// `trace` is the submitting client's trace context, installed on the
/// executing worker thread so the job's spans join the caller's tree.
#[derive(Debug)]
struct Ticket {
    id: Json,
    job: Job,
    conn: u64,
    trace: Option<(u64, u64)>,
}

/// Routes the explorer's per-level trace events, emitted on worker
/// threads, to the connection whose job is running there — and is
/// installed once per process, so any number of in-process servers
/// share it (routes are keyed by worker [`ThreadId`], which never
/// collides across servers).
#[derive(Debug, Default)]
struct ProgressRouter {
    routes: Mutex<HashMap<ThreadId, (Json, u64, FrameSender)>>,
}

impl ProgressRouter {
    fn global() -> &'static Arc<ProgressRouter> {
        static ROUTER: OnceLock<Arc<ProgressRouter>> = OnceLock::new();
        ROUTER.get_or_init(|| Arc::new(ProgressRouter::default()))
    }

    fn register(&self, id: Json, conn: u64, frames: FrameSender) {
        self.routes
            .lock()
            .expect("progress routes poisoned")
            .insert(std::thread::current().id(), (id, conn, frames));
    }

    fn deregister(&self) {
        self.routes.lock().expect("progress routes poisoned").remove(&std::thread::current().id());
    }
}

/// Trace event names the router forwards as progress frames: the
/// explorer's per-level report and the `watch` job's periodic
/// metrics-delta ticks. Everything else (span starts/ends, shard
/// events) stays in the trace pipeline.
const ROUTED_EVENTS: [&str; 2] = ["explore.level", "svc.watch"];

impl TraceSink for ProgressRouter {
    fn event(&self, name: &str, _timestamp_micros: u64, fields: &[(&str, Field)]) {
        if !ROUTED_EVENTS.contains(&name) {
            return;
        }
        let route = {
            let routes = self.routes.lock().expect("progress routes poisoned");
            routes.get(&std::thread::current().id()).cloned()
        };
        let Some((id, conn, frames)) = route else { return };
        let extra: Vec<(&str, Json)> = fields
            .iter()
            .map(|(k, v)| {
                let j = match v {
                    Field::U64(u) => Json::Int(i128::from(*u)),
                    Field::I64(i) => Json::Int(i128::from(*i)),
                    Field::F64(f) => Json::Float(*f),
                    Field::Str(s) => Json::Str(s.clone()),
                    Field::Bool(b) => Json::Bool(*b),
                };
                (*k, j)
            })
            .collect();
        frames.send(conn, progress_frame(&id, name, &extra));
    }
}

/// Hoisted handles for the event loop's own instrumentation. Every
/// update site guards on [`randsync_obs::metrics_enabled`] first, so
/// with metrics off the per-frame cost is one relaxed load + branch
/// (the `ops_svc_loop_metrics` bench pins this).
struct LoopMetrics {
    wakeups: randsync_obs::Counter,
    outbox_depth: randsync_obs::Gauge,
    wbuf_bytes: randsync_obs::Gauge,
    decode_us: randsync_obs::Histogram,
    dispatch_us: randsync_obs::Histogram,
    flush_us: randsync_obs::Histogram,
}

impl LoopMetrics {
    fn new(m: &randsync_obs::MetricsRegistry) -> LoopMetrics {
        LoopMetrics {
            wakeups: m.counter("svc.loop.wakeups"),
            outbox_depth: m.gauge("svc.loop.outbox_depth"),
            wbuf_bytes: m.gauge("svc.loop.wbuf_bytes"),
            decode_us: m.histogram("svc.loop.decode_us"),
            dispatch_us: m.histogram("svc.loop.dispatch_us"),
            flush_us: m.histogram("svc.loop.flush_us"),
        }
    }
}

/// Shared server state: the queue's sending end (taken on shutdown),
/// depth accounting, the results cache, and the frontier shard
/// sessions this server is hosting for remote coordinators.
#[derive(Debug)]
pub(crate) struct ServerState {
    shutting_down: AtomicBool,
    queue_tx: Mutex<Option<SyncSender<Ticket>>>,
    queue_depth: AtomicUsize,
    cache: ResultsCache,
    job_budget: Duration,
    frontier_workers: Vec<String>,
    pub(crate) frontier: FrontierSessions,
}

impl ServerState {
    fn set_depth_gauge(&self) {
        randsync_obs::global_metrics()
            .gauge("svc.queue.depth")
            .set(self.queue_depth.load(Ordering::SeqCst) as i64);
    }
}

/// One connection's state machine in the event loop: the partial-frame
/// read buffer, the pending write bytes, and lifecycle flags. The
/// `readable`/`writable` bits carry the last poll's verdict into the
/// next iteration's processing steps.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    rbuf: FrameBuffer,
    wbuf: Vec<u8>,
    wpos: usize,
    closing: bool,
    readable: bool,
    writable: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: FrameBuffer::new(),
            wbuf: Vec::new(),
            wpos: 0,
            closing: false,
            // Optimistic: the first iteration reads/flushes once and
            // the poll verdict takes over from there.
            readable: true,
            writable: true,
        }
    }

    /// Queue one frame line for writing.
    fn push_frame(&mut self, frame: &str) {
        self.wbuf.extend_from_slice(frame.as_bytes());
        self.wbuf.push(b'\n');
    }

    /// Write as much of the pending buffer as the socket accepts.
    ///
    /// # Errors
    ///
    /// A hard socket error; the connection should be dropped.
    fn try_flush(&mut self) -> std::io::Result<()> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "connection write returned zero",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > WBUF_COMPACT_BYTES {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        Ok(())
    }

    fn flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }
}

#[cfg(unix)]
fn fd_of<T: std::os::fd::AsRawFd>(s: &T) -> SysFd {
    s.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of<T>(_: &T) -> SysFd {
    0
}

/// A bound job server. [`Server::bind`] claims the address (so an
/// ephemeral `:0` port is known before serving starts);
/// [`Server::run`] serves until a `shutdown` control frame drains it.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    state: Arc<ServerState>,
    queue_rx: Receiver<Ticket>,
    frames: FrameSender,
    frame_rx: Receiver<(u64, String)>,
    waker_rx: UdpSocket,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7450"`, or port `0` for an
    /// ephemeral port) with the given sizing.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (TCP listener or the loopback
    /// self-wake socket pair).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        if let Some(dir) = &config.checkpoint_dir {
            crate::cache::set_checkpoint_dir(dir.clone());
        }
        let listener = TcpListener::bind(addr)?;
        let (tx, rx) = std::sync::mpsc::sync_channel(config.queue.max(1));
        let (frame_tx, frame_rx) = std::sync::mpsc::channel();
        let waker_rx = UdpSocket::bind("127.0.0.1:0")?;
        waker_rx.set_nonblocking(true)?;
        let waker_tx = UdpSocket::bind("127.0.0.1:0")?;
        waker_tx.connect(waker_rx.local_addr()?)?;
        waker_tx.set_nonblocking(true)?;
        let state = Arc::new(ServerState {
            shutting_down: AtomicBool::new(false),
            queue_tx: Mutex::new(Some(tx)),
            queue_depth: AtomicUsize::new(0),
            cache: ResultsCache::new(config.cache_capacity),
            job_budget: config.job_budget,
            frontier_workers: config.frontier_workers.clone(),
            frontier: FrontierSessions::default(),
        });
        Ok(Server {
            listener,
            config,
            state,
            queue_rx: rx,
            frames: FrameSender {
                tx: frame_tx,
                waker: Arc::new(waker_tx),
                depth: Arc::new(AtomicUsize::new(0)),
            },
            frame_rx,
            waker_rx,
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until shut down: run the event loop, dispatch jobs, then
    /// drain the queue and join the workers. Enables the global metrics
    /// registry and installs the process-wide progress router.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener or poll errors (transient accept and
    /// per-connection errors are tolerated).
    pub fn run(self) -> std::io::Result<()> {
        randsync_obs::set_metrics_enabled(true);
        let router: Arc<dyn TraceSink> = ProgressRouter::global().clone();
        match &self.config.trace_path {
            Some(path) => {
                let jsonl: Arc<dyn TraceSink> = Arc::new(randsync_obs::JsonlSink::create(path)?);
                randsync_obs::install_trace_sink(Arc::new(randsync_obs::FanoutSink::new(vec![
                    router, jsonl,
                ])));
            }
            None => randsync_obs::install_trace_sink(router),
        }
        self.listener.set_nonblocking(true)?;

        let workers = self.config.effective_workers().max(1);
        let m = randsync_obs::global_metrics();
        m.gauge("svc.workers").set(workers as i64);
        let lm = LoopMetrics::new(m);
        let rx = Arc::new(Mutex::new(self.queue_rx));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            let frames = self.frames.clone();
            handles.push(std::thread::spawn(move || worker_loop(&state, &rx, &frames)));
        }

        let max_conns = self.config.max_conns.max(1);
        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_conn: u64 = 0;
        let mut drain_flush_since: Option<Instant> = None;

        loop {
            if randsync_obs::metrics_enabled() {
                lm.wakeups.inc();
            }
            let draining = self.state.shutting_down.load(Ordering::SeqCst);
            // Worker liveness is sampled BEFORE the outbox drain: a
            // worker's frames are sent before its thread returns, so
            // when this reads true, everything the workers will ever
            // send is already in the outbox and this iteration's drain
            // routes it. (The reverse order could exit with a response
            // frame still in flight.)
            let workers_done = draining && handles.iter().all(|h| h.is_finished());

            // Swallow wake datagrams first, outbox second: a wake sent
            // between the two drains just costs one spurious
            // iteration, whereas the reverse order could eat the wake
            // for a frame this iteration never saw.
            let mut wake = [0u8; 16];
            while self.waker_rx.recv(&mut wake).is_ok() {}
            while let Ok((cid, frame)) = self.frame_rx.try_recv() {
                self.frames.depth.fetch_sub(1, Ordering::Relaxed);
                if let Some(conn) = conns.get_mut(&cid) {
                    conn.push_frame(&frame);
                }
            }
            if randsync_obs::metrics_enabled() {
                lm.outbox_depth.set(self.frames.depth.load(Ordering::Relaxed) as i64);
            }

            // Accept — folded into the readiness loop; over the cap,
            // the socket is accepted just long enough to be told so.
            if !draining {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _peer)) => {
                            m.counter("svc.connections").inc();
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            // Replies are latency-bound (frontier shard
                            // round trips especially); never Nagle them.
                            let _ = stream.set_nodelay(true);
                            next_conn += 1;
                            let mut conn = Conn::new(stream);
                            if conns.len() >= max_conns {
                                m.counter("svc.conns.rejected").inc();
                                conn.push_frame(&error_frame(
                                    &Json::Null,
                                    code::OVERLOADED,
                                    "connection limit reached; retry later",
                                ));
                                conn.closing = true;
                            } else {
                                m.counter("svc.conns.accepted").inc();
                            }
                            conns.insert(next_conn, conn);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
            }

            // Reads: pull everything each readable socket has, then
            // handle the completed frames. Responses produced inline
            // (control frames, cache hits, rejections, `queued`) are
            // appended straight to the connection's write buffer.
            let ids: Vec<u64> = conns.keys().copied().collect();
            for cid in ids {
                let Some(conn) = conns.get_mut(&cid) else { continue };
                if conn.closing || !conn.readable {
                    continue;
                }
                conn.readable = false;
                let mut lines = Vec::new();
                let mut buf = [0u8; 16384];
                loop {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            // Peer EOF: no more requests; pending
                            // responses still flush below.
                            conn.closing = true;
                            break;
                        }
                        Ok(n) => match conn.rbuf.push_bytes(&buf[..n]) {
                            Ok(frames) => lines.extend(frames),
                            Err(overflow) => {
                                conn.push_frame(&error_frame(
                                    &Json::Null,
                                    code::BAD_REQUEST,
                                    &overflow.to_string(),
                                ));
                                conn.closing = true;
                                break;
                            }
                        },
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.closing = true;
                            break;
                        }
                    }
                }
                let mut out = Vec::new();
                for line in &lines {
                    if line.trim().is_empty() {
                        continue;
                    }
                    handle_line(&self.state, cid, line, &mut out, &lm);
                }
                for frame in &out {
                    conn.push_frame(frame);
                }
            }

            // Writes: flush whatever each socket accepts; drop dead
            // connections and completed `closing` ones.
            let mut buffered_bytes = 0i64;
            conns.retain(|_, conn| {
                conn.writable = false;
                if !conn.flushed() {
                    let flush_started =
                        if randsync_obs::metrics_enabled() { Some(Instant::now()) } else { None };
                    let ok = conn.try_flush().is_ok();
                    if let Some(started) = flush_started {
                        lm.flush_us.observe(started.elapsed().as_micros() as u64);
                    }
                    if !ok {
                        return false;
                    }
                }
                buffered_bytes += (conn.wbuf.len() - conn.wpos) as i64;
                !(conn.closing && conn.flushed())
            });
            m.gauge("svc.conns.open").set(conns.len() as i64);
            if randsync_obs::metrics_enabled() {
                lm.wbuf_bytes.set(buffered_bytes);
            }

            if draining && workers_done {
                let flushed = conns.values().all(Conn::flushed);
                let since = *drain_flush_since.get_or_insert_with(Instant::now);
                if flushed || since.elapsed() > DRAIN_FLUSH_GRACE {
                    break;
                }
            }

            // One poll across the listener, the waker, and every
            // connection. During the drain the timeout shortens so
            // worker exits are noticed promptly.
            let mut entries = Vec::with_capacity(conns.len() + 2);
            entries.push(PollEntry::new(fd_of(&self.waker_rx), true, false));
            if !draining {
                entries.push(PollEntry::new(fd_of(&self.listener), true, false));
            }
            let base = entries.len();
            let cids: Vec<u64> = conns.keys().copied().collect();
            for &cid in &cids {
                let conn = &conns[&cid];
                entries.push(PollEntry::new(
                    fd_of(&conn.stream),
                    !conn.closing,
                    !conn.flushed(),
                ));
            }
            let timeout = if draining {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(500)
            };
            poll::wait(&mut entries, timeout)?;
            for (i, &cid) in cids.iter().enumerate() {
                if let Some(conn) = conns.get_mut(&cid) {
                    conn.readable = entries[base + i].readable;
                    conn.writable = entries[base + i].writable;
                }
            }
        }

        for handle in handles {
            let _ = handle.join();
        }
        // The sink lives in a process-global slot that is never
        // dropped, so a buffered JSONL trace file would lose its tail
        // without this explicit flush. Flush-in-place, not clear: other
        // in-process servers (loopback tests) share the slot.
        randsync_obs::flush_trace_sink();
        Ok(())
    }
}

/// Dispatch one request line: control frames, frontier shard frames,
/// and rejections are answered inline (frames pushed to `out`); jobs
/// go to the queue. Decode and dispatch latency feed the
/// `svc.loop.decode_us` / `svc.loop.dispatch_us` histograms.
fn handle_line(
    state: &Arc<ServerState>,
    conn_id: u64,
    line: &str,
    out: &mut Vec<String>,
    lm: &LoopMetrics,
) {
    let instrumented = randsync_obs::metrics_enabled();
    let decode_started = if instrumented { Some(Instant::now()) } else { None };
    let parsed = Request::parse(line);
    if let Some(started) = decode_started {
        lm.decode_us.observe(started.elapsed().as_micros() as u64);
    }
    let req = match parsed {
        Ok(req) => req,
        Err(message) => {
            out.push(error_frame(&Json::Null, code::BAD_REQUEST, &message));
            return;
        }
    };
    let dispatch_started = if instrumented { Some(Instant::now()) } else { None };
    dispatch_request(state, conn_id, req, out);
    if let Some(started) = dispatch_started {
        lm.dispatch_us.observe(started.elapsed().as_micros() as u64);
    }
}

/// The dispatch half of [`handle_line`], once the frame has decoded.
fn dispatch_request(state: &Arc<ServerState>, conn_id: u64, req: Request, out: &mut Vec<String>) {
    match req.job.as_str() {
        "metrics" => {
            let snapshot = randsync_obs::global_metrics().snapshot();
            out.push(ok_frame(
                &req.id,
                "metrics",
                Json::Obj(vec![
                    (
                        "schema_version".to_string(),
                        Json::Int(i128::from(WIRE_SCHEMA_VERSION)),
                    ),
                    ("metrics".to_string(), snapshot.to_json()),
                ]),
            ));
        }
        "shutdown" => {
            state.shutting_down.store(true, Ordering::SeqCst);
            // Dropping the sender is the drain signal: workers finish
            // the queue, then their recv disconnects.
            drop(state.queue_tx.lock().expect("queue sender poisoned").take());
            let draining = state.queue_depth.load(Ordering::SeqCst);
            out.push(ok_frame(
                &req.id,
                "shutdown",
                Json::Obj(vec![("draining".to_string(), Json::Int(draining as i128))]),
            ));
        }
        // Frontier shard frames are answered on the event loop, never
        // queued: a coordinator blocks its level merge on these, and
        // routing them through the worker pool could deadlock a
        // cluster whose pools are all busy coordinating.
        name if name.starts_with("frontier_") => out.push(state.frontier.handle(&req)),
        _ => submit_job(state, conn_id, req, out),
    }
}

/// Validate, cache-check, and enqueue one job request.
fn submit_job(state: &Arc<ServerState>, conn_id: u64, req: Request, out: &mut Vec<String>) {
    let m = randsync_obs::global_metrics();
    m.counter("svc.jobs.submitted").inc();
    let job = match Job::parse(&req.job, &req.params) {
        Ok(job) => job,
        Err(e) => {
            m.counter("svc.jobs.error").inc();
            out.push(error_frame(&req.id, e.code, &e.message));
            return;
        }
    };
    if job.cacheable() {
        if let Some(result) = state.cache.get(&job.cache_key()) {
            m.counter("svc.jobs.ok").inc();
            out.push(ok_frame(&req.id, job.kind(), result));
            return;
        }
    }
    let tx = state.queue_tx.lock().expect("queue sender poisoned").clone();
    let Some(tx) = tx else {
        m.counter("svc.jobs.error").inc();
        out.push(error_frame(&req.id, code::SHUTTING_DOWN, "server is draining"));
        return;
    };
    match tx.try_send(Ticket { id: req.id.clone(), job, conn: conn_id, trace: req.trace }) {
        Ok(()) => {
            state.queue_depth.fetch_add(1, Ordering::SeqCst);
            state.set_depth_gauge();
            out.push(progress_frame(&req.id, "queued", &[]));
        }
        Err(TrySendError::Full(_)) => {
            m.counter("svc.jobs.rejected").inc();
            out.push(error_frame(&req.id, code::OVERLOADED, "job queue is full; retry later"));
        }
        Err(TrySendError::Disconnected(_)) => {
            m.counter("svc.jobs.error").inc();
            out.push(error_frame(&req.id, code::SHUTTING_DOWN, "server is draining"));
        }
    }
}

/// Worker: pull tickets until the queue disconnects (shutdown drain),
/// executing each under the per-job budget with progress routing.
fn worker_loop(state: &Arc<ServerState>, rx: &Arc<Mutex<Receiver<Ticket>>>, frames: &FrameSender) {
    loop {
        // Hold the receiver lock only for the handoff; contention is
        // one lock per job, not per byte of work.
        let ticket = {
            let rx = rx.lock().expect("queue receiver poisoned");
            rx.recv()
        };
        let Ok(ticket) = ticket else { break };
        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
        state.set_depth_gauge();
        execute_ticket(state, ticket, frames);
    }
}

fn execute_ticket(state: &Arc<ServerState>, ticket: Ticket, frames: &FrameSender) {
    let m = randsync_obs::global_metrics();
    let kind = ticket.job.kind();
    frames.send(ticket.conn, progress_frame(&ticket.id, "started", &[]));
    let router = ProgressRouter::global();
    router.register(ticket.id.clone(), ticket.conn, frames.clone());
    let started = Instant::now();
    // Rehydrate the submitting client's trace context on this worker
    // thread: the svc.job span (and every span under it, including
    // remote frontier RPCs) stitches into the caller's causal tree.
    let ctx_guard = ticket
        .trace
        .map(|(t, s)| randsync_obs::push_context(randsync_obs::TraceContext::remote(t, s)));
    let span = randsync_obs::span("svc.job", &[("kind", Field::Str(kind.to_string()))]);
    let ctx = ExecContext { frontier_workers: state.frontier_workers.clone() };
    let outcome = ticket.job.execute_ctx(started + state.job_budget, &ctx);
    drop(span);
    drop(ctx_guard);
    router.deregister();
    m.histogram(&format!("svc.job.micros.{kind}")).observe(started.elapsed().as_micros() as u64);
    match outcome {
        Ok(result) => {
            if ticket.job.cacheable() {
                state.cache.put(ticket.job.cache_key(), result.clone());
            }
            m.counter("svc.jobs.ok").inc();
            frames.send(ticket.conn, ok_frame(&ticket.id, kind, result));
        }
        Err(e) => {
            m.counter("svc.jobs.error").inc();
            if e.code == code::DEADLINE_EXCEEDED {
                m.counter("svc.jobs.deadline").inc();
            }
            frames.send(ticket.conn, error_frame(&ticket.id, e.code, &e.message));
        }
    }
}
