//! A minimal blocking client for the job server, used by the CLI's
//! `submit`/`shutdown` subcommands and the loopback integration tests.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use randsync_obs::Json;

use crate::wire::Request;

/// A completed request: the final `ok`/`error` frame plus any
/// `progress` frames that preceded it.
#[derive(Clone, PartialEq, Debug)]
pub struct Reply {
    /// Whether the final frame's status was `ok`.
    pub ok: bool,
    /// `result` on success, the `error` object (`code`, `message`) on
    /// failure.
    pub body: Json,
    /// The `progress` frames seen for this request, in order.
    pub progress: Vec<Json>,
}

impl Reply {
    /// The error code, when this reply is an error.
    pub fn error_code(&self) -> Option<&str> {
        if self.ok {
            None
        } else {
            self.body.get("code").and_then(Json::as_str)
        }
    }
}

/// One connection to a job server. Requests are correlated by `id`, so
/// several may be pipelined before reading replies.
#[derive(Debug)]
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: i128,
}

impl Client {
    /// The default idle deadline: generous, so a wedged server
    /// surfaces as an error rather than a hang, while long jobs that
    /// stream progress frames stay alive indefinitely.
    pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(600);

    /// Connect to a server with the default idle deadline
    /// ([`Client::DEFAULT_IDLE_TIMEOUT`]).
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Some(Client::DEFAULT_IDLE_TIMEOUT))
    }

    /// Connect with an explicit idle deadline: the longest silence
    /// tolerated between frames (`None` = wait forever). It is an
    /// *idle* deadline, not a total one — every frame the server sends
    /// (including `queued`/`started`/`explore.level` progress) resets
    /// it, so a slow job survives as long as it keeps reporting.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with_timeout<A: ToSocketAddrs>(
        addr: A,
        idle: Option<Duration>,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(idle)?;
        // Frames are small and latency-bound (frontier probe/insert
        // round trips especially); never trade latency for batching.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { writer, reader: BufReader::new(stream), next_id: 0 })
    }

    /// Change the idle deadline of an established connection.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_idle_timeout(&mut self, idle: Option<Duration>) -> std::io::Result<()> {
        self.reader.get_ref().set_read_timeout(idle)
    }

    /// Send one request frame without waiting for its reply; returns
    /// the auto-assigned id to correlate the response with.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send(&mut self, job: &str, params: &Json) -> std::io::Result<Json> {
        self.next_id += 1;
        let id = Json::Int(self.next_id);
        self.send_with_id(&id, job, params)?;
        Ok(id)
    }

    /// Send one request frame with a caller-chosen id. If the calling
    /// thread has a current [`randsync_obs::TraceContext`] (an open
    /// span or an installed root), it rides along on the frame so the
    /// server's spans join the caller's causal tree.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_with_id(&mut self, id: &Json, job: &str, params: &Json) -> std::io::Result<()> {
        let trace = randsync_obs::current_context().map(|ctx| (ctx.trace_id, ctx.span_id));
        let line = Request::render_traced(id, job, params, trace);
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Read the next frame from the server, whatever request it
    /// belongs to.
    ///
    /// # Errors
    ///
    /// I/O failure, closed connection, or an unparseable frame.
    pub fn next_frame(&mut self) -> std::io::Result<Json> {
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if line.trim().is_empty() {
                continue;
            }
            return randsync_obs::parse_json(line.trim()).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unparseable frame from server: {e}"),
                )
            });
        }
    }

    /// Read frames until the final `ok`/`error` frame for `id`,
    /// invoking `on_progress` for each `progress` frame on the way.
    /// Frames for other (pipelined) request ids are skipped.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::next_frame`] failures.
    pub fn wait(
        &mut self,
        id: &Json,
        mut on_progress: impl FnMut(&Json),
    ) -> std::io::Result<Reply> {
        let mut progress = Vec::new();
        loop {
            let frame = self.next_frame()?;
            if frame.get("id") != Some(id) {
                continue;
            }
            match frame.get("status").and_then(Json::as_str) {
                Some("progress") => {
                    on_progress(&frame);
                    progress.push(frame);
                }
                Some("ok") => {
                    let body = frame.get("result").cloned().unwrap_or(Json::Null);
                    return Ok(Reply { ok: true, body, progress });
                }
                Some("error") => {
                    let body = frame.get("error").cloned().unwrap_or(Json::Null);
                    return Ok(Reply { ok: false, body, progress });
                }
                _ => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("frame without a known status: {}", frame.render()),
                    ));
                }
            }
        }
    }

    /// Send one request and block for its reply.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] / [`Client::wait`] failures.
    pub fn request(&mut self, job: &str, params: &Json) -> std::io::Result<Reply> {
        let id = self.send(job, params)?;
        self.wait(&id, |_| {})
    }

    /// Fetch the server's metrics snapshot (the `metrics` control
    /// frame).
    ///
    /// # Errors
    ///
    /// I/O failure, or the server answered with an error frame.
    pub fn metrics(&mut self) -> std::io::Result<Json> {
        let reply = self.request("metrics", &Json::Null)?;
        if !reply.ok {
            return Err(std::io::Error::other(format!(
                "metrics request failed: {}",
                reply.body.render()
            )));
        }
        Ok(reply.body.get("metrics").cloned().unwrap_or(Json::Null))
    }

    /// Ask the server to drain and exit (the `shutdown` control
    /// frame); returns the number of jobs still queued at that moment.
    ///
    /// # Errors
    ///
    /// I/O failure, or the server answered with an error frame.
    pub fn shutdown(&mut self) -> std::io::Result<u64> {
        let reply = self.request("shutdown", &Json::Null)?;
        if !reply.ok {
            return Err(std::io::Error::other(format!(
                "shutdown request failed: {}",
                reply.body.render()
            )));
        }
        Ok(reply.body.get("draining").and_then(Json::as_u64).unwrap_or(0))
    }
}
