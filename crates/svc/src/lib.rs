//! `randsync-svc` — a zero-dependency verification job server.
//!
//! Exposes the randsync verifiers (valency classification, scheduled
//! runs, Monte Carlo sweeps, trace replay, adversarial witness search)
//! as a long-running TCP service speaking a framed JSONL protocol, so
//! repeated queries amortise process start-up and share a results
//! cache. Everything is built on `std`: `std::net` for transport,
//! `std::sync::mpsc` for the bounded queue, `std::thread` for the
//! worker pool, and the `randsync-obs` JSON codec for the wire format.
//!
//! The pieces, bottom-up:
//!
//! * [`wire`] — the frame grammar: requests, `ok`/`error`/`progress`
//!   responses, and the stable error codes ([`wire::code`]);
//! * [`job`] — parsing and executing the job kinds ([`Job`]), each a
//!   thin shim over the library crates, with cooperative wall-clock
//!   budgets;
//! * [`cache`] — the bounded results cache for deterministic jobs
//!   ([`ResultsCache`]);
//! * `poll` (crate-private) — std-only readiness polling (`poll(2)`
//!   on Linux, a bounded sleep-scan elsewhere) for the event loop;
//! * [`server`] — the readiness event loop multiplexing every
//!   connection, the queue, worker pool, progress routing, and
//!   drain-then-exit shutdown ([`Server`]);
//! * [`dist`] — frontier sharding: servers host fingerprint-range
//!   shard sessions, and [`DistributedFrontier`] lets one
//!   coordinator's explore jobs dedup against N of them with
//!   bit-identical results;
//! * [`client`] — a small blocking client ([`Client`]) used by the
//!   CLI and the loopback tests;
//! * [`soak`] — the soak monitor: a mixed-load generator plus a
//!   threshold catalog ([`ThresholdCatalog`]) that judges leaks, p99
//!   ceilings, and cache hit rate over a sampled metrics timeline.
//!
//! ```no_run
//! use randsync_svc::{Client, Server, ServerConfig};
//! use randsync_obs::{parse_json, Json};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default())?;
//! let addr = server.local_addr()?;
//! std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let params = parse_json("{\"protocol\": \"cas\"}").unwrap();
//! let reply = client.request("valency", &params)?;
//! assert_eq!(reply.body.get("initial").and_then(Json::as_str), Some("bivalent"));
//! client.shutdown()?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod cache;
pub mod client;
pub mod dist;
pub mod job;
pub(crate) mod poll;
pub mod server;
pub mod soak;
pub mod wire;

pub use cache::{checkpoint_store, CheckpointStore, ResultsCache};
pub use client::{Client, Reply};
pub use dist::DistributedFrontier;
pub use job::{ExecContext, Job, JobError};
pub use server::{Server, ServerConfig};
pub use soak::{run_soak, SoakConfig, SoakReport, ThresholdCatalog, Violation};
pub use wire::{Request, WIRE_SCHEMA_VERSION};
