//! Typed jobs: parsing request parameters, canonicalizing them for the
//! results cache, and executing them through the library crates.
//!
//! Every job dispatches through `consensus::registry`, so the server
//! duplicates no protocol list: an entry added to the registry is
//! immediately servable. Parameter parsing fills every default, which
//! gives each job a *canonical* parameter object — two requests that
//! differ only in spelling (omitted vs. explicit default) produce the
//! same canonical form and therefore the same cache key.

use std::time::{Duration, Instant};

use randsync_consensus::registry::{self, AttackFamily, ProtocolEntry};
use randsync_core::attack::{attack_identical, AttackOutcome};
use randsync_core::combine31::CombineLimits;
use randsync_core::combine35::{ample_pool, attack_historyless, GeneralOutcome};
use randsync_core::witness::InconsistencyWitness;
use randsync_model::runtime::{replay_execution, Runtime};
use randsync_model::{
    monte_carlo_summary, Checkpoint, CheckpointRequest, DynObject, Execution, ExploreConfig,
    ExploreLimits, ExploreOutcome, Explorer, McSummary, ProcessId, Protocol, SearchMode,
    SharedFrontier, Step,
};
use randsync_obs::{ExecutionTrace, Json};
use randsync_objects::bridge;

use crate::cache::checkpoint_store;
use crate::wire::{code, WIRE_SCHEMA_VERSION};

/// Longest sleep a `sleep` diagnostics job may request.
const MAX_SLEEP_MILLIS: u64 = 60_000;

/// Seeds per slice between deadline checks in `monte_carlo` jobs.
const MC_DEADLINE_SLICE: u64 = 256;

/// Server-side execution context handed to [`Job::execute_ctx`]:
/// facilities that come from the serving process, not the request.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ExecContext {
    /// Frontier shard addresses for distributed exploration
    /// ([`crate::dist::DistributedFrontier`]); empty keeps all dedup
    /// in-process. Results are bit-identical either way, so this is
    /// deliberately *not* part of any cache key.
    pub frontier_workers: Vec<String>,
}

impl ExecContext {
    /// The frontier transport this context prescribes, if any.
    fn frontier_transport(&self) -> Result<Option<SharedFrontier>, JobError> {
        if self.frontier_workers.is_empty() {
            return Ok(None);
        }
        let frontier = crate::dist::DistributedFrontier::connect(&self.frontier_workers)
            .map_err(|e| JobError::failed(format!("cannot reach frontier workers: {e}")))?;
        Ok(Some(SharedFrontier::new(frontier)))
    }
}

/// A job failure: a wire error code plus a message.
#[derive(Clone, PartialEq, Debug)]
pub struct JobError {
    /// One of the [`code`] constants.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl JobError {
    fn bad(message: impl Into<String>) -> JobError {
        JobError { code: code::BAD_REQUEST, message: message.into() }
    }

    fn failed(message: impl Into<String>) -> JobError {
        JobError { code: code::JOB_FAILED, message: message.into() }
    }

    fn deadline() -> JobError {
        JobError {
            code: code::DEADLINE_EXCEEDED,
            message: "job exceeded its wall-clock budget".to_string(),
        }
    }
}

/// One parsed, validated job with every parameter defaulted.
#[derive(Clone, PartialEq, Debug)]
pub enum Job {
    /// Valency analysis (FLP structure) of a registry protocol.
    Valency {
        /// Registry protocol name.
        protocol: String,
        /// Explorer worker threads (0 = host parallelism).
        threads: usize,
        /// Explore the symmetry quotient.
        canonical: bool,
        /// Prune Mazurkiewicz-equivalent interleavings (partial-order
        /// reduction). Changes the visited counts, never the verdicts —
        /// but it is part of the cache key, so a reduced run can never
        /// answer for a raw one.
        por: bool,
        /// Configuration budget.
        max_configs: usize,
        /// Depth budget.
        max_depth: usize,
    },
    /// Full exploration of a registry protocol, optionally out-of-core,
    /// leaving a resumable checkpoint behind when a budget truncates it.
    Explore {
        /// Registry protocol name.
        protocol: String,
        /// Process count (fixed-arity entries ignore it).
        n: usize,
        /// Round/repetition parameter.
        r: usize,
        /// Explorer worker threads (0 = host parallelism).
        threads: usize,
        /// Explore the symmetry quotient.
        canonical: bool,
        /// Prune Mazurkiewicz-equivalent interleavings (partial-order
        /// reduction). Part of the cache key.
        por: bool,
        /// Frontier discipline: "bfs" or "best-first". Guides violation
        /// search only (full sweeps are breadth-first regardless), but
        /// is still keyed so result caches stay mode-exact.
        search: String,
        /// Configuration budget.
        max_configs: usize,
        /// Depth budget.
        max_depth: usize,
        /// Resident-memory budget in bytes (0 = all in RAM).
        mem_budget: usize,
        /// Exploration wall-clock budget in ms (0 = the job budget);
        /// hitting it yields a truncated outcome with a checkpoint, not
        /// an error.
        deadline_millis: u64,
    },
    /// Continue a checkpointed `explore` under fresh budgets.
    Resume {
        /// Checkpoint id issued by a prior truncated `explore`.
        checkpoint: String,
        /// Explorer worker threads (0 = host parallelism).
        threads: usize,
        /// Configuration budget.
        max_configs: usize,
        /// Depth budget.
        max_depth: usize,
        /// Resident-memory budget in bytes (0 = all in RAM).
        mem_budget: usize,
        /// Exploration wall-clock budget in ms (0 = the job budget).
        deadline_millis: u64,
    },
    /// One threaded-runtime execution on real bridged objects.
    Run {
        /// Registry protocol name (must be `runnable`).
        protocol: String,
        /// Process count (fixed-arity entries ignore it).
        n: usize,
        /// Coin-stream master seed.
        seed: u64,
        /// Per-process step budget.
        max_steps: usize,
    },
    /// A batch of seeded simulator trials with the decision histogram.
    MonteCarlo {
        /// Registry protocol name.
        protocol: String,
        /// Process count (fixed-arity entries ignore it).
        n: usize,
        /// Number of trials (seeds `seed..seed+trials`).
        trials: u64,
        /// First seed.
        seed: u64,
        /// Per-trial step budget.
        max_steps: usize,
        /// Worker threads (0 = host parallelism).
        threads: usize,
    },
    /// Re-execute a flight-recorder trace and check its decisions.
    Replay {
        /// The trace file contents (JSONL, embedded in the request).
        trace: String,
    },
    /// Run the applicable lower-bound adversary and verify its witness.
    VerifyWitness {
        /// Registry protocol name (must have an applicable adversary).
        protocol: String,
        /// Round/repetition parameter.
        r: usize,
    },
    /// The protocol registry as structured data.
    Protocols,
    /// Diagnostics: hold a worker for `millis` (cooperatively
    /// cancellable). Exists so operators and the integration tests can
    /// exercise backpressure, budgets, and drain deterministically.
    Sleep {
        /// How long to hold the worker.
        millis: u64,
    },
    /// Telemetry: stream periodic metrics *deltas* as `svc.watch`
    /// progress frames. Each tick snapshots the global registry,
    /// subtracts the previous tick's snapshot, and emits the delta —
    /// the feed behind `randsync top` and the soak monitor.
    Watch {
        /// Milliseconds between ticks.
        interval_millis: u64,
        /// How many deltas to emit before completing.
        ticks: u64,
    },
}

fn get_usize(params: &Json, key: &str, default: usize) -> Result<usize, JobError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| JobError::bad(format!("parameter {key:?} must be a non-negative integer"))),
    }
}

fn get_u64(params: &Json, key: &str, default: u64) -> Result<u64, JobError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| JobError::bad(format!("parameter {key:?} must be a non-negative integer"))),
    }
}

fn get_bool(params: &Json, key: &str, default: bool) -> Result<bool, JobError> {
    match params.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(JobError::bad(format!("parameter {key:?} must be a boolean"))),
    }
}

/// The frontier-discipline parameter: `"bfs"` (default) or
/// `"best-first"`, validated here so the canonical form is one of
/// exactly two strings.
fn get_search(params: &Json) -> Result<String, JobError> {
    match params.get("search") {
        None | Some(Json::Null) => Ok("bfs".to_string()),
        Some(Json::Str(s)) if s == "bfs" || s == "best-first" => Ok(s.clone()),
        Some(_) => {
            Err(JobError::bad("parameter \"search\" must be \"bfs\" or \"best-first\""))
        }
    }
}

/// The canonical search string as an [`ExploreConfig`] mode.
fn search_mode(search: &str) -> SearchMode {
    if search == "best-first" {
        SearchMode::BestFirst
    } else {
        SearchMode::Bfs
    }
}

fn get_protocol(params: &Json, default: &str) -> Result<&'static ProtocolEntry, JobError> {
    let name = match params.get("protocol") {
        None | Some(Json::Null) => default,
        Some(Json::Str(s)) => s.as_str(),
        Some(_) => return Err(JobError::bad("parameter \"protocol\" must be a string")),
    };
    registry::find(name).ok_or_else(|| JobError {
        code: code::UNKNOWN_PROTOCOL,
        message: format!("unknown protocol: {name} (see the protocols job)"),
    })
}

impl Job {
    /// Parse and validate a request's job kind and parameters, filling
    /// every default (the result is the canonical form).
    ///
    /// # Errors
    ///
    /// `unknown_job`, `unknown_protocol`, or `bad_request` — all cheap,
    /// so malformed requests are rejected before touching the queue.
    pub fn parse(kind: &str, params: &Json) -> Result<Job, JobError> {
        match kind {
            "valency" => {
                let entry = get_protocol(params, "cas")?;
                Ok(Job::Valency {
                    protocol: entry.name.to_string(),
                    threads: get_usize(params, "threads", 0)?,
                    canonical: get_bool(params, "canonical", false)?,
                    por: get_bool(params, "por", false)?,
                    max_configs: get_usize(params, "max_configs", 3_000_000)?,
                    max_depth: get_usize(params, "max_depth", 200_000)?,
                })
            }
            "explore" => {
                let entry = get_protocol(params, "cas")?;
                Ok(Job::Explore {
                    protocol: entry.name.to_string(),
                    n: get_usize(params, "n", entry.default_n)?,
                    r: get_usize(params, "r", entry.default_r)?,
                    threads: get_usize(params, "threads", 0)?,
                    canonical: get_bool(params, "canonical", false)?,
                    por: get_bool(params, "por", false)?,
                    search: get_search(params)?,
                    max_configs: get_usize(params, "max_configs", 3_000_000)?,
                    max_depth: get_usize(params, "max_depth", 200_000)?,
                    mem_budget: get_usize(params, "mem_budget", 0)?,
                    deadline_millis: get_u64(params, "deadline_millis", 0)?,
                })
            }
            "resume" => {
                let checkpoint = match params.get("checkpoint") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => {
                        return Err(JobError::bad(
                            "resume needs a string \"checkpoint\" parameter \
                             (the id a truncated explore job returned)",
                        ))
                    }
                };
                Ok(Job::Resume {
                    checkpoint,
                    threads: get_usize(params, "threads", 0)?,
                    max_configs: get_usize(params, "max_configs", 3_000_000)?,
                    max_depth: get_usize(params, "max_depth", 200_000)?,
                    mem_budget: get_usize(params, "mem_budget", 0)?,
                    deadline_millis: get_u64(params, "deadline_millis", 0)?,
                })
            }
            "run" => {
                let entry = get_protocol(params, "cas")?;
                if !entry.runnable {
                    return Err(JobError::bad(format!(
                        "{} is model-only; use the valency or monte_carlo job",
                        entry.name
                    )));
                }
                Ok(Job::Run {
                    protocol: entry.name.to_string(),
                    n: get_usize(params, "n", entry.default_n)?,
                    seed: get_u64(params, "seed", 42)?,
                    max_steps: get_usize(params, "max_steps", 2_000_000)?,
                })
            }
            "monte_carlo" => {
                let entry = get_protocol(params, "cas")?;
                Ok(Job::MonteCarlo {
                    protocol: entry.name.to_string(),
                    n: get_usize(params, "n", entry.default_n)?,
                    trials: get_u64(params, "trials", 256)?,
                    seed: get_u64(params, "seed", 0)?,
                    max_steps: get_usize(params, "max_steps", 100_000)?,
                    threads: get_usize(params, "threads", 0)?,
                })
            }
            "replay" => match params.get("trace") {
                Some(Json::Str(text)) => Ok(Job::Replay { trace: text.clone() }),
                _ => Err(JobError::bad("replay needs a string \"trace\" parameter (JSONL)")),
            },
            "verify_witness" => {
                let entry = get_protocol(params, "optimistic")?;
                if entry.attack == AttackFamily::NotApplicable {
                    return Err(JobError::bad(format!(
                        "no adversary applies to {} (it is correct, or out of scope)",
                        entry.name
                    )));
                }
                Ok(Job::VerifyWitness {
                    protocol: entry.name.to_string(),
                    r: get_usize(params, "r", entry.default_r)?,
                })
            }
            "protocols" => Ok(Job::Protocols),
            "sleep" => {
                let millis = get_u64(params, "millis", 0)?;
                if millis > MAX_SLEEP_MILLIS {
                    return Err(JobError::bad(format!("sleep capped at {MAX_SLEEP_MILLIS} ms")));
                }
                Ok(Job::Sleep { millis })
            }
            "watch" => {
                let interval_millis = get_u64(params, "interval_millis", 500)?;
                let ticks = get_u64(params, "ticks", 8)?;
                if interval_millis == 0 || ticks == 0 {
                    return Err(JobError::bad("watch needs interval_millis >= 1 and ticks >= 1"));
                }
                if interval_millis.saturating_mul(ticks) > MAX_SLEEP_MILLIS {
                    return Err(JobError::bad(format!(
                        "watch capped at {MAX_SLEEP_MILLIS} ms total (interval_millis * ticks)"
                    )));
                }
                Ok(Job::Watch { interval_millis, ticks })
            }
            other => Err(JobError {
                code: code::UNKNOWN_JOB,
                message: format!(
                    "unknown job {other:?} (valency, explore, resume, run, monte_carlo, \
                     replay, verify_witness, protocols, sleep, watch)"
                ),
            }),
        }
    }

    /// The job kind's wire name.
    pub fn kind(&self) -> &'static str {
        match self {
            Job::Valency { .. } => "valency",
            Job::Explore { .. } => "explore",
            Job::Resume { .. } => "resume",
            Job::Run { .. } => "run",
            Job::MonteCarlo { .. } => "monte_carlo",
            Job::Replay { .. } => "replay",
            Job::VerifyWitness { .. } => "verify_witness",
            Job::Protocols => "protocols",
            Job::Sleep { .. } => "sleep",
            Job::Watch { .. } => "watch",
        }
    }

    /// Whether the result is a deterministic function of the canonical
    /// parameters, and therefore cacheable. `run` is excluded (the OS
    /// interleaving is part of the result), as are `replay` (arbitrary
    /// payload size), `sleep` (the point is the wait), and
    /// `explore`/`resume` (a wall-clock budget — and hence host speed —
    /// decides whether they truncate, and each run mints a fresh
    /// checkpoint id), and `watch` (a live feed of the server's own
    /// metrics — caching it would defeat the point).
    pub fn cacheable(&self) -> bool {
        matches!(
            self,
            Job::Valency { .. } | Job::MonteCarlo { .. } | Job::VerifyWitness { .. } | Job::Protocols
        )
    }

    /// The cache key: job kind + canonical parameters + wire schema
    /// version, rendered as one JSON line.
    pub fn cache_key(&self) -> String {
        Json::Obj(vec![
            ("schema".to_string(), Json::Int(i128::from(WIRE_SCHEMA_VERSION))),
            ("job".to_string(), Json::Str(self.kind().to_string())),
            ("params".to_string(), self.canonical_params()),
        ])
        .render()
    }

    /// The fully-defaulted parameter object (stable field order).
    pub fn canonical_params(&self) -> Json {
        let int = |v: usize| Json::Int(v as i128);
        match self {
            Job::Valency { protocol, threads, canonical, por, max_configs, max_depth } => {
                Json::Obj(vec![
                    ("protocol".to_string(), Json::Str(protocol.clone())),
                    ("threads".to_string(), int(*threads)),
                    ("canonical".to_string(), Json::Bool(*canonical)),
                    ("por".to_string(), Json::Bool(*por)),
                    ("max_configs".to_string(), int(*max_configs)),
                    ("max_depth".to_string(), int(*max_depth)),
                ])
            }
            Job::Explore {
                protocol,
                n,
                r,
                threads,
                canonical,
                por,
                search,
                max_configs,
                max_depth,
                mem_budget,
                deadline_millis,
            } => Json::Obj(vec![
                ("protocol".to_string(), Json::Str(protocol.clone())),
                ("n".to_string(), int(*n)),
                ("r".to_string(), int(*r)),
                ("threads".to_string(), int(*threads)),
                ("canonical".to_string(), Json::Bool(*canonical)),
                ("por".to_string(), Json::Bool(*por)),
                ("search".to_string(), Json::Str(search.clone())),
                ("max_configs".to_string(), int(*max_configs)),
                ("max_depth".to_string(), int(*max_depth)),
                ("mem_budget".to_string(), int(*mem_budget)),
                ("deadline_millis".to_string(), Json::Int(i128::from(*deadline_millis))),
            ]),
            Job::Resume { checkpoint, threads, max_configs, max_depth, mem_budget, deadline_millis } => {
                Json::Obj(vec![
                    ("checkpoint".to_string(), Json::Str(checkpoint.clone())),
                    ("threads".to_string(), int(*threads)),
                    ("max_configs".to_string(), int(*max_configs)),
                    ("max_depth".to_string(), int(*max_depth)),
                    ("mem_budget".to_string(), int(*mem_budget)),
                    ("deadline_millis".to_string(), Json::Int(i128::from(*deadline_millis))),
                ])
            }
            Job::Run { protocol, n, seed, max_steps } => Json::Obj(vec![
                ("protocol".to_string(), Json::Str(protocol.clone())),
                ("n".to_string(), int(*n)),
                ("seed".to_string(), Json::Int(i128::from(*seed))),
                ("max_steps".to_string(), int(*max_steps)),
            ]),
            Job::MonteCarlo { protocol, n, trials, seed, max_steps, threads } => Json::Obj(vec![
                ("protocol".to_string(), Json::Str(protocol.clone())),
                ("n".to_string(), int(*n)),
                ("trials".to_string(), Json::Int(i128::from(*trials))),
                ("seed".to_string(), Json::Int(i128::from(*seed))),
                ("max_steps".to_string(), int(*max_steps)),
                ("threads".to_string(), int(*threads)),
            ]),
            Job::Replay { trace } => {
                Json::Obj(vec![("trace".to_string(), Json::Str(trace.clone()))])
            }
            Job::VerifyWitness { protocol, r } => Json::Obj(vec![
                ("protocol".to_string(), Json::Str(protocol.clone())),
                ("r".to_string(), int(*r)),
            ]),
            Job::Protocols => Json::Obj(vec![]),
            Job::Sleep { millis } => {
                Json::Obj(vec![("millis".to_string(), Json::Int(i128::from(*millis)))])
            }
            Job::Watch { interval_millis, ticks } => Json::Obj(vec![
                ("interval_millis".to_string(), Json::Int(i128::from(*interval_millis))),
                ("ticks".to_string(), Json::Int(i128::from(*ticks))),
            ]),
        }
    }

    /// Execute the job with default context (all dedup in-process),
    /// cancelling cooperatively at `deadline`.
    ///
    /// # Errors
    ///
    /// `deadline_exceeded` when the budget ran out first, otherwise
    /// `job_failed` with the underlying failure.
    pub fn execute(&self, deadline: Instant) -> Result<Json, JobError> {
        self.execute_ctx(deadline, &ExecContext::default())
    }

    /// Execute the job under a server's [`ExecContext`], cancelling
    /// cooperatively at `deadline`. With frontier workers configured,
    /// `valency`/`explore`/`resume` dedup against the remote shards;
    /// every result stays bit-identical to the in-process run.
    ///
    /// # Errors
    ///
    /// `deadline_exceeded` when the budget ran out first, otherwise
    /// `job_failed` with the underlying failure.
    pub fn execute_ctx(&self, deadline: Instant, ctx: &ExecContext) -> Result<Json, JobError> {
        match self {
            Job::Valency { protocol, threads, canonical, por, max_configs, max_depth } => {
                let entry = registry::find(protocol).expect("parse validated the name");
                let explorer = Explorer::with_config(ExploreConfig {
                    limits: ExploreLimits { max_configs: *max_configs, max_depth: *max_depth },
                    threads: *threads,
                    canonical: *canonical,
                    por: *por,
                    deadline: Some(deadline),
                    transport: ctx.frontier_transport()?,
                    ..Default::default()
                });
                let analysis = explorer
                    .valency(&entry.build_default(), entry.default_inputs)
                    .ok_or_else(|| {
                        if Instant::now() >= deadline {
                            JobError::deadline()
                        } else {
                            JobError::failed(
                                "state space exceeded the configuration budget; \
                                 valencies would be unsound",
                            )
                        }
                    })?;
                Ok(Json::Obj(vec![
                    ("protocol".to_string(), Json::Str(entry.name.to_string())),
                    ("initial".to_string(), Json::Str(format!("{:?}", analysis.initial))),
                    ("configs".to_string(), Json::Int(analysis.configs as i128)),
                    ("zero_valent".to_string(), Json::Int(analysis.zero_valent as i128)),
                    ("one_valent".to_string(), Json::Int(analysis.one_valent as i128)),
                    ("bivalent".to_string(), Json::Int(analysis.bivalent as i128)),
                    ("stuck".to_string(), Json::Int(analysis.stuck as i128)),
                    (
                        "critical_configs".to_string(),
                        Json::Int(analysis.critical_configs as i128),
                    ),
                    ("bivalent_cycle".to_string(), Json::Bool(analysis.bivalent_cycle)),
                ]))
            }
            Job::Explore {
                protocol,
                n,
                r,
                threads,
                canonical,
                por,
                search,
                max_configs,
                max_depth,
                mem_budget,
                deadline_millis,
            } => {
                let entry = registry::find(protocol).expect("parse validated the name");
                let built = (entry.build)(*n, *r);
                let n_eff = built.num_processes();
                let inputs: Vec<u8> = if n_eff == entry.default_n {
                    entry.default_inputs.to_vec()
                } else {
                    registry::alternating_inputs(n_eff)
                };
                let (id, path) = checkpoint_store().reserve();
                let explorer = Explorer::with_config(ExploreConfig {
                    limits: ExploreLimits { max_configs: *max_configs, max_depth: *max_depth },
                    threads: *threads,
                    canonical: *canonical,
                    por: *por,
                    search: search_mode(search),
                    deadline: Some(explore_deadline(deadline, *deadline_millis)),
                    mem_budget_bytes: *mem_budget,
                    transport: ctx.frontier_transport()?,
                    checkpoint: Some(CheckpointRequest {
                        path: path.clone(),
                        protocol: entry.name.to_string(),
                        n: *n as u32,
                        r: *r as u64,
                        inputs: inputs.clone(),
                    }),
                    ..Default::default()
                });
                let outcome = explorer.explore(&built, &inputs);
                Ok(explore_outcome_json(entry.name, &outcome, commit_checkpoint(&outcome, id, path)))
            }
            Job::Resume { checkpoint, threads, max_configs, max_depth, mem_budget, deadline_millis } => {
                let path = checkpoint_store().get(checkpoint).ok_or_else(|| {
                    JobError::bad(format!(
                        "unknown checkpoint {checkpoint:?} (ids come from truncated explore jobs \
                         on this server)"
                    ))
                })?;
                let ckpt = Checkpoint::load(&path)
                    .map_err(|e| JobError::failed(format!("cannot load checkpoint: {e}")))?;
                let entry = registry::find(&ckpt.protocol).ok_or_else(|| JobError {
                    code: code::UNKNOWN_PROTOCOL,
                    message: format!("checkpoint names unknown protocol {:?}", ckpt.protocol),
                })?;
                let built = (entry.build)(ckpt.n as usize, ckpt.r as usize);
                let (id, repath) = checkpoint_store().reserve();
                let explorer = Explorer::with_config(ExploreConfig {
                    limits: ExploreLimits { max_configs: *max_configs, max_depth: *max_depth },
                    threads: *threads,
                    deadline: Some(explore_deadline(deadline, *deadline_millis)),
                    mem_budget_bytes: *mem_budget,
                    transport: ctx.frontier_transport()?,
                    checkpoint: Some(CheckpointRequest {
                        path: repath.clone(),
                        protocol: entry.name.to_string(),
                        n: ckpt.n,
                        r: ckpt.r,
                        inputs: ckpt.inputs.clone(),
                    }),
                    ..Default::default()
                });
                let outcome = explorer
                    .resume(&built, &ckpt)
                    .map_err(|e| JobError::failed(format!("resume failed: {e}")))?;
                let mut json =
                    explore_outcome_json(entry.name, &outcome, commit_checkpoint(&outcome, id, repath));
                if let Json::Obj(fields) = &mut json {
                    fields.push(("resumed_from".to_string(), Json::Str(checkpoint.clone())));
                }
                Ok(json)
            }
            Job::Run { protocol, n, seed, max_steps } => {
                let entry = registry::find(protocol).expect("parse validated the name");
                let protocol = (entry.build)(*n, entry.default_r);
                let n = protocol.num_processes();
                let inputs: Vec<u8> = if n == entry.default_n {
                    entry.default_inputs.to_vec()
                } else {
                    registry::alternating_inputs(n)
                };
                let objects = bridge::instantiate_all(&protocol)
                    .map_err(|e| JobError::failed(format!("cannot bridge objects: {e}")))?;
                let report =
                    Runtime::new(*seed).max_steps(*max_steps).run(&protocol, &inputs, &objects);
                Ok(Json::Obj(vec![
                    ("protocol".to_string(), Json::Str(entry.name.to_string())),
                    ("n".to_string(), Json::Int(n as i128)),
                    ("seed".to_string(), Json::Int(i128::from(*seed))),
                    (
                        "inputs".to_string(),
                        Json::Arr(inputs.iter().map(|&i| Json::Int(i128::from(i))).collect()),
                    ),
                    (
                        "decisions".to_string(),
                        Json::Arr(
                            report
                                .decisions
                                .iter()
                                .map(|d| match d {
                                    Some(v) => Json::Int(i128::from(*v)),
                                    None => Json::Null,
                                })
                                .collect(),
                        ),
                    ),
                    (
                        "steps".to_string(),
                        Json::Arr(report.steps.iter().map(|&s| Json::Int(s as i128)).collect()),
                    ),
                    (
                        "coin_flips".to_string(),
                        Json::Int(i128::from(report.total_coin_flips())),
                    ),
                    ("all_decided".to_string(), Json::Bool(report.all_decided())),
                    ("consistent".to_string(), Json::Bool(report.consistent())),
                    ("valid".to_string(), Json::Bool(report.valid(&inputs))),
                    (
                        "wall_micros".to_string(),
                        Json::Int(report.wall.as_micros().min(i128::MAX as u128) as i128),
                    ),
                ]))
            }
            Job::MonteCarlo { protocol, n, trials, seed, max_steps, threads } => {
                let entry = registry::find(protocol).expect("parse validated the name");
                let protocol = (entry.build)(*n, entry.default_r);
                let n = protocol.num_processes();
                let inputs: Vec<u8> = if n == entry.default_n {
                    entry.default_inputs.to_vec()
                } else {
                    registry::alternating_inputs(n)
                };
                // Slice the seed range so the wall-clock budget is
                // honored between slices; the merged summary is
                // bit-identical to the unsliced run (McSummary::absorb).
                let mut summary = McSummary::default();
                let mut next = *seed;
                let end = seed.saturating_add(*trials);
                while next < end {
                    if Instant::now() >= deadline {
                        return Err(JobError::deadline());
                    }
                    let hi = next.saturating_add(MC_DEADLINE_SLICE).min(end);
                    summary.absorb(&monte_carlo_summary(
                        &protocol, &inputs, next..hi, *threads, *max_steps,
                    ));
                    next = hi;
                }
                Ok(mc_summary_json(entry.name, n, &summary))
            }
            Job::Replay { trace } => {
                let trace = ExecutionTrace::from_jsonl(trace)
                    .map_err(|e| JobError::bad(format!("bad trace payload: {e}")))?;
                let entry = registry::find(&trace.protocol).ok_or_else(|| JobError {
                    code: code::UNKNOWN_PROTOCOL,
                    message: format!("trace names unknown protocol {:?}", trace.protocol),
                })?;
                let protocol = (entry.build)(trace.n, trace.r);
                let objects = bridge::instantiate_all(&protocol)
                    .map_err(|e| JobError::failed(format!("cannot bridge objects: {e}")))?;
                let refs: Vec<&dyn DynObject> = objects.iter().map(AsRef::as_ref).collect();
                let execution = Execution::from_steps(
                    trace
                        .steps
                        .iter()
                        .map(|&(pid, coin)| Step::with_coin(ProcessId(pid as usize), coin))
                        .collect(),
                );
                let decisions = replay_execution(&protocol, &refs, &trace.inputs, &execution)
                    .map_err(|e| JobError::failed(format!("replay diverged: {e}")))?;
                // Witness traces claim only their designated deciders.
                let matches = if trace.interpreter == "witness" {
                    trace
                        .decisions
                        .iter()
                        .enumerate()
                        .all(|(pid, claim)| claim.is_none() || decisions.get(pid) == Some(claim))
                } else {
                    decisions == trace.decisions
                };
                Ok(Json::Obj(vec![
                    ("protocol".to_string(), Json::Str(entry.name.to_string())),
                    ("interpreter".to_string(), Json::Str(trace.interpreter.clone())),
                    ("steps".to_string(), Json::Int(trace.steps.len() as i128)),
                    (
                        "decisions".to_string(),
                        Json::Arr(
                            decisions
                                .iter()
                                .map(|d| match d {
                                    Some(v) => Json::Int(i128::from(*v)),
                                    None => Json::Null,
                                })
                                .collect(),
                        ),
                    ),
                    ("matches_recording".to_string(), Json::Bool(matches)),
                ]))
            }
            Job::VerifyWitness { protocol, r } => {
                let entry = registry::find(protocol).expect("parse validated the name");
                let built = (entry.build)(entry.default_n, *r);
                verify_witness_result(entry, &built)
            }
            Job::Protocols => {
                let entries = registry::registry()
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(e.name.to_string())),
                            ("objects".to_string(), Json::Str(e.objects.to_string())),
                            ("paper".to_string(), Json::Str(e.paper.to_string())),
                            ("default_n".to_string(), Json::Int(e.default_n as i128)),
                            ("default_r".to_string(), Json::Int(e.default_r as i128)),
                            ("takes_r".to_string(), Json::Bool(e.takes_r)),
                            ("expected_safe".to_string(), Json::Bool(e.expected_safe)),
                            ("runnable".to_string(), Json::Bool(e.runnable)),
                            (
                                "attack".to_string(),
                                Json::Str(e.attack.label().to_string()),
                            ),
                        ])
                    })
                    .collect();
                Ok(Json::Obj(vec![("protocols".to_string(), Json::Arr(entries))]))
            }
            Job::Sleep { millis } => {
                // Sleep in slices so the job budget cancels it too.
                let target = Instant::now() + Duration::from_millis(*millis);
                while Instant::now() < target {
                    if Instant::now() >= deadline {
                        return Err(JobError::deadline());
                    }
                    let left = target - Instant::now();
                    std::thread::sleep(left.min(Duration::from_millis(25)));
                }
                Ok(Json::Obj(vec![(
                    "slept_millis".to_string(),
                    Json::Int(i128::from(*millis)),
                )]))
            }
            Job::Watch { interval_millis, ticks } => {
                let mut prev = randsync_obs::global_metrics().snapshot();
                for tick in 0..*ticks {
                    // Sleep in slices so the job budget cancels a
                    // long watch promptly (same discipline as sleep).
                    let target = Instant::now() + Duration::from_millis(*interval_millis);
                    while Instant::now() < target {
                        if Instant::now() >= deadline {
                            return Err(JobError::deadline());
                        }
                        let left = target - Instant::now();
                        std::thread::sleep(left.min(Duration::from_millis(25)));
                    }
                    let now = randsync_obs::global_metrics().snapshot();
                    let delta = now.delta(&prev);
                    randsync_obs::emit(
                        "svc.watch",
                        &[
                            ("tick", tick.into()),
                            ("delta", delta.to_json().render().into()),
                        ],
                    );
                    prev = now;
                }
                Ok(Json::Obj(vec![
                    ("ticks".to_string(), Json::Int(i128::from(*ticks))),
                    ("interval_millis".to_string(), Json::Int(i128::from(*interval_millis))),
                ]))
            }
        }
    }
}

/// The exploration deadline: the job budget, tightened by an explicit
/// per-exploration budget when one was requested. Hitting it is a
/// *truncated outcome with a checkpoint*, never a job error — the whole
/// point of the explore/resume pair.
fn explore_deadline(job_deadline: Instant, millis: u64) -> Instant {
    if millis == 0 {
        job_deadline
    } else {
        job_deadline.min(Instant::now() + Duration::from_millis(millis))
    }
}

/// Publish the reserved checkpoint id if the engine wrote the file;
/// return the id to report (or `None` for a completed search).
fn commit_checkpoint(outcome: &ExploreOutcome, id: String, path: std::path::PathBuf) -> Option<String> {
    if outcome.checkpoint.is_some() {
        checkpoint_store().commit(id.clone(), path);
        Some(id)
    } else {
        None
    }
}

/// Serialize an [`ExploreOutcome`] as the `explore`/`resume` job
/// result. The `transport_error` field appears only when a
/// distributed frontier actually failed: a successful distributed run
/// must render byte-identically to the single-node run.
fn explore_outcome_json(protocol: &str, o: &ExploreOutcome, checkpoint: Option<String>) -> Json {
    let opt_bool = |v: Option<bool>| match v {
        Some(b) => Json::Bool(b),
        None => Json::Null,
    };
    let mut fields = vec![
        ("protocol".to_string(), Json::Str(protocol.to_string())),
        ("configs".to_string(), Json::Int(o.configs_visited as i128)),
        ("raw_configs".to_string(), Json::Int(o.raw_configs as i128)),
        ("raw_configs_overflow".to_string(), Json::Bool(o.raw_configs_overflow)),
        ("safe".to_string(), Json::Bool(o.is_safe())),
        ("terminal_configs".to_string(), Json::Int(o.terminal_configs as i128)),
        ("truncated".to_string(), Json::Bool(o.truncated)),
        (
            "truncation_reason".to_string(),
            match o.truncation_reason {
                Some(r) => Json::Str(r.to_string()),
                None => Json::Null,
            },
        ),
        ("can_always_reach_termination".to_string(), opt_bool(o.can_always_reach_termination)),
        ("infinite_execution_possible".to_string(), opt_bool(o.infinite_execution_possible)),
        ("canonical".to_string(), Json::Bool(o.canonicalized)),
        ("por".to_string(), Json::Bool(o.por_enabled)),
        ("por_pruned".to_string(), Json::Int(o.por_pruned as i128)),
        ("por_fallbacks".to_string(), Json::Int(o.por_fallbacks as i128)),
        ("arena_bytes".to_string(), Json::Int(o.arena_bytes as i128)),
        ("spill_mode".to_string(), Json::Bool(o.spill_mode)),
        ("spilled_bytes".to_string(), Json::Int(i128::from(o.spilled_bytes))),
        ("dedup_merge_passes".to_string(), Json::Int(i128::from(o.dedup_merge_passes))),
        ("resident_arena_bytes".to_string(), Json::Int(o.resident_arena_bytes as i128)),
        (
            "checkpoint".to_string(),
            match checkpoint {
                Some(id) => Json::Str(id),
                None => Json::Null,
            },
        ),
        (
            "checkpoint_error".to_string(),
            match &o.checkpoint_error {
                Some(e) => Json::Str(e.clone()),
                None => Json::Null,
            },
        ),
    ];
    if let Some(e) = &o.transport_error {
        fields.push(("transport_error".to_string(), Json::Str(e.clone())));
    }
    Json::Obj(fields)
}

/// Serialize an [`McSummary`] — including the per-decision-value
/// histogram — as the `monte_carlo` job's result object.
pub fn mc_summary_json(protocol: &str, n: usize, s: &McSummary) -> Json {
    Json::Obj(vec![
        ("protocol".to_string(), Json::Str(protocol.to_string())),
        ("n".to_string(), Json::Int(n as i128)),
        ("trials".to_string(), Json::Int(i128::from(s.trials))),
        ("decided_runs".to_string(), Json::Int(i128::from(s.decided_runs))),
        ("consistent_runs".to_string(), Json::Int(i128::from(s.consistent_runs))),
        ("total_steps".to_string(), Json::Int(i128::from(s.total_steps))),
        ("max_steps".to_string(), Json::Int(i128::from(s.max_steps))),
        ("mean_steps".to_string(), Json::Float(s.mean_steps())),
        (
            "undecided_processes".to_string(),
            Json::Int(i128::from(s.undecided_processes)),
        ),
        (
            "decision_counts".to_string(),
            Json::Arr(
                s.decision_counts
                    .iter()
                    .map(|&(v, c)| {
                        Json::Arr(vec![Json::Int(i128::from(v)), Json::Int(i128::from(c))])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Run the applicable adversary against `built` and verify the witness
/// through the runtime interpreter on fresh model objects.
fn verify_witness_result<P>(entry: &ProtocolEntry, built: &P) -> Result<Json, JobError>
where
    P: Protocol,
    P::State: Send + Sync,
{
    let family = entry.attack.label();
    let base = |outcome: &str| {
        vec![
            ("protocol".to_string(), Json::Str(entry.name.to_string())),
            ("family".to_string(), Json::Str(family.to_string())),
            ("outcome".to_string(), Json::Str(outcome.to_string())),
        ]
    };
    let witness_fields = |witness: &InconsistencyWitness| -> Result<Vec<(String, Json)>, JobError> {
        witness
            .verify(built)
            .map_err(|e| JobError::failed(format!("witness failed verification: {e}")))?;
        Ok(vec![
            ("steps".to_string(), Json::Int(witness.execution.len() as i128)),
            (
                "processes_used".to_string(),
                Json::Int(witness.processes_used as i128),
            ),
            ("verified".to_string(), Json::Bool(true)),
        ])
    };
    match entry.attack {
        AttackFamily::RegisterIdentical => {
            match attack_identical(built, &CombineLimits::default()) {
                Ok(AttackOutcome::Inconsistent { witness, .. }) => {
                    let mut fields = base("inconsistent");
                    fields.extend(witness_fields(&witness)?);
                    Ok(Json::Obj(fields))
                }
                Ok(AttackOutcome::InvalidSolo { input, decided, .. }) => {
                    let mut fields = base("invalid");
                    fields.push(("input".to_string(), Json::Int(i128::from(input))));
                    fields.push(("decided".to_string(), Json::Int(i128::from(decided))));
                    Ok(Json::Obj(fields))
                }
                Err(e) => Err(JobError::failed(format!("attack failed: {e}"))),
            }
        }
        AttackFamily::Historyless => {
            match attack_historyless(built, ample_pool(1), &ExploreLimits::default()) {
                Ok(GeneralOutcome::Inconsistent { witness, .. }) => {
                    let mut fields = base("inconsistent");
                    fields.extend(witness_fields(&witness)?);
                    Ok(Json::Obj(fields))
                }
                Ok(GeneralOutcome::InvalidExecution { input, decided, .. }) => {
                    let mut fields = base("invalid");
                    fields.push(("input".to_string(), Json::Int(i128::from(input))));
                    fields.push(("decided".to_string(), Json::Int(i128::from(decided))));
                    Ok(Json::Obj(fields))
                }
                Err(e) => Err(JobError::failed(format!("attack failed: {e}"))),
            }
        }
        AttackFamily::NotApplicable => unreachable!("parse rejected non-attackable protocols"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(3600)
    }

    #[test]
    fn canonical_params_fill_defaults_identically() {
        let explicit = randsync_obs::parse_json(
            "{\"protocol\":\"cas\",\"threads\":0,\"canonical\":false,\
             \"por\":false,\"max_configs\":3000000,\"max_depth\":200000}",
        )
        .unwrap();
        let a = Job::parse("valency", &Json::Null).unwrap();
        let b = Job::parse("valency", &explicit).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.cache_key(), b.cache_key());
        assert!(a.cacheable());
    }

    #[test]
    fn strategy_flags_split_the_cache_key() {
        // A POR run changes the visited counts (never the verdicts),
        // so it must never be served from a raw run's cache slot.
        let raw = Job::parse("valency", &Json::Null).unwrap();
        let por_params = Json::Obj(vec![("por".to_string(), Json::Bool(true))]);
        let por = Job::parse("valency", &por_params).unwrap();
        assert_ne!(raw.cache_key(), por.cache_key());

        let raw = Job::parse("explore", &Json::Null).unwrap();
        let por = Job::parse("explore", &por_params).unwrap();
        assert_ne!(raw.cache_key(), por.cache_key());
        let guided_params =
            Json::Obj(vec![("search".to_string(), Json::Str("best-first".to_string()))]);
        let guided = Job::parse("explore", &guided_params).unwrap();
        assert_ne!(raw.cache_key(), guided.cache_key());
        assert_ne!(por.cache_key(), guided.cache_key());
    }

    #[test]
    fn search_parameter_is_validated() {
        let bad = Json::Obj(vec![("search".to_string(), Json::Str("dfs".to_string()))]);
        let err = Job::parse("explore", &bad).unwrap_err();
        assert_eq!(err.code, code::BAD_REQUEST);
        assert!(err.message.contains("best-first"));
    }

    #[test]
    fn por_valency_job_agrees_with_raw() {
        let raw = Job::parse("valency", &Json::Null).unwrap().execute(far()).unwrap();
        let por_params = Json::Obj(vec![("por".to_string(), Json::Bool(true))]);
        let por = Job::parse("valency", &por_params).unwrap().execute(far()).unwrap();
        assert_eq!(
            raw.get("initial").and_then(Json::as_str),
            por.get("initial").and_then(Json::as_str)
        );
        assert_eq!(raw.get("bivalent_cycle"), por.get("bivalent_cycle"));
        assert!(
            por.get("configs").and_then(Json::as_usize)
                <= raw.get("configs").and_then(Json::as_usize)
        );
    }

    #[test]
    fn unknown_jobs_and_protocols_have_distinct_codes() {
        assert_eq!(Job::parse("frobnicate", &Json::Null).unwrap_err().code, code::UNKNOWN_JOB);
        let params = Json::Obj(vec![(
            "protocol".to_string(),
            Json::Str("nonsense".to_string()),
        )]);
        assert_eq!(Job::parse("valency", &params).unwrap_err().code, code::UNKNOWN_PROTOCOL);
    }

    #[test]
    fn model_only_protocols_are_rejected_for_run() {
        let params = Json::Obj(vec![("protocol".to_string(), Json::Str("phase".to_string()))]);
        let err = Job::parse("run", &params).unwrap_err();
        assert_eq!(err.code, code::BAD_REQUEST);
        assert!(err.message.contains("model-only"));
    }

    #[test]
    fn valency_job_matches_direct_library_call() {
        let job = Job::parse("valency", &Json::Null).unwrap();
        let result = job.execute(far()).unwrap();
        let entry = registry::find("cas").unwrap();
        let direct = Explorer::new(ExploreLimits { max_configs: 3_000_000, max_depth: 200_000 })
            .valency(&entry.build_default(), entry.default_inputs)
            .unwrap();
        assert_eq!(result.get("configs").and_then(Json::as_usize), Some(direct.configs));
        assert_eq!(
            result.get("initial").and_then(Json::as_str),
            Some(format!("{:?}", direct.initial).as_str())
        );
    }

    #[test]
    fn expired_deadline_cancels_exploration_and_sleep() {
        let past = Instant::now();
        let job = Job::parse("valency", &Json::Null).unwrap();
        assert_eq!(job.execute(past).unwrap_err().code, code::DEADLINE_EXCEEDED);
        let sleep = Job::Sleep { millis: 5_000 };
        let started = Instant::now();
        assert_eq!(sleep.execute(past).unwrap_err().code, code::DEADLINE_EXCEEDED);
        assert!(started.elapsed() < Duration::from_secs(1), "cancelled promptly");
    }

    #[test]
    fn monte_carlo_job_is_deterministic_and_carries_the_histogram() {
        let params = randsync_obs::parse_json(
            "{\"protocol\":\"cas\",\"trials\":40,\"seed\":5,\"max_steps\":1000}",
        )
        .unwrap();
        let job = Job::parse("monte_carlo", &params).unwrap();
        let a = job.execute(far()).unwrap();
        let b = job.execute(far()).unwrap();
        assert_eq!(a.render(), b.render(), "bit-identical re-execution");
        assert_eq!(a.get("trials").and_then(Json::as_u64), Some(40));
        let counts = a.get("decision_counts").and_then(Json::as_arr).unwrap();
        let total: u64 = counts
            .iter()
            .map(|pair| pair.as_arr().unwrap()[1].as_u64().unwrap())
            .sum();
        assert_eq!(total, 3 * 40, "every cas process decides in every trial");
    }

    #[test]
    fn verify_witness_job_confirms_the_flawed_targets() {
        for name in ["naive", "tasrace"] {
            let params =
                Json::Obj(vec![("protocol".to_string(), Json::Str(name.to_string()))]);
            let job = Job::parse("verify_witness", &params).unwrap();
            let result = job.execute(far()).unwrap();
            assert_eq!(result.get("outcome").and_then(Json::as_str), Some("inconsistent"));
            assert_eq!(result.get("verified"), Some(&Json::Bool(true)), "{name}");
        }
        let params = Json::Obj(vec![("protocol".to_string(), Json::Str("cas".to_string()))]);
        assert_eq!(
            Job::parse("verify_witness", &params).unwrap_err().code,
            code::BAD_REQUEST
        );
    }

    #[test]
    fn protocols_job_mirrors_the_registry() {
        let result = Job::Protocols.execute(far()).unwrap();
        let list = result.get("protocols").and_then(Json::as_arr).unwrap();
        assert_eq!(list.len(), registry::registry().len());
        for (entry, row) in registry::registry().iter().zip(list) {
            assert_eq!(row.get("name").and_then(Json::as_str), Some(entry.name));
            assert_eq!(
                row.get("attack").and_then(Json::as_str),
                Some(entry.attack.label())
            );
        }
    }
}
