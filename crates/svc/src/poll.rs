//! Zero-dependency readiness polling for the event-loop server.
//!
//! The server multiplexes every socket — listener, connections, and
//! the self-wake datagram socket — through one blocking wait per loop
//! iteration. On Linux that wait is the real `poll(2)`: std already
//! links the platform libc, so a direct `extern "C"` declaration (with
//! the `pollfd` layout from `poll.h`) gives us readiness notification
//! without adding any dependency. On other targets the fallback is a
//! bounded sleep-scan: report everything as ready and let nonblocking
//! I/O sort out reality (`WouldBlock` reads/writes are harmless) — a
//! degenerate but correct schedule, throttled by a short sleep.
//!
//! The interface is deliberately stateless: callers rebuild the entry
//! slice each iteration (interest changes every time a write buffer
//! drains), and `wait` fills in per-entry readiness flags.

use std::io;
use std::time::Duration;

/// The raw descriptor type `wait` polls. On the fallback path the
/// value is ignored, so non-unix builds can pass anything.
pub(crate) type SysFd = i32;

/// One descriptor's interest and (after [`wait`]) readiness.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PollEntry {
    pub fd: SysFd,
    pub want_read: bool,
    pub want_write: bool,
    /// Set by [`wait`]: a read (or accept/recv) will not block — also
    /// set on error/hangup so the owner reads the error and closes.
    pub readable: bool,
    /// Set by [`wait`]: a write will not block.
    pub writable: bool,
}

impl PollEntry {
    pub(crate) fn new(fd: SysFd, want_read: bool, want_write: bool) -> PollEntry {
        PollEntry { fd, want_read, want_write, readable: false, writable: false }
    }
}

#[cfg(target_os = "linux")]
mod sys {
    /// `struct pollfd` from `poll.h` (identical layout on every Linux
    /// ABI rust targets: int fd, short events, short revents).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        /// `poll(2)`; `nfds_t` is `unsigned long` on Linux.
        pub fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: i32) -> i32;
    }
}

/// Block until at least one entry is ready or `timeout` elapses,
/// filling each entry's readiness flags. Returns the number of ready
/// descriptors (0 on timeout or on a harmless `EINTR`).
///
/// # Errors
///
/// Propagates a failed `poll(2)` (other than `EINTR`).
#[cfg(target_os = "linux")]
pub(crate) fn wait(entries: &mut [PollEntry], timeout: Duration) -> io::Result<usize> {
    use sys::{POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
    let mut fds: Vec<sys::PollFd> = entries
        .iter()
        .map(|e| sys::PollFd {
            fd: e.fd,
            events: if e.want_read { POLLIN } else { 0 } | if e.want_write { POLLOUT } else { 0 },
            revents: 0,
        })
        .collect();
    let ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
    let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            for e in entries.iter_mut() {
                e.readable = false;
                e.writable = false;
            }
            return Ok(0);
        }
        return Err(err);
    }
    for (e, f) in entries.iter_mut().zip(&fds) {
        // Errors and hangups surface as readability: the owner's next
        // read returns 0/Err and tears the connection down.
        e.readable = f.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0;
        e.writable = f.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0;
    }
    Ok(rc as usize)
}

/// Fallback scheduler for targets without the `poll(2)` declaration:
/// every interest is reported ready and nonblocking I/O resolves the
/// truth; the sleep bounds the scan rate.
#[cfg(not(target_os = "linux"))]
pub(crate) fn wait(entries: &mut [PollEntry], timeout: Duration) -> io::Result<usize> {
    std::thread::sleep(timeout.min(Duration::from_millis(5)));
    let mut ready = 0usize;
    for e in entries.iter_mut() {
        e.readable = e.want_read;
        e.writable = e.want_write;
        if e.readable || e.writable {
            ready += 1;
        }
    }
    Ok(ready)
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn poll_reports_readability_and_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Nothing pending: a pure timeout, nothing readable.
        let mut entries = [PollEntry::new(listener.as_raw_fd(), true, false)];
        let n = wait(&mut entries, Duration::from_millis(10)).unwrap();
        assert_eq!(n, 0);
        assert!(!entries[0].readable);

        // A pending connection makes the listener readable.
        let mut client = TcpStream::connect(addr).unwrap();
        let n = wait(&mut entries, Duration::from_millis(1000)).unwrap();
        assert_eq!(n, 1);
        assert!(entries[0].readable);

        // A connected stream with buffered input is readable; an idle
        // one is writable (send buffer empty) but not readable.
        let (server_side, _) = listener.accept().unwrap();
        let mut entries = [PollEntry::new(server_side.as_raw_fd(), true, true)];
        wait(&mut entries, Duration::from_millis(10)).unwrap();
        assert!(entries[0].writable);
        assert!(!entries[0].readable);
        client.write_all(b"hi").unwrap();
        client.flush().unwrap();
        wait(&mut entries, Duration::from_millis(1000)).unwrap();
        assert!(entries[0].readable);
    }
}
