//! Distributed frontier sharding over the JSONL wire protocol
//! (DESIGN.md §16).
//!
//! The explore engine's level merge talks to its seen-set through the
//! [`FrontierTransport`] seam: one sorted probe batch and one sorted
//! insert batch per BFS level. This module stretches that seam across
//! processes:
//!
//! * **Shard side** — `FrontierSessions` lives inside every server
//!   and answers the four `frontier_*` wire frames *inline on the
//!   event loop* (never through the worker pool, so a busy pool can
//!   never deadlock a coordinator). Each open session is a
//!   [`LocalFrontier`] — the reference implementation of the seam —
//!   keyed by a server-issued session id, so any number of
//!   coordinators can search through one shard concurrently.
//! * **Coordinator side** — [`DistributedFrontier`] implements
//!   [`FrontierTransport`] over N shard connections. Shard `k` of `N`
//!   owns the fingerprint range `[k·2⁶⁴/N, (k+1)·2⁶⁴/N)`; because the
//!   engine's batches arrive sorted by hash, the split is a run of
//!   `partition_point` cuts and the per-shard replies concatenate back
//!   in the original order. The coordinator keeps the arena and the
//!   in-order merge, so *interning order — and therefore every
//!   verdict, valency class, and config count — is bit-identical to a
//!   single-node run*; only membership queries are remote.
//!
//! Wire frames (each a normal request, answered with `ok`/`error`):
//!
//! ```text
//! frontier_open    {stride}                            -> {session}
//! frontier_probe   {session, hashes, words}            -> {found: [idx|null, ...]}
//! frontier_insert  {session, hashes, indices, words}   -> {}
//! frontier_close   {session}                           -> {}
//! ```
//!
//! Transport failures surface as [`TransportError`]; the engine stops
//! at the level boundary and reports a truncated outcome — never a
//! wrong one.

use std::collections::HashMap;
use std::net::ToSocketAddrs;
use std::sync::Mutex;
use std::time::Instant;

use randsync_model::{FrontierTransport, LocalFrontier, TransportError};
use randsync_obs::Json;

use crate::client::Client;
use crate::wire::{code, error_frame, ok_frame, Request};

/// Keys per `frontier_probe`/`frontier_insert` frame. Bounds frame
/// size (a key is ~40 bytes of JSON) far below the wire's 64 MiB frame
/// cap while keeping per-frame overhead amortized.
const MAX_KEYS_PER_FRAME: usize = 32_768;

/// The fingerprint shard that owns hash `h` among `n` shards: the
/// multiply-shift range split (monotone in `h`, so sorted batches
/// split into contiguous per-shard runs).
fn shard_of(h: u64, n: usize) -> usize {
    ((u128::from(h) * n as u128) >> 64) as usize
}

// ---------------------------------------------------------------------
// Shard side: sessions hosted by the server's event loop.
// ---------------------------------------------------------------------

/// The frontier shard sessions a server hosts: session id → store.
#[derive(Debug, Default)]
pub(crate) struct FrontierSessions {
    inner: Mutex<Sessions>,
}

#[derive(Debug, Default)]
struct Sessions {
    next: u64,
    open: HashMap<u64, LocalFrontier>,
}

impl FrontierSessions {
    /// Answer one `frontier_*` request with a complete response frame.
    /// When the frame carries a trace context and a sink is installed,
    /// the work runs under a span in the *coordinator's* causal tree —
    /// this is how a stalled shard becomes visible from outside.
    pub(crate) fn handle(&self, req: &Request) -> String {
        let _ctx = req
            .trace
            .map(|(t, s)| randsync_obs::push_context(randsync_obs::TraceContext::remote(t, s)));
        let _span = if randsync_obs::tracing_active() {
            Some(randsync_obs::span(&req.job, &[]))
        } else {
            None
        };
        match self.dispatch(req) {
            Ok(result) => ok_frame(&req.id, &req.job, result),
            Err(message) => error_frame(&req.id, code::BAD_REQUEST, &message),
        }
    }

    fn dispatch(&self, req: &Request) -> Result<Json, String> {
        let m = randsync_obs::global_metrics();
        let mut sessions = self.inner.lock().expect("frontier sessions poisoned");
        match req.job.as_str() {
            "frontier_open" => {
                let stride = get_usize(&req.params, "stride")?;
                let mut store = LocalFrontier::new();
                store.open(stride).map_err(|e| e.to_string())?;
                sessions.next += 1;
                let id = sessions.next;
                sessions.open.insert(id, store);
                m.gauge("svc.frontier.sessions").set(sessions.open.len() as i64);
                Ok(Json::Obj(vec![("session".to_string(), Json::Int(i128::from(id)))]))
            }
            "frontier_probe" => {
                let id = get_u64(&req.params, "session")?;
                let hashes = u64_array(&req.params, "hashes")?;
                let words = u32_array(&req.params, "words")?;
                let store = sessions
                    .open
                    .get_mut(&id)
                    .ok_or_else(|| format!("unknown frontier session {id}"))?;
                let found = store.probe_sorted(&hashes, &words).map_err(|e| e.to_string())?;
                m.counter("svc.frontier.probes").inc();
                Ok(Json::Obj(vec![(
                    "found".to_string(),
                    Json::Arr(
                        found
                            .iter()
                            .map(|slot| match slot {
                                Some(idx) => Json::Int(i128::from(*idx)),
                                None => Json::Null,
                            })
                            .collect(),
                    ),
                )]))
            }
            "frontier_insert" => {
                let id = get_u64(&req.params, "session")?;
                let hashes = u64_array(&req.params, "hashes")?;
                let indices = u32_array(&req.params, "indices")?;
                let words = u32_array(&req.params, "words")?;
                let store = sessions
                    .open
                    .get_mut(&id)
                    .ok_or_else(|| format!("unknown frontier session {id}"))?;
                store.insert_sorted(&hashes, &indices, &words).map_err(|e| e.to_string())?;
                m.counter("svc.frontier.inserts").inc();
                Ok(Json::Obj(vec![]))
            }
            "frontier_close" => {
                let id = get_u64(&req.params, "session")?;
                sessions
                    .open
                    .remove(&id)
                    .ok_or_else(|| format!("unknown frontier session {id}"))?;
                m.gauge("svc.frontier.sessions").set(sessions.open.len() as i64);
                Ok(Json::Obj(vec![]))
            }
            other => Err(format!(
                "unknown frontier frame {other:?} (frontier_open, frontier_probe, \
                 frontier_insert, frontier_close)"
            )),
        }
    }
}

fn get_usize(params: &Json, key: &str) -> Result<usize, String> {
    params
        .get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("parameter {key:?} must be a non-negative integer"))
}

fn get_u64(params: &Json, key: &str) -> Result<u64, String> {
    params
        .get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("parameter {key:?} must be a non-negative integer"))
}

fn u64_array(params: &Json, key: &str) -> Result<Vec<u64>, String> {
    let arr = params
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("parameter {key:?} must be an array of integers"))?;
    arr.iter()
        .map(|v| v.as_u64().ok_or_else(|| format!("parameter {key:?} holds a non-integer")))
        .collect()
}

fn u32_array(params: &Json, key: &str) -> Result<Vec<u32>, String> {
    let values = u64_array(params, key)?;
    values
        .into_iter()
        .map(|v| u32::try_from(v).map_err(|_| format!("parameter {key:?} overflows u32")))
        .collect()
}

// ---------------------------------------------------------------------
// Coordinator side: the remote transport.
// ---------------------------------------------------------------------

/// One shard connection with its open session.
#[derive(Debug)]
struct Shard {
    addr: String,
    client: Client,
    session: Option<u64>,
}

impl Shard {
    fn request(&mut self, job: &str, params: Json) -> Result<Json, TransportError> {
        let err = |e: &dyn std::fmt::Display| {
            TransportError::new(format!("frontier shard {}: {e}", self.addr))
        };
        let reply = self.client.request(job, &params).map_err(|e| err(&e))?;
        if !reply.ok {
            return Err(err(&reply.body.render()));
        }
        Ok(reply.body)
    }
}

/// Hoisted metric handles for the coordinator side. Every update
/// guards on [`randsync_obs::metrics_enabled`], so disabled cost on
/// the RPC path is one relaxed load + branch.
#[derive(Debug)]
struct DistMetrics {
    /// Per-RPC `frontier_probe` round-trip latency.
    probe_us: randsync_obs::Histogram,
    /// Per-RPC `frontier_insert` round-trip latency.
    insert_us: randsync_obs::Histogram,
    /// Keys per wire frame (chunking granularity actually seen).
    chunk_keys: randsync_obs::Histogram,
    /// Exchange rounds measured for slowest-shard attribution.
    rounds: randsync_obs::Counter,
    /// `svc.dist.slowest.shard<k>`: rounds in which shard `k` was the
    /// slowest — per-BFS-level stall attribution.
    slowest: Vec<randsync_obs::Counter>,
}

impl DistMetrics {
    fn new(shard_count: usize) -> DistMetrics {
        let m = randsync_obs::global_metrics();
        DistMetrics {
            probe_us: m.histogram("svc.dist.probe_us"),
            insert_us: m.histogram("svc.dist.insert_us"),
            chunk_keys: m.histogram("svc.dist.chunk_keys"),
            rounds: m.counter("svc.dist.rounds"),
            slowest: (0..shard_count)
                .map(|k| m.counter(&format!("svc.dist.slowest.shard{k}")))
                .collect(),
        }
    }

    /// Credit the slowest shard of one exchange round.
    fn attribute_round(&self, per_shard_us: &[u64]) {
        let Some((k, total)) =
            per_shard_us.iter().enumerate().max_by_key(|&(_, &us)| us)
        else {
            return;
        };
        if *total == 0 {
            return;
        }
        self.rounds.inc();
        if let Some(c) = self.slowest.get(k) {
            c.inc();
        }
    }
}

/// A [`FrontierTransport`] that shards the seen-set across N server
/// processes by fingerprint range — see the module docs for the
/// protocol and the bit-identity argument.
#[derive(Debug)]
pub struct DistributedFrontier {
    shards: Vec<Shard>,
    stride: usize,
    metrics: DistMetrics,
}

impl DistributedFrontier {
    /// Connect to the shard servers, in ownership order: `addrs[k]`
    /// owns the `k`-th fingerprint range.
    ///
    /// # Errors
    ///
    /// Propagates connection failures; rejects an empty address list.
    pub fn connect<A: ToSocketAddrs + std::fmt::Display>(
        addrs: &[A],
    ) -> std::io::Result<DistributedFrontier> {
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "distributed frontier needs at least one shard address",
            ));
        }
        let mut shards = Vec::with_capacity(addrs.len());
        for addr in addrs {
            shards.push(Shard {
                addr: addr.to_string(),
                client: Client::connect(addr)?,
                session: None,
            });
        }
        let metrics = DistMetrics::new(shards.len());
        Ok(DistributedFrontier { shards, stride: 0, metrics })
    }

    /// Number of shard connections.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The contiguous per-shard runs of a hash-sorted batch: for each
    /// shard in order, the half-open index range it owns.
    fn split_ranges(&self, hashes: &[u64]) -> Vec<std::ops::Range<usize>> {
        let n = self.shards.len();
        let mut ranges = Vec::with_capacity(n);
        let mut start = 0usize;
        for k in 0..n {
            let end = if k + 1 == n {
                hashes.len()
            } else {
                start + hashes[start..].partition_point(|&h| shard_of(h, n) <= k)
            };
            ranges.push(start..end);
            start = end;
        }
        ranges
    }

    fn close_sessions(&mut self) -> Result<(), TransportError> {
        let mut first_err = None;
        for shard in &mut self.shards {
            if let Some(session) = shard.session.take() {
                let params =
                    Json::Obj(vec![("session".to_string(), Json::Int(i128::from(session)))]);
                if let Err(e) = shard.request("frontier_close", params) {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Engine error paths can skip `close()`; sessions must not leak on
/// the shards, so dropping the transport closes them best-effort.
impl Drop for DistributedFrontier {
    fn drop(&mut self) {
        let _ = self.close_sessions();
    }
}

fn int_array(values: impl Iterator<Item = i128>) -> Json {
    Json::Arr(values.map(Json::Int).collect())
}

impl FrontierTransport for DistributedFrontier {
    fn open(&mut self, stride: usize) -> Result<(), TransportError> {
        // A re-open (resume, or a retried search on one transport)
        // discards any prior sessions first.
        self.close_sessions()?;
        self.stride = stride;
        for shard in &mut self.shards {
            let params = Json::Obj(vec![("stride".to_string(), Json::Int(stride as i128))]);
            let body = shard.request("frontier_open", params)?;
            let session = body.get("session").and_then(Json::as_u64).ok_or_else(|| {
                TransportError::new(format!(
                    "frontier shard {}: malformed open reply",
                    shard.addr
                ))
            })?;
            shard.session = Some(session);
        }
        Ok(())
    }

    fn probe_sorted(
        &mut self,
        hashes: &[u64],
        words: &[u32],
    ) -> Result<Vec<Option<u32>>, TransportError> {
        let stride = self.stride;
        if stride == 0 || words.len() != hashes.len() * stride {
            return Err(TransportError::new("malformed probe batch"));
        }
        let ranges = self.split_ranges(hashes);
        let instrumented = randsync_obs::metrics_enabled();
        let mut per_shard_us = vec![0u64; self.shards.len()];
        let mut found = Vec::with_capacity(hashes.len());
        for (k, range) in ranges.into_iter().enumerate() {
            let shard = &mut self.shards[k];
            let session = shard.session.ok_or_else(|| {
                TransportError::new(format!("frontier shard {}: no open session", shard.addr))
            })?;
            let mut at = range.start;
            while at < range.end {
                let hi = (at + MAX_KEYS_PER_FRAME).min(range.end);
                let params = Json::Obj(vec![
                    ("session".to_string(), Json::Int(i128::from(session))),
                    (
                        "hashes".to_string(),
                        int_array(hashes[at..hi].iter().map(|&h| i128::from(h))),
                    ),
                    (
                        "words".to_string(),
                        int_array(
                            words[at * stride..hi * stride].iter().map(|&w| i128::from(w)),
                        ),
                    ),
                ]);
                let rpc_started = if instrumented { Some(Instant::now()) } else { None };
                let body = shard.request("frontier_probe", params)?;
                if let Some(started) = rpc_started {
                    let us = started.elapsed().as_micros() as u64;
                    self.metrics.probe_us.observe(us);
                    self.metrics.chunk_keys.observe((hi - at) as u64);
                    per_shard_us[k] += us;
                }
                let slots = body.get("found").and_then(Json::as_arr).ok_or_else(|| {
                    TransportError::new(format!(
                        "frontier shard {}: malformed probe reply",
                        shard.addr
                    ))
                })?;
                if slots.len() != hi - at {
                    return Err(TransportError::new(format!(
                        "frontier shard {}: probe reply length mismatch",
                        shard.addr
                    )));
                }
                for slot in slots {
                    found.push(match slot {
                        Json::Null => None,
                        v => Some(v.as_u64().and_then(|u| u32::try_from(u).ok()).ok_or_else(
                            || {
                                TransportError::new(format!(
                                    "frontier shard {}: non-index probe slot",
                                    shard.addr
                                ))
                            },
                        )?),
                    });
                }
                at = hi;
            }
        }
        if instrumented {
            self.metrics.attribute_round(&per_shard_us);
        }
        Ok(found)
    }

    fn insert_sorted(
        &mut self,
        hashes: &[u64],
        indices: &[u32],
        words: &[u32],
    ) -> Result<(), TransportError> {
        let stride = self.stride;
        if stride == 0 || indices.len() != hashes.len() || words.len() != hashes.len() * stride
        {
            return Err(TransportError::new("malformed insert batch"));
        }
        let ranges = self.split_ranges(hashes);
        let instrumented = randsync_obs::metrics_enabled();
        for (k, range) in ranges.into_iter().enumerate() {
            let shard = &mut self.shards[k];
            let session = shard.session.ok_or_else(|| {
                TransportError::new(format!("frontier shard {}: no open session", shard.addr))
            })?;
            let mut at = range.start;
            while at < range.end {
                let hi = (at + MAX_KEYS_PER_FRAME).min(range.end);
                let params = Json::Obj(vec![
                    ("session".to_string(), Json::Int(i128::from(session))),
                    (
                        "hashes".to_string(),
                        int_array(hashes[at..hi].iter().map(|&h| i128::from(h))),
                    ),
                    (
                        "indices".to_string(),
                        int_array(indices[at..hi].iter().map(|&i| i128::from(i))),
                    ),
                    (
                        "words".to_string(),
                        int_array(
                            words[at * stride..hi * stride].iter().map(|&w| i128::from(w)),
                        ),
                    ),
                ]);
                let rpc_started = if instrumented { Some(Instant::now()) } else { None };
                shard.request("frontier_insert", params)?;
                if let Some(started) = rpc_started {
                    self.metrics.insert_us.observe(started.elapsed().as_micros() as u64);
                    self.metrics.chunk_keys.observe((hi - at) as u64);
                }
                at = hi;
            }
        }
        Ok(())
    }

    fn close(&mut self) -> Result<(), TransportError> {
        self.close_sessions()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ownership_is_monotone_and_covers_all_shards() {
        for n in 1..=5 {
            assert_eq!(shard_of(0, n), 0);
            assert_eq!(shard_of(u64::MAX, n), n - 1);
            let mut prev = 0;
            for h in (0..=u64::MAX).step_by(1 << 58) {
                let k = shard_of(h, n);
                assert!(k >= prev && k < n, "h={h} n={n} k={k}");
                prev = k;
            }
        }
    }

    #[test]
    fn frontier_sessions_answer_the_wire_protocol() {
        let sessions = FrontierSessions::default();
        let parse = |s: &str| randsync_obs::parse_json(s).unwrap();

        let open = parse(&sessions.handle(&Request {
            id: Json::Int(1),
            job: "frontier_open".to_string(),
            params: parse("{\"stride\": 2}"),
            trace: None,
        }));
        assert_eq!(open.get("status").and_then(Json::as_str), Some("ok"));
        let sid = open.get("result").unwrap().get("session").and_then(Json::as_u64).unwrap();

        let insert = parse(&sessions.handle(&Request {
            id: Json::Int(2),
            job: "frontier_insert".to_string(),
            params: parse(&format!(
                "{{\"session\": {sid}, \"hashes\": [9], \"indices\": [4], \"words\": [1, 2]}}"
            )),
            trace: None,
        }));
        assert_eq!(insert.get("status").and_then(Json::as_str), Some("ok"));

        let probe = parse(&sessions.handle(&Request {
            id: Json::Int(3),
            job: "frontier_probe".to_string(),
            params: parse(&format!(
                "{{\"session\": {sid}, \"hashes\": [9, 9], \"words\": [1, 2, 3, 4]}}"
            )),
            trace: None,
        }));
        let found = probe.get("result").unwrap().get("found").and_then(Json::as_arr).unwrap();
        assert_eq!(found, &[Json::Int(4), Json::Null]);

        let close = parse(&sessions.handle(&Request {
            id: Json::Int(4),
            job: "frontier_close".to_string(),
            params: parse(&format!("{{\"session\": {sid}}}")),
            trace: None,
        }));
        assert_eq!(close.get("status").and_then(Json::as_str), Some("ok"));

        // A closed (or never-opened) session is a clean client error.
        let stale = parse(&sessions.handle(&Request {
            id: Json::Int(5),
            job: "frontier_probe".to_string(),
            params: parse(&format!("{{\"session\": {sid}, \"hashes\": [], \"words\": []}}")),
            trace: None,
        }));
        assert_eq!(stale.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(
            stale.get("error").unwrap().get("code").and_then(Json::as_str),
            Some("bad_request")
        );
    }

    #[test]
    fn malformed_frontier_frames_are_rejected() {
        let sessions = FrontierSessions::default();
        let parse = |s: &str| randsync_obs::parse_json(s).unwrap();
        for (job, params) in [
            ("frontier_open", "{}"),
            ("frontier_open", "{\"stride\": 0}"),
            ("frontier_probe", "{\"hashes\": [], \"words\": []}"),
            ("frontier_bogus", "{}"),
        ] {
            let reply = parse(&sessions.handle(&Request {
                id: Json::Null,
                job: job.to_string(),
                params: parse(params),
                trace: None,
            }));
            assert_eq!(
                reply.get("status").and_then(Json::as_str),
                Some("error"),
                "{job} {params}"
            );
        }
    }
}
