//! The framed JSONL wire protocol (DESIGN.md §13).
//!
//! Every frame is one JSON object on one line, in both directions,
//! encoded and decoded with [`randsync_obs::json`] — the same
//! hand-rolled parser the flight recorder uses, so the server adds no
//! second encoding. Requests carry an `id` the server echoes verbatim
//! on every frame it emits for that request, which is what makes
//! pipelining many requests over one connection safe.
//!
//! ```text
//! request   {"id": <any>, "job": "<kind>", "params": {...}, "trace": {"t": <u64>, "s": <u64>}}
//! ok        {"id": <any>, "status": "ok", "job": "<kind>", "result": {...}}
//! error     {"id": <any>, "status": "error", "error": {"code": "...", "message": "..."}}
//! progress  {"id": <any>, "status": "progress", "stage": "...", ...}
//! ```
//!
//! The optional `trace` field propagates the caller's
//! [`randsync_obs::TraceContext`] (trace id `t`, open span id `s`, as
//! decimal u64s) so spans opened while serving the request — on this
//! server and on any worker it fans out to — stitch into the caller's
//! causal tree (DESIGN.md §17). Requests without it trace locally.

use randsync_obs::Json;

/// Wire schema version, reported by the `metrics` control frame and
/// mixed into every cache key; bump on incompatible change.
pub const WIRE_SCHEMA_VERSION: u32 = 1;

/// Machine-readable error codes carried in `error.code`.
pub mod code {
    /// The frame was not a valid request object.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The `job` field named no known job kind.
    pub const UNKNOWN_JOB: &str = "unknown_job";
    /// The `protocol` parameter named no registry entry.
    pub const UNKNOWN_PROTOCOL: &str = "unknown_protocol";
    /// The bounded job queue was full; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining and accepts no new jobs.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The job exceeded its wall-clock budget and was cancelled.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// The job ran but failed (bridge error, replay divergence, ...).
    pub const JOB_FAILED: &str = "job_failed";
}

/// One parsed request frame.
#[derive(Clone, PartialEq, Debug)]
pub struct Request {
    /// Caller-chosen correlation id, echoed verbatim on every response
    /// and progress frame (`Null` when absent).
    pub id: Json,
    /// The job kind (or control frame name).
    pub job: String,
    /// The job parameters (`Null` when absent).
    pub params: Json,
    /// The caller's trace context `(trace_id, span_id)`, when the
    /// frame carried one.
    pub trace: Option<(u64, u64)>,
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message when the line is not JSON, not an
    /// object, or lacks a string `job` field.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = randsync_obs::parse_json(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let Json::Obj(_) = v else {
            return Err("request must be a JSON object".to_string());
        };
        let job = v
            .get("job")
            .and_then(Json::as_str)
            .ok_or_else(|| "request missing string \"job\" field".to_string())?
            .to_string();
        let id = v.get("id").cloned().unwrap_or(Json::Null);
        let params = v.get("params").cloned().unwrap_or(Json::Null);
        let trace = v.get("trace").and_then(|t| {
            Some((t.get("t").and_then(Json::as_u64)?, t.get("s").and_then(Json::as_u64)?))
        });
        Ok(Request { id, job, params, trace })
    }

    /// Render a request frame (the client side of [`Request::parse`]).
    pub fn render(id: &Json, job: &str, params: &Json) -> String {
        Request::render_traced(id, job, params, None)
    }

    /// Render a request frame carrying the caller's trace context.
    pub fn render_traced(
        id: &Json,
        job: &str,
        params: &Json,
        trace: Option<(u64, u64)>,
    ) -> String {
        let mut fields = vec![
            ("id".to_string(), id.clone()),
            ("job".to_string(), Json::Str(job.to_string())),
            ("params".to_string(), params.clone()),
        ];
        if let Some((t, s)) = trace {
            fields.push((
                "trace".to_string(),
                Json::Obj(vec![
                    ("t".to_string(), Json::Int(i128::from(t))),
                    ("s".to_string(), Json::Int(i128::from(s))),
                ]),
            ));
        }
        Json::Obj(fields).render()
    }
}

/// Render an `ok` response frame.
pub fn ok_frame(id: &Json, job: &str, result: Json) -> String {
    Json::Obj(vec![
        ("id".to_string(), id.clone()),
        ("status".to_string(), Json::Str("ok".to_string())),
        ("job".to_string(), Json::Str(job.to_string())),
        ("result".to_string(), result),
    ])
    .render()
}

/// Render an `error` response frame.
pub fn error_frame(id: &Json, code: &str, message: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), id.clone()),
        ("status".to_string(), Json::Str("error".to_string())),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("code".to_string(), Json::Str(code.to_string())),
                ("message".to_string(), Json::Str(message.to_string())),
            ]),
        ),
    ])
    .render()
}

/// Upper bound on one frame's size on the wire. A peer that streams an
/// unterminated line past this is protocol-broken (or hostile); the
/// reader reports [`FrameOverflow`] instead of buffering unboundedly.
/// Generous because `replay`/`verify_witness` params carry whole flight
/// traces inline.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// A peer exceeded [`MAX_FRAME_BYTES`] on a single frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameOverflow {
    /// Bytes accumulated for the unterminated frame when the cap hit.
    pub buffered: usize,
}

impl std::fmt::Display for FrameOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame exceeds {MAX_FRAME_BYTES} bytes ({} buffered)", self.buffered)
    }
}

impl std::error::Error for FrameOverflow {}

/// Incremental newline-delimited frame accumulator for nonblocking
/// reads: feed whatever bytes the socket produced, get back every
/// frame completed so far, keep the partial tail buffered for the next
/// readiness event. This is the partial-frame half of the event-loop
/// server — a frame split across any number of TCP segments is
/// reassembled here, and a frame that never terminates is bounded by
/// [`MAX_FRAME_BYTES`].
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Bytes buffered for the (not yet complete) current frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Append raw bytes and split off every completed frame, in order.
    /// Frames are decoded lossily (the JSON layer rejects garbage with
    /// a `bad_request`, which is richer than a UTF-8 error here).
    ///
    /// # Errors
    ///
    /// [`FrameOverflow`] once the unterminated tail (or a single frame
    /// within `data`) exceeds [`MAX_FRAME_BYTES`]; the connection
    /// should be dropped — the buffer is left cleared.
    pub fn push_bytes(&mut self, data: &[u8]) -> Result<Vec<String>, FrameOverflow> {
        self.buf.extend_from_slice(data);
        let mut frames = Vec::new();
        let mut start = 0usize;
        while let Some(nl) = self.buf[start..].iter().position(|&b| b == b'\n') {
            let line = &self.buf[start..start + nl];
            if line.len() > MAX_FRAME_BYTES {
                let buffered = line.len();
                self.buf.clear();
                return Err(FrameOverflow { buffered });
            }
            frames.push(String::from_utf8_lossy(line).into_owned());
            start += nl + 1;
        }
        self.buf.drain(..start);
        if self.buf.len() > MAX_FRAME_BYTES {
            let buffered = self.buf.len();
            self.buf.clear();
            return Err(FrameOverflow { buffered });
        }
        Ok(frames)
    }
}

/// Render a `progress` frame: a stage name plus extra fields.
pub fn progress_frame(id: &Json, stage: &str, extra: &[(&str, Json)]) -> String {
    let mut fields = vec![
        ("id".to_string(), id.clone()),
        ("status".to_string(), Json::Str("progress".to_string())),
        ("stage".to_string(), Json::Str(stage.to_string())),
    ];
    for (k, v) in extra {
        fields.push(((*k).to_string(), v.clone()));
    }
    Json::Obj(fields).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_arbitrary_ids() {
        for id in [Json::Int(7), Json::Str("abc".to_string()), Json::Null] {
            let line = Request::render(&id, "valency", &Json::Obj(vec![]));
            let req = Request::parse(&line).expect("parses");
            assert_eq!(req.id, id);
            assert_eq!(req.job, "valency");
            assert_eq!(req.params, Json::Obj(vec![]));
            assert_eq!(req.trace, None);
        }
    }

    #[test]
    fn trace_context_round_trips_on_the_wire() {
        let line =
            Request::render_traced(&Json::Int(1), "explore", &Json::Null, Some((u64::MAX, 42)));
        let req = Request::parse(&line).expect("parses");
        assert_eq!(req.trace, Some((u64::MAX, 42)));
        // A malformed trace field degrades to "no context", never an error.
        let req = Request::parse("{\"job\":\"x\",\"trace\":{\"t\":1}}").expect("parses");
        assert_eq!(req.trace, None);
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        assert!(Request::parse("not json").unwrap_err().contains("invalid JSON"));
        assert!(Request::parse("[1,2]").unwrap_err().contains("object"));
        assert!(Request::parse("{\"id\":1}").unwrap_err().contains("job"));
    }

    #[test]
    fn frame_buffer_reassembles_split_frames() {
        let mut fb = FrameBuffer::new();
        assert_eq!(fb.push_bytes(b"{\"id\":1,").unwrap(), Vec::<String>::new());
        assert_eq!(fb.pending_bytes(), 8);
        let frames = fb.push_bytes(b"\"job\":\"metrics\"}\nnext").unwrap();
        assert_eq!(frames, vec!["{\"id\":1,\"job\":\"metrics\"}".to_string()]);
        assert_eq!(fb.pending_bytes(), 4);
        assert_eq!(fb.push_bytes(b"\n\n").unwrap(), vec!["next".to_string(), String::new()]);
        assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn frame_buffer_yields_many_frames_from_one_read() {
        let mut fb = FrameBuffer::new();
        let frames = fb.push_bytes(b"a\nb\nc\n").unwrap();
        assert_eq!(frames, vec!["a".to_string(), "b".to_string(), "c".to_string()]);
    }

    #[test]
    fn frame_buffer_caps_unterminated_frames() {
        let mut fb = FrameBuffer::new();
        let chunk = vec![b'x'; MAX_FRAME_BYTES / 2 + 1];
        assert!(fb.push_bytes(&chunk).is_ok());
        let err = fb.push_bytes(&chunk).expect_err("cap must trip");
        assert!(err.buffered > MAX_FRAME_BYTES);
        // The buffer resets so the connection teardown path is clean.
        assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn frames_are_single_line_and_echo_the_id() {
        let id = Json::Str("x\ny".to_string());
        for frame in [
            ok_frame(&id, "run", Json::Null),
            error_frame(&id, code::OVERLOADED, "queue full"),
            progress_frame(&id, "started", &[("depth", Json::Int(3))]),
        ] {
            assert!(!frame.contains('\n'), "{frame}");
            let v = randsync_obs::parse_json(&frame).expect("frame parses");
            assert_eq!(v.get("id").and_then(Json::as_str), Some("x\ny"));
        }
    }
}
