//! The framed JSONL wire protocol (DESIGN.md §13).
//!
//! Every frame is one JSON object on one line, in both directions,
//! encoded and decoded with [`randsync_obs::json`] — the same
//! hand-rolled parser the flight recorder uses, so the server adds no
//! second encoding. Requests carry an `id` the server echoes verbatim
//! on every frame it emits for that request, which is what makes
//! pipelining many requests over one connection safe.
//!
//! ```text
//! request   {"id": <any>, "job": "<kind>", "params": {...}}
//! ok        {"id": <any>, "status": "ok", "job": "<kind>", "result": {...}}
//! error     {"id": <any>, "status": "error", "error": {"code": "...", "message": "..."}}
//! progress  {"id": <any>, "status": "progress", "stage": "...", ...}
//! ```

use randsync_obs::Json;

/// Wire schema version, reported by the `metrics` control frame and
/// mixed into every cache key; bump on incompatible change.
pub const WIRE_SCHEMA_VERSION: u32 = 1;

/// Machine-readable error codes carried in `error.code`.
pub mod code {
    /// The frame was not a valid request object.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The `job` field named no known job kind.
    pub const UNKNOWN_JOB: &str = "unknown_job";
    /// The `protocol` parameter named no registry entry.
    pub const UNKNOWN_PROTOCOL: &str = "unknown_protocol";
    /// The bounded job queue was full; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining and accepts no new jobs.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The job exceeded its wall-clock budget and was cancelled.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// The job ran but failed (bridge error, replay divergence, ...).
    pub const JOB_FAILED: &str = "job_failed";
}

/// One parsed request frame.
#[derive(Clone, PartialEq, Debug)]
pub struct Request {
    /// Caller-chosen correlation id, echoed verbatim on every response
    /// and progress frame (`Null` when absent).
    pub id: Json,
    /// The job kind (or control frame name).
    pub job: String,
    /// The job parameters (`Null` when absent).
    pub params: Json,
}

impl Request {
    /// Parse one request line.
    ///
    /// # Errors
    ///
    /// A human-readable message when the line is not JSON, not an
    /// object, or lacks a string `job` field.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = randsync_obs::parse_json(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let Json::Obj(_) = v else {
            return Err("request must be a JSON object".to_string());
        };
        let job = v
            .get("job")
            .and_then(Json::as_str)
            .ok_or_else(|| "request missing string \"job\" field".to_string())?
            .to_string();
        let id = v.get("id").cloned().unwrap_or(Json::Null);
        let params = v.get("params").cloned().unwrap_or(Json::Null);
        Ok(Request { id, job, params })
    }

    /// Render a request frame (the client side of [`Request::parse`]).
    pub fn render(id: &Json, job: &str, params: &Json) -> String {
        Json::Obj(vec![
            ("id".to_string(), id.clone()),
            ("job".to_string(), Json::Str(job.to_string())),
            ("params".to_string(), params.clone()),
        ])
        .render()
    }
}

/// Render an `ok` response frame.
pub fn ok_frame(id: &Json, job: &str, result: Json) -> String {
    Json::Obj(vec![
        ("id".to_string(), id.clone()),
        ("status".to_string(), Json::Str("ok".to_string())),
        ("job".to_string(), Json::Str(job.to_string())),
        ("result".to_string(), result),
    ])
    .render()
}

/// Render an `error` response frame.
pub fn error_frame(id: &Json, code: &str, message: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), id.clone()),
        ("status".to_string(), Json::Str("error".to_string())),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("code".to_string(), Json::Str(code.to_string())),
                ("message".to_string(), Json::Str(message.to_string())),
            ]),
        ),
    ])
    .render()
}

/// Render a `progress` frame: a stage name plus extra fields.
pub fn progress_frame(id: &Json, stage: &str, extra: &[(&str, Json)]) -> String {
    let mut fields = vec![
        ("id".to_string(), id.clone()),
        ("status".to_string(), Json::Str("progress".to_string())),
        ("stage".to_string(), Json::Str(stage.to_string())),
    ];
    for (k, v) in extra {
        fields.push(((*k).to_string(), v.clone()));
    }
    Json::Obj(fields).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_arbitrary_ids() {
        for id in [Json::Int(7), Json::Str("abc".to_string()), Json::Null] {
            let line = Request::render(&id, "valency", &Json::Obj(vec![]));
            let req = Request::parse(&line).expect("parses");
            assert_eq!(req.id, id);
            assert_eq!(req.job, "valency");
            assert_eq!(req.params, Json::Obj(vec![]));
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        assert!(Request::parse("not json").unwrap_err().contains("invalid JSON"));
        assert!(Request::parse("[1,2]").unwrap_err().contains("object"));
        assert!(Request::parse("{\"id\":1}").unwrap_err().contains("job"));
    }

    #[test]
    fn frames_are_single_line_and_echo_the_id() {
        let id = Json::Str("x\ny".to_string());
        for frame in [
            ok_frame(&id, "run", Json::Null),
            error_frame(&id, code::OVERLOADED, "queue full"),
            progress_frame(&id, "started", &[("depth", Json::Int(3))]),
        ] {
            assert!(!frame.contains('\n'), "{frame}");
            let v = randsync_obs::parse_json(&frame).expect("frame parses");
            assert_eq!(v.get("id").and_then(Json::as_str), Some("x\ny"));
        }
    }
}
