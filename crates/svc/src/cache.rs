//! The results cache: canonical job key → rendered result.
//!
//! Deterministic jobs (valency, monte_carlo, verify_witness,
//! protocols — see [`crate::job::Job::cacheable`]) are pure functions
//! of their canonical parameters, so a repeated query is served from
//! memory without touching the queue. The cache is bounded with FIFO
//! eviction: a verification service's hot set is small and recency
//! tracking is not worth a lock per hit beyond the map's own.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use randsync_obs::Json;

/// Default capacity (entries) of a [`ResultsCache`].
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// A bounded map from cache key (see [`crate::job::Job::cache_key`]) to
/// result, with `svc.cache.*` hit/miss counters.
#[derive(Debug)]
pub struct ResultsCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<String, Json>,
    order: VecDeque<String>,
}

impl ResultsCache {
    /// An empty cache holding at most `capacity` results (min 1).
    pub fn new(capacity: usize) -> Self {
        ResultsCache { inner: Mutex::new(CacheInner::default()), capacity: capacity.max(1) }
    }

    /// Look `key` up, counting a `svc.cache.hits` / `svc.cache.misses`.
    pub fn get(&self, key: &str) -> Option<Json> {
        let found = self.inner.lock().expect("cache poisoned").map.get(key).cloned();
        let m = randsync_obs::global_metrics();
        if found.is_some() {
            m.counter("svc.cache.hits").inc();
        } else {
            m.counter("svc.cache.misses").inc();
        }
        found
    }

    /// Insert a result, evicting the oldest entry when full.
    pub fn put(&self, key: String, result: Json) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(slot) = inner.map.get_mut(&key) {
            *slot = result;
            return;
        }
        while inner.map.len() >= self.capacity {
            let Some(oldest) = inner.order.pop_front() else { break };
            inner.map.remove(&oldest);
            randsync_obs::global_metrics().counter("svc.cache.evictions").inc();
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, result);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_miss_before() {
        let cache = ResultsCache::new(8);
        assert!(cache.get("k").is_none());
        cache.put("k".to_string(), Json::Int(7));
        assert_eq!(cache.get("k"), Some(Json::Int(7)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = ResultsCache::new(2);
        cache.put("a".to_string(), Json::Int(1));
        cache.put("b".to_string(), Json::Int(2));
        cache.put("a".to_string(), Json::Int(10)); // overwrite, no growth
        assert_eq!(cache.len(), 2);
        cache.put("c".to_string(), Json::Int(3)); // evicts "a" (oldest insert)
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none());
        assert_eq!(cache.get("b"), Some(Json::Int(2)));
        assert_eq!(cache.get("c"), Some(Json::Int(3)));
    }
}
