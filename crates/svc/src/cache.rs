//! The results cache: canonical job key → rendered result — and the
//! checkpoint store backing the `explore`/`resume` jobs.
//!
//! Deterministic jobs (valency, monte_carlo, verify_witness,
//! protocols — see [`crate::job::Job::cacheable`]) are pure functions
//! of their canonical parameters, so a repeated query is served from
//! memory without touching the queue. *Every* result-shaping knob must
//! appear in those canonical parameters — including the exploration
//! strategy flags `por` (partial-order reduction) and `search`
//! (frontier discipline), which change visited counts even though they
//! preserve verdicts — so a reduced or guided run can never answer a
//! raw query from cache, or vice versa. The cache is bounded with FIFO
//! eviction: a verification service's hot set is small and recency
//! tracking is not worth a lock per hit beyond the map's own.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use randsync_obs::Json;

/// Default capacity (entries) of a [`ResultsCache`].
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// A bounded map from cache key (see [`crate::job::Job::cache_key`]) to
/// result, with `svc.cache.*` hit/miss counters.
#[derive(Debug)]
pub struct ResultsCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<String, Json>,
    order: VecDeque<String>,
}

impl ResultsCache {
    /// An empty cache holding at most `capacity` results (min 1).
    pub fn new(capacity: usize) -> Self {
        ResultsCache { inner: Mutex::new(CacheInner::default()), capacity: capacity.max(1) }
    }

    /// Look `key` up, counting a `svc.cache.hits` / `svc.cache.misses`.
    pub fn get(&self, key: &str) -> Option<Json> {
        let found = self.inner.lock().expect("cache poisoned").map.get(key).cloned();
        let m = randsync_obs::global_metrics();
        if found.is_some() {
            m.counter("svc.cache.hits").inc();
        } else {
            m.counter("svc.cache.misses").inc();
        }
        found
    }

    /// Insert a result, evicting the oldest entry when full.
    pub fn put(&self, key: String, result: Json) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if let Some(slot) = inner.map.get_mut(&key) {
            *slot = result;
            return;
        }
        while inner.map.len() >= self.capacity {
            let Some(oldest) = inner.order.pop_front() else { break };
            inner.map.remove(&oldest);
            randsync_obs::global_metrics().counter("svc.cache.evictions").inc();
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, result);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Durable artifacts of truncated `explore` jobs: checkpoint id →
/// on-disk checkpoint file, so a later `resume` job (possibly from a
/// different connection) can continue the search under a fresh budget.
///
/// Ids are issued by [`CheckpointStore::reserve`] *before* the engine
/// runs; the entry becomes visible only on [`CheckpointStore::commit`],
/// so a search that finished (and wrote nothing) never leaks an id.
/// Files persist until the process exits — checkpoints are the entire
/// point of surviving a budget, so they are never evicted.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    seq: AtomicU64,
    map: Mutex<HashMap<String, PathBuf>>,
}

impl CheckpointStore {
    fn new(dir: PathBuf) -> CheckpointStore {
        std::fs::create_dir_all(&dir).ok();
        CheckpointStore { dir, seq: AtomicU64::new(0), map: Mutex::new(HashMap::new()) }
    }

    /// Issue a fresh id and the path a checkpoint for it should be
    /// written to. The id resolves only after [`commit`](Self::commit).
    pub fn reserve(&self) -> (String, PathBuf) {
        let id = format!("ckpt-{}", self.seq.fetch_add(1, Ordering::Relaxed));
        let path = self.dir.join(format!("{id}.ckpt"));
        (id, path)
    }

    /// Publish a reserved id whose file was actually written.
    pub fn commit(&self, id: String, path: PathBuf) {
        self.map.lock().expect("checkpoint store poisoned").insert(id, path);
        randsync_obs::global_metrics()
            .gauge("svc.checkpoints")
            .set(self.len() as i64);
    }

    /// The checkpoint file behind `id`, if it was committed.
    pub fn get(&self, id: &str) -> Option<PathBuf> {
        self.map.lock().expect("checkpoint store poisoned").get(id).cloned()
    }

    /// Number of committed checkpoints.
    pub fn len(&self) -> usize {
        self.map.lock().expect("checkpoint store poisoned").len()
    }

    /// Whether no checkpoint has been committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

static CHECKPOINT_DIR: OnceLock<PathBuf> = OnceLock::new();
static CHECKPOINT_STORE: OnceLock<CheckpointStore> = OnceLock::new();

/// Choose the directory the process-global [`CheckpointStore`] writes
/// to. Effective only before the store's first use (the server calls
/// this at bind time); returns whether the override took.
pub fn set_checkpoint_dir(dir: PathBuf) -> bool {
    CHECKPOINT_DIR.set(dir).is_ok()
}

/// The process-global checkpoint store, created on first use under the
/// configured directory (default: a pid-unique subdirectory of
/// [`std::env::temp_dir`]).
pub fn checkpoint_store() -> &'static CheckpointStore {
    CHECKPOINT_STORE.get_or_init(|| {
        let dir = CHECKPOINT_DIR.get().cloned().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("randsync-svc-ckpt-{}", std::process::id()))
        });
        CheckpointStore::new(dir)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_ids_resolve_only_after_commit() {
        let store = CheckpointStore::new(
            std::env::temp_dir().join(format!("randsync-ckpt-test-{}", std::process::id())),
        );
        let (id, path) = store.reserve();
        assert!(store.get(&id).is_none(), "reserved but not committed");
        store.commit(id.clone(), path.clone());
        assert_eq!(store.get(&id), Some(path));
        let (id2, _) = store.reserve();
        assert_ne!(id, id2);
    }

    #[test]
    fn hit_after_put_miss_before() {
        let cache = ResultsCache::new(8);
        assert!(cache.get("k").is_none());
        cache.put("k".to_string(), Json::Int(7));
        assert_eq!(cache.get("k"), Some(Json::Int(7)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let cache = ResultsCache::new(2);
        cache.put("a".to_string(), Json::Int(1));
        cache.put("b".to_string(), Json::Int(2));
        cache.put("a".to_string(), Json::Int(10)); // overwrite, no growth
        assert_eq!(cache.len(), 2);
        cache.put("c".to_string(), Json::Int(3)); // evicts "a" (oldest insert)
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none());
        assert_eq!(cache.get("b"), Some(Json::Int(2)));
        assert_eq!(cache.get("c"), Some(Json::Int(3)));
    }
}
