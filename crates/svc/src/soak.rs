//! Soak testing: drive a server with a mixed job load at the
//! backpressure boundary while sampling its metrics, then judge the
//! run against a machine-readable threshold catalog.
//!
//! The monitor looks for three failure shapes (DESIGN.md §17):
//!
//! * **leaks** — a gauge from the catalog's `leak_gauges` list that
//!   grows strictly monotonically across the sampled timeline (a
//!   stable service's queue depths and buffer gauges oscillate; only
//!   a leak climbs without ever stepping back);
//! * **latency** — a `svc.job.micros.*` histogram whose p99 over the
//!   soak window (computed from the snapshot *delta*, so earlier
//!   history cannot mask a regression) exceeds its catalog ceiling;
//! * **starvation** — a results-cache hit rate over the window below
//!   the catalog floor, which on this workload (repeated cacheable
//!   jobs) means the cache is thrashing or sized out.
//!
//! `randsync soak <addr>` wraps [`run_soak`] and exits nonzero when
//! [`SoakReport::passed`] is false, so CI can gate on it directly.

use std::io;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use randsync_obs::{Json, MetricValue, Snapshot};

use crate::client::Client;
use crate::wire::code;

/// Machine-readable soak thresholds. Serialized as JSON so operators
/// can keep per-deployment catalogs in version control and CI can
/// tighten them independently of the binary.
#[derive(Clone, PartialEq, Debug)]
pub struct ThresholdCatalog {
    /// Catalog format version (see [`ThresholdCatalog::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Ceiling applied to any `svc.job.micros.*` histogram without a
    /// per-name override, in microseconds.
    pub default_p99_ceiling_us: u64,
    /// Per-histogram p99 ceilings, full metric name → microseconds.
    pub p99_ceiling_us: Vec<(String, u64)>,
    /// Minimum acceptable `hits / (hits + misses)` over the soak
    /// window, in `[0, 1]`. Only enforced when the window saw lookups.
    pub cache_hit_rate_floor: f64,
    /// Gauges that must not grow strictly monotonically over the run.
    pub leak_gauges: Vec<String>,
}

impl ThresholdCatalog {
    /// The catalog format version this build writes and reads.
    pub const SCHEMA_VERSION: u32 = 1;

    /// The baked-in defaults used when no catalog file is given: a
    /// generous 2 s default p99 (sleep-heavy mixes stay under it), a
    /// tighter ceiling for the cheap cacheable jobs the soak loop
    /// repeats, a 0.5 hit-rate floor, and the event-loop gauges that
    /// only a leak could drive monotonically upward.
    pub fn baked() -> ThresholdCatalog {
        ThresholdCatalog {
            schema_version: Self::SCHEMA_VERSION,
            default_p99_ceiling_us: 2_000_000,
            p99_ceiling_us: vec![("svc.job.micros.protocols".to_string(), 250_000)],
            cache_hit_rate_floor: 0.5,
            leak_gauges: vec![
                "svc.loop.outbox_depth".to_string(),
                "svc.loop.wbuf_bytes".to_string(),
                "svc.queue.depth".to_string(),
                "svc.frontier.sessions".to_string(),
            ],
        }
    }

    /// The ceiling for one histogram: the per-name override when
    /// present, the default otherwise.
    pub fn ceiling_for(&self, name: &str) -> u64 {
        self.p99_ceiling_us
            .iter()
            .find(|(n, _)| n == name)
            .map_or(self.default_p99_ceiling_us, |(_, c)| *c)
    }

    /// Parse a catalog from its JSON encoding. Missing fields fall
    /// back to the baked defaults so a catalog file may override just
    /// one threshold.
    ///
    /// # Errors
    ///
    /// A string diagnostic when the value is not an object, the
    /// schema version is newer than this build, or a field has the
    /// wrong shape.
    pub fn from_json(v: &Json) -> Result<ThresholdCatalog, String> {
        let Json::Obj(_) = v else {
            return Err("threshold catalog must be a JSON object".to_string());
        };
        let mut cat = ThresholdCatalog::baked();
        if let Some(ver) = v.get("schema_version") {
            let ver = ver.as_u64().ok_or("schema_version must be an integer")?;
            if ver > u64::from(Self::SCHEMA_VERSION) {
                return Err(format!(
                    "catalog schema_version {ver} is newer than supported {}",
                    Self::SCHEMA_VERSION
                ));
            }
            cat.schema_version = ver as u32;
        }
        if let Some(d) = v.get("default_p99_ceiling_us") {
            cat.default_p99_ceiling_us =
                d.as_u64().ok_or("default_p99_ceiling_us must be an integer")?;
        }
        if let Some(Json::Obj(fields)) = v.get("p99_ceiling_us") {
            cat.p99_ceiling_us = fields
                .iter()
                .map(|(name, c)| {
                    c.as_u64()
                        .map(|c| (name.clone(), c))
                        .ok_or_else(|| format!("p99_ceiling_us[{name:?}] must be an integer"))
                })
                .collect::<Result<_, _>>()?;
        } else if v.get("p99_ceiling_us").is_some() {
            return Err("p99_ceiling_us must be an object of name -> micros".to_string());
        }
        if let Some(f) = v.get("cache_hit_rate_floor") {
            cat.cache_hit_rate_floor = match f {
                Json::Float(x) if (0.0..=1.0).contains(x) => *x,
                Json::Int(0) => 0.0,
                Json::Int(1) => 1.0,
                _ => return Err("cache_hit_rate_floor must be a number in [0, 1]".to_string()),
            };
        }
        if let Some(g) = v.get("leak_gauges") {
            let arr = g.as_arr().ok_or("leak_gauges must be an array of strings")?;
            cat.leak_gauges = arr
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<_>>()
                .ok_or("leak_gauges must be an array of strings")?;
        }
        Ok(cat)
    }

    /// Encode as JSON (the format [`ThresholdCatalog::from_json`]
    /// reads).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".to_string(), Json::Int(i128::from(self.schema_version))),
            (
                "default_p99_ceiling_us".to_string(),
                Json::Int(i128::from(self.default_p99_ceiling_us)),
            ),
            (
                "p99_ceiling_us".to_string(),
                Json::Obj(
                    self.p99_ceiling_us
                        .iter()
                        .map(|(n, c)| (n.clone(), Json::Int(i128::from(*c))))
                        .collect(),
                ),
            ),
            ("cache_hit_rate_floor".to_string(), Json::Float(self.cache_hit_rate_floor)),
            (
                "leak_gauges".to_string(),
                Json::Arr(self.leak_gauges.iter().map(|g| Json::Str(g.clone())).collect()),
            ),
        ])
    }
}

/// How to drive the load loop.
#[derive(Clone, PartialEq, Debug)]
pub struct SoakConfig {
    /// How long to keep submitting jobs.
    pub duration: Duration,
    /// Pipelined requests kept in flight; pushing past the server's
    /// queue bound is intended — `overloaded` rejections are counted,
    /// not fatal, because the boundary is exactly what a soak must
    /// exercise.
    pub inflight: usize,
    /// Metrics sampling cadence for the leak timeline.
    pub sample_interval: Duration,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            duration: Duration::from_secs(5),
            inflight: 16,
            sample_interval: Duration::from_millis(250),
        }
    }
}

/// One threshold breach, as a stable machine-checkable record.
#[derive(Clone, PartialEq, Debug)]
pub struct Violation {
    /// `leak`, `p99`, or `cache_hit_rate`.
    pub kind: &'static str,
    /// The metric that breached.
    pub metric: String,
    /// Human-readable explanation with observed vs threshold values.
    pub detail: String,
}

/// The outcome of one soak run.
#[derive(Clone, PartialEq, Debug)]
pub struct SoakReport {
    /// Jobs that completed with an `ok` frame.
    pub jobs_ok: u64,
    /// Jobs the server rejected with `overloaded` (expected at the
    /// backpressure boundary; never a violation by itself).
    pub rejected: u64,
    /// Jobs that failed with any other error code.
    pub errors: u64,
    /// Metrics snapshots sampled over the run, oldest first.
    pub samples: Vec<Snapshot>,
    /// What happened between the first and last sample.
    pub window: Snapshot,
    /// Cache hit rate over the window, when the window saw lookups.
    pub cache_hit_rate: Option<f64>,
    /// Every threshold breach found.
    pub violations: Vec<Violation>,
}

impl SoakReport {
    /// True when no threshold was breached.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Render the verdict for terminals: the load summary, the window
    /// p99s the thresholds were judged against, and one line per
    /// violation.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "soak: {} ok, {} overloaded, {} errors, {} samples",
            self.jobs_ok,
            self.rejected,
            self.errors,
            self.samples.len()
        );
        for (name, value) in &self.window.entries {
            if !name.starts_with("svc.job.micros.") {
                continue;
            }
            if let (Some(p50), Some(p99)) = (value.quantile(0.50), value.quantile(0.99)) {
                let _ = writeln!(out, "  {name}: p50={p50}us p99={p99}us");
            }
        }
        match self.cache_hit_rate {
            Some(rate) => {
                let _ = writeln!(out, "  cache hit rate: {rate:.3}");
            }
            None => {
                let _ = writeln!(out, "  cache hit rate: no lookups in window");
            }
        }
        if self.passed() {
            let _ = writeln!(out, "PASS");
        } else {
            for v in &self.violations {
                let _ = writeln!(out, "FAIL [{}] {}: {}", v.kind, v.metric, v.detail);
            }
        }
        out
    }
}

/// A gauge's sampled timeline. The wire encoding does not distinguish
/// a non-negative gauge from a counter, so samples decoded from
/// `metrics` frames may carry the gauge as either variant.
fn gauge_series(samples: &[Snapshot], name: &str) -> Vec<i64> {
    samples
        .iter()
        .filter_map(|s| match s.value(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            Some(MetricValue::Counter(c)) => i64::try_from(*c).ok(),
            _ => None,
        })
        .collect()
}

/// Strictly monotone growth over the whole timeline — every step up,
/// none flat or down — is the leak signature. Requires at least three
/// points so one queue-depth blip cannot fail a run.
fn is_leaking(series: &[i64]) -> bool {
    series.len() >= 3 && series.windows(2).all(|w| w[1] > w[0])
}

/// Judge a finished run against the catalog (pure — unit-testable
/// without a server).
pub fn judge(
    samples: &[Snapshot],
    window: &Snapshot,
    catalog: &ThresholdCatalog,
) -> (Option<f64>, Vec<Violation>) {
    let mut violations = Vec::new();
    for gauge in &catalog.leak_gauges {
        let series = gauge_series(samples, gauge);
        if is_leaking(&series) {
            violations.push(Violation {
                kind: "leak",
                metric: gauge.clone(),
                detail: format!(
                    "grew monotonically {} -> {} over {} samples",
                    series[0],
                    series[series.len() - 1],
                    series.len()
                ),
            });
        }
    }
    for (name, value) in &window.entries {
        if !name.starts_with("svc.job.micros.") {
            continue;
        }
        let MetricValue::Histogram { count, .. } = value else { continue };
        if *count == 0 {
            continue;
        }
        let Some(p99) = value.quantile(0.99) else { continue };
        let ceiling = catalog.ceiling_for(name);
        if p99 > ceiling {
            violations.push(Violation {
                kind: "p99",
                metric: name.clone(),
                detail: format!("p99 {p99}us exceeds ceiling {ceiling}us ({count} observations)"),
            });
        }
    }
    let hits = window.counter("svc.cache.hits").unwrap_or(0);
    let misses = window.counter("svc.cache.misses").unwrap_or(0);
    let rate = if hits + misses == 0 {
        None
    } else {
        Some(hits as f64 / (hits + misses) as f64)
    };
    if let Some(rate) = rate {
        if rate < catalog.cache_hit_rate_floor {
            violations.push(Violation {
                kind: "cache_hit_rate",
                metric: "svc.cache.hits".to_string(),
                detail: format!(
                    "hit rate {rate:.3} below floor {:.3} ({hits} hits / {misses} misses)",
                    catalog.cache_hit_rate_floor
                ),
            });
        }
    }
    (rate, violations)
}

/// The mixed job cycle the load loop repeats: a cacheable analysis
/// (drives cache hits after the first), a small randomized sweep, a
/// short hold, and a registry dump — cheap enough to saturate the
/// queue, varied enough to light up every job-path histogram.
fn job_cycle(i: u64) -> (&'static str, Json) {
    match i % 4 {
        0 => ("valency", Json::Obj(vec![("protocol".to_string(), Json::Str("cas".to_string()))])),
        1 => (
            "monte_carlo",
            Json::Obj(vec![
                ("protocol".to_string(), Json::Str("cas".to_string())),
                ("trials".to_string(), Json::Int(8)),
                ("max_steps".to_string(), Json::Int(4_000)),
            ]),
        ),
        2 => ("sleep", Json::Obj(vec![("millis".to_string(), Json::Int(2))])),
        _ => ("protocols", Json::Null),
    }
}

/// Drive `addr` with the mixed load for `config.duration` while a
/// second connection samples metrics every `config.sample_interval`,
/// then judge the sampled timeline and window delta against
/// `catalog`.
///
/// # Errors
///
/// Connection or protocol failures on either connection. Threshold
/// breaches are *not* errors — they come back in the report so the
/// caller can render every violation before choosing an exit code.
pub fn run_soak(
    addr: &str,
    config: &SoakConfig,
    catalog: &ThresholdCatalog,
) -> io::Result<SoakReport> {
    // Sampler: its own connection so load backpressure cannot starve
    // the timeline, handing snapshots back over a channel.
    let (tx, rx) = mpsc::channel::<Snapshot>();
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let sampler_addr = addr.to_string();
    let interval = config.sample_interval;
    let sampler = std::thread::spawn(move || -> io::Result<()> {
        let mut client = Client::connect(&sampler_addr)?;
        loop {
            let json = client.metrics()?;
            if let Some(snap) = Snapshot::from_json(&json) {
                if tx.send(snap).is_err() {
                    return Ok(());
                }
            }
            match stop_rx.recv_timeout(interval) {
                Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
                Err(mpsc::RecvTimeoutError::Timeout) => {}
            }
        }
    });

    let mut client = Client::connect(addr)?;
    let deadline = Instant::now() + config.duration;
    let mut jobs_ok = 0u64;
    let mut rejected = 0u64;
    let mut errors = 0u64;
    let mut submitted = 0u64;
    // Pipelined jobs on a parallel worker pool complete out of order,
    // so replies must be correlated against the whole pending set —
    // waiting on ids one at a time would discard the final frames of
    // faster jobs and then block forever on them.
    let mut pending: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut drain_one = |client: &mut Client,
                         pending: &mut std::collections::HashSet<String>|
     -> io::Result<()> {
        loop {
            let frame = client.next_frame()?;
            let Some(id) = frame.get("id") else { continue };
            let key = id.render();
            match frame.get("status").and_then(Json::as_str) {
                Some("ok") if pending.remove(&key) => {
                    jobs_ok += 1;
                    return Ok(());
                }
                Some("error") if pending.remove(&key) => {
                    let code = frame
                        .get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(Json::as_str);
                    if code == Some(code::OVERLOADED) {
                        rejected += 1;
                    } else {
                        errors += 1;
                    }
                    return Ok(());
                }
                _ => {} // progress frames, or frames already settled
            }
        }
    };
    while Instant::now() < deadline {
        let (job, params) = job_cycle(submitted);
        pending.insert(client.send(job, &params)?.render());
        submitted += 1;
        while pending.len() >= config.inflight {
            drain_one(&mut client, &mut pending)?;
        }
    }
    while !pending.is_empty() {
        drain_one(&mut client, &mut pending)?;
    }

    let _ = stop_tx.send(());
    sampler.join().map_err(|_| io::Error::other("metrics sampler panicked"))??;
    let mut samples: Vec<Snapshot> = rx.try_iter().collect();
    // Close the window on a fresh post-drain snapshot so the last
    // in-flight jobs are inside it.
    let final_snap = Snapshot::from_json(&client.metrics()?)
        .ok_or_else(|| io::Error::other("metrics frame did not decode as a snapshot"))?;
    samples.push(final_snap.clone());
    let window = match samples.first() {
        Some(first) => final_snap.delta(first),
        None => final_snap.clone(),
    };
    let (cache_hit_rate, violations) = judge(&samples, &window, catalog);
    Ok(SoakReport { jobs_ok, rejected, errors, samples, window, cache_hit_rate, violations })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: Vec<(&str, MetricValue)>) -> Snapshot {
        Snapshot::from_json(&Json::Obj(
            entries
                .into_iter()
                .map(|(n, v)| {
                    let j = match v {
                        MetricValue::Counter(c) => Json::Int(i128::from(c)),
                        MetricValue::Gauge(g) => Json::Int(i128::from(g)),
                        MetricValue::Histogram { .. } => unreachable!("use hist() below"),
                    };
                    (n.to_string(), j)
                })
                .collect(),
        ))
        .unwrap()
    }

    fn hist_window(name: &str, values: &[u64]) -> Snapshot {
        let reg = randsync_obs::MetricsRegistry::new();
        let h = reg.histogram(name);
        for v in values {
            h.observe(*v);
        }
        reg.snapshot()
    }

    #[test]
    fn catalog_round_trips_and_defaults_missing_fields() {
        let baked = ThresholdCatalog::baked();
        let parsed = ThresholdCatalog::from_json(&baked.to_json()).unwrap();
        assert_eq!(parsed, baked);

        // A partial catalog keeps baked values for absent fields.
        let partial =
            randsync_obs::parse_json("{\"default_p99_ceiling_us\": 123}").unwrap();
        let cat = ThresholdCatalog::from_json(&partial).unwrap();
        assert_eq!(cat.default_p99_ceiling_us, 123);
        assert_eq!(cat.leak_gauges, baked.leak_gauges);

        // Per-name override wins; others fall to the default.
        assert_eq!(cat.ceiling_for("svc.job.micros.protocols"), 250_000);
        assert_eq!(cat.ceiling_for("svc.job.micros.sleep"), 123);

        let newer = randsync_obs::parse_json("{\"schema_version\": 999}").unwrap();
        assert!(ThresholdCatalog::from_json(&newer).is_err());
    }

    #[test]
    fn monotone_gauge_growth_is_a_leak() {
        let series = |vals: &[i64]| {
            vals.iter()
                .map(|v| snap(vec![("svc.queue.depth", MetricValue::Gauge(*v))]))
                .collect::<Vec<_>>()
        };
        let catalog = ThresholdCatalog::baked();
        let window = Snapshot::from_json(&Json::Obj(vec![])).unwrap();

        // Strictly increasing over >= 3 samples: leak.
        let (_, v) = judge(&series(&[1, 2, 5, 9]), &window, &catalog);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "leak");
        assert_eq!(v[0].metric, "svc.queue.depth");

        // A single step back clears it: queues oscillate.
        let (_, v) = judge(&series(&[1, 2, 5, 4, 9]), &window, &catalog);
        assert!(v.is_empty());

        // Too few samples never fires.
        let (_, v) = judge(&series(&[1, 2]), &window, &catalog);
        assert!(v.is_empty());
    }

    #[test]
    fn p99_ceiling_is_judged_on_the_window() {
        let mut catalog = ThresholdCatalog::baked();
        catalog.default_p99_ceiling_us = 100;
        let window = hist_window("svc.job.micros.sleep", &[10, 20, 5_000]);
        let (_, v) = judge(&[], &window, &catalog);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "p99");
        assert_eq!(v[0].metric, "svc.job.micros.sleep");

        // Same data under a generous ceiling passes.
        catalog.default_p99_ceiling_us = 10_000_000;
        let (_, v) = judge(&[], &window, &catalog);
        assert!(v.is_empty());

        // Histograms outside svc.job.micros.* are not judged.
        let other = hist_window("svc.loop.flush_us", &[5_000]);
        catalog.default_p99_ceiling_us = 1;
        let (_, v) = judge(&[], &other, &catalog);
        assert!(v.is_empty());
    }

    #[test]
    fn cache_hit_rate_floor_breach_is_reported() {
        let catalog = ThresholdCatalog::baked();
        let window = snap(vec![
            ("svc.cache.hits", MetricValue::Counter(1)),
            ("svc.cache.misses", MetricValue::Counter(9)),
        ]);
        let (rate, v) = judge(&[], &window, &catalog);
        assert_eq!(rate, Some(0.1));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, "cache_hit_rate");

        // No lookups in the window: the floor is not enforced.
        let idle = snap(vec![
            ("svc.cache.hits", MetricValue::Counter(0)),
            ("svc.cache.misses", MetricValue::Counter(0)),
        ]);
        let (rate, v) = judge(&[], &idle, &catalog);
        assert_eq!(rate, None);
        assert!(v.is_empty());
    }
}
