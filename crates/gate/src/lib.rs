//! # randsync-gate — the fail-closed verification gate
//!
//! This crate turns "the workspace reproduces the paper" from a claim
//! into a machine-checkable contract, in three pieces:
//!
//! - [`catalog`] — one [`PropertyEntry`](catalog::PropertyEntry) per
//!   reproduced theorem/lemma (Theorem 3.3, Lemma 3.6, Theorems 4.2
//!   and 4.4, the Theorem 2.1 composition bound, plus the workspace's
//!   own equivalence properties), each binding the paper hook and the
//!   stated bound to an executable check over `consensus::registry`
//!   protocols. Serializable as schema-versioned JSON.
//! - [`corpus`] — the witness regression corpus: adversary-found
//!   inconsistencies, shrunk via `minimize_report`, stored as
//!   FNV-1a-checksummed flight traces with provenance back to their
//!   catalog entry, and replayed through model *and* bridged-atomic
//!   interpreters on every run.
//! - [`runner`] — `randsync gate`: executes catalog plus corpus under
//!   per-entry deadlines and emits a machine-readable
//!   [`GateReport`](runner::GateReport). Fail-closed: any failure,
//!   lost witness, or skip exits nonzero; there is no soft mode.
//!
//! See DESIGN.md §18 for the schema and semantics.

pub mod catalog;
mod checks;
pub mod corpus;
pub mod runner;

pub use catalog::{
    catalog, catalog_json, find, BoundCheck, BoundOp, CheckContext, CheckOutcome, CheckStatus,
    PropertyEntry, Severity, CATALOG_SCHEMA_VERSION,
};
pub use corpus::{
    add_witness, seed_corpus, Manifest, WitnessRecord, MANIFEST_FILE, MANIFEST_SCHEMA_VERSION,
};
pub use runner::{
    run_entry, run_gate, EntryReport, GateConfig, GateReport, WitnessReport,
    BENCH_SCHEMA_VERSION, CORPUS_ENTRY_ID, REPORT_SCHEMA_VERSION,
};
