//! The machine-readable property catalog: one [`PropertyEntry`] per
//! theorem/lemma this workspace reproduces, each binding a paper hook
//! and a stated bound to an *executable* check.
//!
//! The catalog is the contract the gate runner enforces. Every entry
//! names the paper result it stands for, the registry protocols it
//! exercises, and a budget; its check function returns a
//! [`CheckOutcome`] whose [`BoundCheck`]s record the observed value
//! next to the required one, so a report can show *how much* margin a
//! bound passed with, not just that it passed. Serialization
//! ([`catalog_json`]) is schema-versioned like every other artifact in
//! this workspace (trace files, checkpoints, threshold catalogs).

use std::time::Instant;

use randsync_obs::Json;

use crate::checks;

/// Catalog serialization format version, bumped on incompatible change.
pub const CATALOG_SCHEMA_VERSION: u32 = 1;

/// How bad a failed entry is. Everything currently shipped is
/// [`Severity::Critical`] — the gate exists to fail closed — but the
/// schema keeps the axis so successor-paper bounds (e.g. the Ovens 2023
/// swap tightening) can land as advisory checks before their
/// implementations stabilize.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Severity {
    /// A failure fails the whole gate run.
    Critical,
    /// Reported, and still fails the run (the gate has no soft mode),
    /// but marked for readers triaging a red report.
    Advisory,
}

impl Severity {
    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Critical => "critical",
            Severity::Advisory => "advisory",
        }
    }
}

/// The comparison a [`BoundCheck`] asserts between observed and
/// required values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BoundOp {
    /// `observed <= required`.
    Le,
    /// `observed < required` (strict separations).
    Lt,
    /// `observed >= required`.
    Ge,
    /// `observed == required` (closed-form arithmetic).
    Eq,
}

impl BoundOp {
    /// The comparison symbol, for reports.
    pub fn symbol(self) -> &'static str {
        match self {
            BoundOp::Le => "<=",
            BoundOp::Lt => "<",
            BoundOp::Ge => ">=",
            BoundOp::Eq => "==",
        }
    }

    /// Parse the symbol back (the report round-trip).
    pub fn from_symbol(s: &str) -> Option<BoundOp> {
        match s {
            "<=" => Some(BoundOp::Le),
            "<" => Some(BoundOp::Lt),
            ">=" => Some(BoundOp::Ge),
            "==" => Some(BoundOp::Eq),
            _ => None,
        }
    }

    /// Whether `observed op required` holds.
    pub fn holds(self, observed: i128, required: i128) -> bool {
        match self {
            BoundOp::Le => observed <= required,
            BoundOp::Lt => observed < required,
            BoundOp::Ge => observed >= required,
            BoundOp::Eq => observed == required,
        }
    }
}

/// One observed-vs-required comparison a check asserted. A bound that
/// does not hold fails its entry even if the check function itself
/// reported a pass — the runner, not the check, has the last word.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BoundCheck {
    /// What was measured (e.g. `"naive.processes_used"`).
    pub name: String,
    /// The measured value.
    pub observed: i128,
    /// The paper's stated bound.
    pub required: i128,
    /// The asserted comparison.
    pub op: BoundOp,
}

impl BoundCheck {
    /// Whether the comparison holds.
    pub fn holds(&self) -> bool {
        self.op.holds(self.observed, self.required)
    }

    /// JSON encoding (for reports and `BENCH_gate.json`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".to_string(), Json::Str(self.name.clone())),
            ("observed".to_string(), Json::Int(self.observed)),
            ("op".to_string(), Json::Str(self.op.symbol().to_string())),
            ("required".to_string(), Json::Int(self.required)),
            ("ok".to_string(), Json::Bool(self.holds())),
        ])
    }

    /// Parse the encoding [`BoundCheck::to_json`] writes.
    pub fn from_json(v: &Json) -> Result<BoundCheck, String> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("bound missing \"name\"")?
            .to_string();
        let int = |field: &str| -> Result<i128, String> {
            match v.get(field) {
                Some(Json::Int(i)) => Ok(*i),
                _ => Err(format!("bound {name:?} missing integer {field:?}")),
            }
        };
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .and_then(BoundOp::from_symbol)
            .ok_or_else(|| format!("bound {name:?} has no valid \"op\""))?;
        Ok(BoundCheck { observed: int("observed")?, required: int("required")?, name, op })
    }
}

/// What a check function reported (before the runner applies bound
/// verdicts and budget enforcement on top).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CheckStatus {
    /// The property held.
    Pass,
    /// The property failed, with the reason.
    Fail(String),
    /// The check could not run. The gate is fail-closed: a skip still
    /// fails the run — the status exists so reports distinguish "the
    /// property is false" from "the property went unchecked".
    Skipped(String),
}

/// A check function's result: status, asserted bounds, and free-form
/// observations for the report.
#[derive(Clone, PartialEq, Debug)]
pub struct CheckOutcome {
    /// Pass/fail/skip as reported by the check.
    pub status: CheckStatus,
    /// Observed-vs-required comparisons; any non-holding bound fails
    /// the entry.
    pub bounds: Vec<BoundCheck>,
    /// Extra observations worth keeping in the report (config counts,
    /// reduction factors, step counts).
    pub notes: Vec<(String, Json)>,
}

impl CheckOutcome {
    /// A passing outcome with no bounds yet.
    pub fn pass() -> CheckOutcome {
        CheckOutcome { status: CheckStatus::Pass, bounds: Vec::new(), notes: Vec::new() }
    }

    /// A failing outcome.
    pub fn fail(reason: impl Into<String>) -> CheckOutcome {
        CheckOutcome {
            status: CheckStatus::Fail(reason.into()),
            bounds: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// A skipped outcome (still fails the gate; see
    /// [`CheckStatus::Skipped`]).
    pub fn skip(reason: impl Into<String>) -> CheckOutcome {
        CheckOutcome {
            status: CheckStatus::Skipped(reason.into()),
            bounds: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append an observed-vs-required bound.
    pub fn bound(
        mut self,
        name: impl Into<String>,
        observed: i128,
        op: BoundOp,
        required: i128,
    ) -> CheckOutcome {
        self.bounds.push(BoundCheck { name: name.into(), observed, required, op });
        self
    }

    /// Append a report note.
    pub fn note(mut self, name: impl Into<String>, value: Json) -> CheckOutcome {
        self.notes.push((name.into(), value));
        self
    }
}

/// Ambient inputs a check runs under.
#[derive(Clone, Copy, Debug)]
pub struct CheckContext {
    /// The entry's cooperative deadline: explorations pass it to
    /// [`ExploreConfig::deadline`](randsync_model::ExploreConfig) so a
    /// runaway search truncates (and the truncated result fails the
    /// check) instead of hanging the gate.
    pub deadline: Instant,
}

/// One reproduced theorem/lemma and its executable check.
#[derive(Clone, Copy, Debug)]
pub struct PropertyEntry {
    /// Stable catalog id (`randsync gate --filter <id>`).
    pub id: &'static str,
    /// Where in the paper the property lives.
    pub paper: &'static str,
    /// The property, stated.
    pub statement: &'static str,
    /// Registry protocols the check exercises (empty for pure
    /// arithmetic).
    pub protocols: &'static [&'static str],
    /// How bad a failure is.
    pub severity: Severity,
    /// Filter tags (`"smoke"` marks the fast subset verify.sh runs
    /// end-to-end).
    pub tags: &'static [&'static str],
    /// Per-entry wall-clock budget; exceeding it fails the entry.
    pub budget_ms: u64,
    /// Whether the witness corpus must hold at least one replaying
    /// witness attributed to this entry — deleting the corpus entry
    /// (file *or* manifest row) then fails the gate.
    pub requires_witness: bool,
    /// The executable check.
    pub run: fn(&CheckContext) -> CheckOutcome,
}

impl PropertyEntry {
    /// Whether a `--filter` string selects this entry: exact tag match
    /// or id substring.
    pub fn matches(&self, filter: &str) -> bool {
        self.tags.contains(&filter) || self.id.contains(filter)
    }

    /// The entry's static metadata as JSON (no check result).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_string(), Json::Str(self.id.to_string())),
            ("paper".to_string(), Json::Str(self.paper.to_string())),
            ("statement".to_string(), Json::Str(self.statement.to_string())),
            (
                "protocols".to_string(),
                Json::Arr(self.protocols.iter().map(|p| Json::Str((*p).to_string())).collect()),
            ),
            ("severity".to_string(), Json::Str(self.severity.label().to_string())),
            (
                "tags".to_string(),
                Json::Arr(self.tags.iter().map(|t| Json::Str((*t).to_string())).collect()),
            ),
            ("budget_ms".to_string(), Json::Int(i128::from(self.budget_ms))),
            ("requires_witness".to_string(), Json::Bool(self.requires_witness)),
        ])
    }
}

/// The shipped catalog: every theorem/lemma the workspace reproduces,
/// in paper order.
pub static CATALOG: &[PropertyEntry] = &[
    PropertyEntry {
        id: "thm-3.3-bound",
        paper: "Theorem 3.3",
        statement: "Consensus for r*r - r + 2 or more identical processes is impossible from \
                    r registers; the closed forms invert each other and are monotone",
        protocols: &[],
        severity: Severity::Critical,
        tags: &["smoke", "arith"],
        budget_ms: 5_000,
        requires_witness: false,
        run: checks::thm_3_3_bound,
    },
    PropertyEntry {
        id: "thm-3.3-adversary",
        paper: "Theorem 3.3 via Lemma 3.2",
        statement: "The register-identical adversary constructs a replay-verified \
                    inconsistency against the flawed register protocols using at most \
                    r*r - r + 2 processes",
        protocols: &["naive", "optimistic"],
        severity: Severity::Critical,
        tags: &["smoke", "adversary"],
        budget_ms: 60_000,
        requires_witness: true,
        run: checks::thm_3_3_adversary,
    },
    PropertyEntry {
        id: "thm-3.3-symmetry",
        paper: "Theorem 3.3 (identical processes)",
        statement: "The process-symmetry quotient is verdict-preserving: canonical and raw \
                    exploration agree on safety and termination facts",
        protocols: &["naive", "walk-counter"],
        severity: Severity::Critical,
        tags: &["smoke", "equivalence"],
        budget_ms: 60_000,
        requires_witness: false,
        run: checks::thm_3_3_symmetry,
    },
    PropertyEntry {
        id: "lemma-3.6",
        paper: "Lemma 3.6 (toward Theorem 3.7)",
        statement: "The historyless adversary breaks the flawed historyless-object protocols \
                    within the ample pool bound 2*(3r*r + r)",
        protocols: &["tasrace", "swapchain", "mixedzigzag"],
        severity: Severity::Critical,
        tags: &["adversary"],
        budget_ms: 120_000,
        requires_witness: true,
        run: checks::lemma_3_6,
    },
    PropertyEntry {
        id: "thm-4.2",
        paper: "Theorem 4.2 (Aspnes)",
        statement: "One bounded counter solves 2-process randomized consensus — safe, \
                    termination always reachable, infinite executions present with \
                    probability 0 — using strictly fewer objects than any register \
                    implementation",
        protocols: &["walk-counter"],
        severity: Severity::Critical,
        tags: &["smoke", "separation"],
        budget_ms: 60_000,
        requires_witness: false,
        run: checks::thm_4_2,
    },
    PropertyEntry {
        id: "thm-4.4",
        paper: "Theorem 4.4",
        statement: "One fetch&add register solves 2-process randomized consensus with the \
                    same separation as Theorem 4.2",
        protocols: &["walk-fetchadd"],
        severity: Severity::Critical,
        tags: &["smoke", "separation"],
        budget_ms: 60_000,
        requires_witness: false,
        run: checks::thm_4_4,
    },
    PropertyEntry {
        id: "bound-2.1",
        paper: "Theorem 2.1",
        statement: "Composition: implementing X by Y costs at least ceil(g/f) instances, and \
                    the shipped counter-from-registers stack respects the corollary",
        protocols: &[],
        severity: Severity::Critical,
        tags: &["smoke", "arith"],
        budget_ms: 5_000,
        requires_witness: false,
        run: checks::bound_2_1,
    },
    PropertyEntry {
        id: "por-equiv",
        paper: "DESIGN.md section 15 (soundness of the reduction)",
        statement: "Partial-order reduction preserves the verdict and termination facts \
                    while strictly pruning interleavings",
        protocols: &["localcoin"],
        severity: Severity::Critical,
        tags: &["smoke", "equivalence"],
        budget_ms: 60_000,
        requires_witness: false,
        run: checks::por_equiv,
    },
    PropertyEntry {
        id: "guided-witness",
        paper: "DESIGN.md section 15 (guided adversary search)",
        statement: "Best-first search finds an inconsistency on a flawed protocol; the \
                    witness survives shrinking, re-verification, and a trace round-trip",
        protocols: &["naive"],
        severity: Severity::Critical,
        tags: &["smoke", "adversary"],
        budget_ms: 60_000,
        requires_witness: false,
        run: checks::guided_witness,
    },
    PropertyEntry {
        id: "runtime-model-equiv",
        paper: "DESIGN.md section 9 (one state machine, many interpreters)",
        statement: "Threaded-runtime executions replay bit-identically through the model \
                    interpreter and decide consistently and validly",
        protocols: &["cas", "walk-counter"],
        severity: Severity::Critical,
        tags: &["smoke", "equivalence"],
        budget_ms: 60_000,
        requires_witness: false,
        run: checks::runtime_model_equiv,
    },
    PropertyEntry {
        id: "svc-soak",
        paper: "DESIGN.md section 17 (soak thresholds)",
        statement: "A sustained mixed-job load at the backpressure boundary breaches no \
                    threshold: no leaking gauges, p99 under its ceiling, cache hit rate \
                    above its floor",
        protocols: &[],
        severity: Severity::Critical,
        tags: &["soak"],
        budget_ms: 120_000,
        requires_witness: false,
        run: checks::svc_soak,
    },
];

/// The shipped catalog.
pub fn catalog() -> &'static [PropertyEntry] {
    CATALOG
}

/// Look a catalog entry up by id.
pub fn find(id: &str) -> Option<&'static PropertyEntry> {
    CATALOG.iter().find(|e| e.id == id)
}

/// The whole catalog as schema-versioned JSON.
pub fn catalog_json() -> Json {
    Json::Obj(vec![
        ("schema_version".to_string(), Json::Int(i128::from(CATALOG_SCHEMA_VERSION))),
        ("entries".to_string(), Json::Arr(CATALOG.iter().map(PropertyEntry::to_json).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ids_are_unique_and_findable() {
        let ids: std::collections::HashSet<_> = CATALOG.iter().map(|e| e.id).collect();
        assert_eq!(ids.len(), CATALOG.len(), "duplicate catalog ids");
        for e in CATALOG {
            assert!(std::ptr::eq(find(e.id).expect("findable"), e));
        }
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn required_theorems_are_present() {
        for id in ["thm-3.3-bound", "thm-3.3-adversary", "lemma-3.6", "thm-4.2", "thm-4.4", "bound-2.1"]
        {
            assert!(find(id).is_some(), "missing required entry {id}");
        }
    }

    #[test]
    fn catalog_protocols_resolve_in_the_registry() {
        for e in CATALOG {
            for p in e.protocols {
                assert!(
                    randsync_consensus::registry::find(p).is_some(),
                    "{}: unknown protocol binding {p:?}",
                    e.id
                );
            }
        }
    }

    #[test]
    fn bound_ops_and_bound_checks_round_trip() {
        for op in [BoundOp::Le, BoundOp::Lt, BoundOp::Ge, BoundOp::Eq] {
            assert_eq!(BoundOp::from_symbol(op.symbol()), Some(op));
        }
        let b = BoundCheck {
            name: "processes_used".to_string(),
            observed: 4,
            required: 8,
            op: BoundOp::Le,
        };
        assert!(b.holds());
        let back = BoundCheck::from_json(&b.to_json()).expect("parses");
        assert_eq!(back, b);
        let broken = BoundCheck { observed: 9, ..b };
        assert!(!broken.holds());
    }

    #[test]
    fn catalog_json_is_schema_versioned_and_parses_back() {
        let v = catalog_json();
        let text = v.render();
        let back = randsync_obs::parse_json(&text).expect("renders valid JSON");
        assert_eq!(
            back.get("schema_version").and_then(Json::as_u64),
            Some(u64::from(CATALOG_SCHEMA_VERSION))
        );
        assert_eq!(
            back.get("entries").and_then(Json::as_arr).map(<[Json]>::len),
            Some(CATALOG.len())
        );
    }

    #[test]
    fn filter_matching_covers_tags_and_id_substrings() {
        let e = find("thm-3.3-adversary").unwrap();
        assert!(e.matches("smoke"));
        assert!(e.matches("thm-3.3"));
        assert!(e.matches("adversary"));
        assert!(!e.matches("soak"));
    }
}
