//! The gate runner: executes the property catalog and the witness
//! corpus, fail-closed, and produces a machine-readable report.
//!
//! "Fail-closed" means the runner only ever answers "everything I was
//! asked to check is affirmatively green". A panicking check, a
//! non-holding bound, a blown budget, a skipped entry, a lost or
//! tampered witness, a stray trace file, or a required property with
//! no replaying witness each fail the run — there is no soft mode and
//! no way for a regression to degrade into a warning.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use randsync_obs::Json;

use crate::catalog::{self, CheckContext, CheckOutcome, CheckStatus, PropertyEntry};
use crate::corpus::{self, Manifest};

/// Gate report format version, bumped on incompatible change.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// `BENCH_gate.json` format version.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// The id the corpus replay reports under (it behaves like a catalog
/// entry in filters and reports, but its body is the corpus walk).
pub const CORPUS_ENTRY_ID: &str = "witness-corpus";

/// How a gate run is parameterized.
#[derive(Clone, Debug)]
pub struct GateConfig {
    /// Only run catalog entries matching this filter (tag or id
    /// substring); `None` runs everything.
    pub filter: Option<String>,
    /// The corpus directory.
    pub corpus_dir: PathBuf,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { filter: None, corpus_dir: PathBuf::from("corpus") }
    }
}

/// One catalog entry's result.
#[derive(Clone, PartialEq, Debug)]
pub struct EntryReport {
    /// Catalog id.
    pub id: String,
    /// `"pass"`, `"fail"`, `"skipped"`, or `"filtered"`.
    pub status: String,
    /// Why, for anything but a pass.
    pub reason: Option<String>,
    /// Wall-clock time the check took.
    pub millis: u64,
    /// The observed-vs-required comparisons the check asserted.
    pub bounds: Vec<catalog::BoundCheck>,
    /// Free-form observations.
    pub notes: Vec<(String, Json)>,
}

impl EntryReport {
    /// Whether this entry leaves the gate green: passes and
    /// filtered-out entries do; fails and skips do not.
    pub fn ok(&self) -> bool {
        self.status == "pass" || self.status == "filtered"
    }

    /// JSON encoding.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::Str(self.id.clone())),
            ("status".to_string(), Json::Str(self.status.clone())),
            (
                "reason".to_string(),
                match &self.reason {
                    Some(r) => Json::Str(r.clone()),
                    None => Json::Null,
                },
            ),
            ("millis".to_string(), Json::Int(i128::from(self.millis))),
            (
                "bounds".to_string(),
                Json::Arr(self.bounds.iter().map(catalog::BoundCheck::to_json).collect()),
            ),
        ];
        fields.push((
            "notes".to_string(),
            Json::Obj(self.notes.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
        ));
        Json::Obj(fields)
    }

    /// Parse the encoding [`EntryReport::to_json`] writes.
    pub fn from_json(v: &Json) -> Result<EntryReport, String> {
        let s = |field: &str| -> Result<String, String> {
            v.get(field)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("entry missing string {field:?}"))
        };
        let reason = match v.get("reason") {
            Some(Json::Str(r)) => Some(r.clone()),
            Some(Json::Null) | None => None,
            Some(_) => return Err("entry \"reason\" is neither string nor null".to_string()),
        };
        let bounds = v
            .get("bounds")
            .and_then(Json::as_arr)
            .ok_or("entry missing \"bounds\"")?
            .iter()
            .map(catalog::BoundCheck::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let notes = match v.get("notes") {
            Some(Json::Obj(fields)) => fields.clone(),
            _ => return Err("entry missing \"notes\" object".to_string()),
        };
        Ok(EntryReport {
            id: s("id")?,
            status: s("status")?,
            reason,
            millis: v
                .get("millis")
                .and_then(Json::as_u64)
                .ok_or("entry missing \"millis\"")?,
            bounds,
            notes,
        })
    }
}

/// One corpus witness's replay result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WitnessReport {
    /// Trace filename, relative to the corpus directory.
    pub file: String,
    /// Catalog property the witness substantiates.
    pub property: String,
    /// Registry protocol name.
    pub protocol: String,
    /// Whether the replay reproduced the inconsistency.
    pub passed: bool,
    /// Why not, if it failed.
    pub reason: Option<String>,
    /// Wall-clock replay time.
    pub millis: u64,
}

impl WitnessReport {
    /// JSON encoding.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("file".to_string(), Json::Str(self.file.clone())),
            ("property".to_string(), Json::Str(self.property.clone())),
            ("protocol".to_string(), Json::Str(self.protocol.clone())),
            ("passed".to_string(), Json::Bool(self.passed)),
            (
                "reason".to_string(),
                match &self.reason {
                    Some(r) => Json::Str(r.clone()),
                    None => Json::Null,
                },
            ),
            ("millis".to_string(), Json::Int(i128::from(self.millis))),
        ])
    }

    /// Parse the encoding [`WitnessReport::to_json`] writes.
    pub fn from_json(v: &Json) -> Result<WitnessReport, String> {
        let s = |field: &str| -> Result<String, String> {
            v.get(field)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("witness missing string {field:?}"))
        };
        let passed = match v.get("passed") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("witness missing boolean \"passed\"".to_string()),
        };
        let reason = match v.get("reason") {
            Some(Json::Str(r)) => Some(r.clone()),
            Some(Json::Null) | None => None,
            Some(_) => return Err("witness \"reason\" is neither string nor null".to_string()),
        };
        Ok(WitnessReport {
            file: s("file")?,
            property: s("property")?,
            protocol: s("protocol")?,
            passed,
            reason,
            millis: v
                .get("millis")
                .and_then(Json::as_u64)
                .ok_or("witness missing \"millis\"")?,
        })
    }
}

/// The whole run's result.
#[derive(Clone, PartialEq, Debug)]
pub struct GateReport {
    /// The filter the run used, if any.
    pub filter: Option<String>,
    /// One report per catalog entry (plus the corpus pseudo-entry).
    pub entries: Vec<EntryReport>,
    /// One report per filed witness replayed.
    pub witnesses: Vec<WitnessReport>,
    /// Witnesses in the manifest at run time.
    pub corpus_size: usize,
}

impl GateReport {
    /// Whether the gate is green: every entry ok, every replayed
    /// witness reproduced.
    pub fn passed(&self) -> bool {
        self.entries.iter().all(EntryReport::ok) && self.witnesses.iter().all(|w| w.passed)
    }

    /// Total wall-clock across entries and witnesses.
    pub fn total_millis(&self) -> u64 {
        self.entries.iter().map(|e| e.millis).sum::<u64>()
            + self.witnesses.iter().map(|w| w.millis).sum::<u64>()
    }

    /// JSON encoding (`randsync gate --report`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".to_string(), Json::Int(i128::from(REPORT_SCHEMA_VERSION))),
            (
                "filter".to_string(),
                match &self.filter {
                    Some(f) => Json::Str(f.clone()),
                    None => Json::Null,
                },
            ),
            ("passed".to_string(), Json::Bool(self.passed())),
            ("corpus_size".to_string(), Json::Int(self.corpus_size as i128)),
            (
                "entries".to_string(),
                Json::Arr(self.entries.iter().map(EntryReport::to_json).collect()),
            ),
            (
                "witnesses".to_string(),
                Json::Arr(self.witnesses.iter().map(WitnessReport::to_json).collect()),
            ),
        ])
    }

    /// Parse the encoding [`GateReport::to_json`] writes.
    pub fn from_json(v: &Json) -> Result<GateReport, String> {
        match v.get("schema_version").and_then(Json::as_u64) {
            Some(found) if found == u64::from(REPORT_SCHEMA_VERSION) => {}
            Some(found) => {
                return Err(format!(
                    "report schema version {found}, this build reads {REPORT_SCHEMA_VERSION}"
                ))
            }
            None => return Err("report has no schema_version".to_string()),
        }
        let filter = match v.get("filter") {
            Some(Json::Str(f)) => Some(f.clone()),
            Some(Json::Null) | None => None,
            Some(_) => return Err("report \"filter\" is neither string nor null".to_string()),
        };
        let entries = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("report missing \"entries\"")?
            .iter()
            .map(EntryReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let witnesses = v
            .get("witnesses")
            .and_then(Json::as_arr)
            .ok_or("report missing \"witnesses\"")?
            .iter()
            .map(WitnessReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GateReport {
            filter,
            entries,
            witnesses,
            corpus_size: v
                .get("corpus_size")
                .and_then(Json::as_usize)
                .ok_or("report missing \"corpus_size\"")?,
        })
    }

    /// Human-readable rendering for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let tag = match e.status.as_str() {
                "pass" => "PASS",
                "filtered" => "----",
                "skipped" => "SKIP",
                _ => "FAIL",
            };
            out.push_str(&format!("{tag}  {:<24} {:>6} ms", e.id, e.millis));
            if let Some(reason) = &e.reason {
                out.push_str(&format!("  {reason}"));
            }
            out.push('\n');
            for b in &e.bounds {
                out.push_str(&format!(
                    "      {} {} {} {}  [{}]\n",
                    b.name,
                    b.observed,
                    b.op.symbol(),
                    b.required,
                    if b.holds() { "ok" } else { "VIOLATED" }
                ));
            }
        }
        for w in &self.witnesses {
            out.push_str(&format!(
                "{}  witness {:<40} {:>6} ms",
                if w.passed { "PASS" } else { "FAIL" },
                w.file,
                w.millis
            ));
            if let Some(reason) = &w.reason {
                out.push_str(&format!("  {reason}"));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "gate: {} ({} entries, {} witnesses, {} ms)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.entries.len(),
            self.witnesses.len(),
            self.total_millis()
        ));
        out
    }

    /// The `BENCH_gate.json` artifact: per-entry wall time and bound
    /// margins, in the workspace's standard schema-versioned shape.
    pub fn bench_json(&self, git_rev: &str) -> Json {
        Json::Obj(vec![
            ("schema_version".to_string(), Json::Int(i128::from(BENCH_SCHEMA_VERSION))),
            ("git_rev".to_string(), Json::Str(git_rev.to_string())),
            (
                "filter".to_string(),
                match &self.filter {
                    Some(f) => Json::Str(f.clone()),
                    None => Json::Null,
                },
            ),
            ("passed".to_string(), Json::Bool(self.passed())),
            ("corpus_size".to_string(), Json::Int(self.corpus_size as i128)),
            ("total_millis".to_string(), Json::Int(i128::from(self.total_millis()))),
            (
                "entries".to_string(),
                Json::Arr(
                    self.entries
                        .iter()
                        .filter(|e| e.status != "filtered")
                        .map(|e| {
                            Json::Obj(vec![
                                ("id".to_string(), Json::Str(e.id.clone())),
                                ("pass".to_string(), Json::Bool(e.ok())),
                                ("millis".to_string(), Json::Int(i128::from(e.millis))),
                                (
                                    "bounds".to_string(),
                                    Json::Arr(
                                        e.bounds
                                            .iter()
                                            .map(catalog::BoundCheck::to_json)
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Run one catalog entry under its budget, converting panics and
/// blown deadlines into failures. Public so tests can drive synthetic
/// entries (a violated bound, a skip, a panic) through the exact
/// machinery the gate uses.
pub fn run_entry(entry: &PropertyEntry) -> EntryReport {
    let budget = Duration::from_millis(entry.budget_ms);
    let started = Instant::now();
    let ctx = CheckContext { deadline: started + budget };
    let result = panic::catch_unwind(AssertUnwindSafe(|| (entry.run)(&ctx)));
    let elapsed = started.elapsed();
    let millis = elapsed.as_millis() as u64;
    let outcome = match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            CheckOutcome::fail(format!("check panicked: {msg}"))
        }
    };
    let mut status;
    let mut reason;
    match outcome.status {
        CheckStatus::Pass => {
            status = "pass";
            reason = None;
        }
        CheckStatus::Fail(r) => {
            status = "fail";
            reason = Some(r);
        }
        CheckStatus::Skipped(r) => {
            status = "skipped";
            reason = Some(format!("skipped: {r} (fail-closed: skips fail the gate)"));
        }
    }
    // The runner, not the check, has the last word on bounds.
    let violated: Vec<String> =
        outcome.bounds.iter().filter(|b| !b.holds()).map(|b| b.name.clone()).collect();
    if status == "pass" && !violated.is_empty() {
        status = "fail";
        reason = Some(format!("bound(s) violated: {}", violated.join(", ")));
    }
    if status == "pass" && elapsed > budget {
        status = "fail";
        reason = Some(format!(
            "budget exceeded: {millis} ms against a {} ms budget",
            entry.budget_ms
        ));
    }
    EntryReport {
        id: entry.id.to_string(),
        status: status.to_string(),
        reason,
        millis,
        bounds: outcome.bounds,
        notes: outcome.notes,
    }
}

/// Replay the whole corpus and enforce coverage for the catalog
/// entries in `included` that require a witness. Returns the corpus
/// pseudo-entry plus one report per filed witness.
fn run_corpus(
    config: &GateConfig,
    included: &[&'static PropertyEntry],
) -> (EntryReport, Vec<WitnessReport>, usize) {
    let started = Instant::now();
    let dir = config.corpus_dir.as_path();
    let manifest = match Manifest::load(dir) {
        Ok(m) => m,
        Err(e) => {
            let report = EntryReport {
                id: CORPUS_ENTRY_ID.to_string(),
                status: "fail".to_string(),
                reason: Some(format!("corpus manifest unreadable: {e}")),
                millis: started.elapsed().as_millis() as u64,
                bounds: Vec::new(),
                notes: Vec::new(),
            };
            return (report, Vec::new(), 0);
        }
    };
    let mut witnesses = Vec::new();
    for record in &manifest.witnesses {
        let replay_start = Instant::now();
        let result = replay_record_guarded(dir, record);
        witnesses.push(WitnessReport {
            file: record.file.clone(),
            property: record.property.clone(),
            protocol: record.protocol.clone(),
            passed: result.is_ok(),
            reason: result.err(),
            millis: replay_start.elapsed().as_millis() as u64,
        });
    }
    let mut problems = Vec::new();
    let failing = witnesses.iter().filter(|w| !w.passed).count();
    if failing > 0 {
        problems.push(format!("{failing} corpus witness(es) failed replay"));
    }
    match corpus::stray_files(dir, &manifest) {
        Ok(strays) if strays.is_empty() => {}
        Ok(strays) => problems.push(format!(
            "unfiled witness trace(s) in the corpus directory: {}",
            strays.join(", ")
        )),
        Err(e) => problems.push(e),
    }
    for entry in included {
        if !entry.requires_witness {
            continue;
        }
        let replaying = witnesses
            .iter()
            .filter(|w| w.property == entry.id && w.passed)
            .count();
        if replaying == 0 {
            problems.push(format!(
                "{} requires at least one replaying corpus witness, found none",
                entry.id
            ));
        }
    }
    let status = if problems.is_empty() { "pass" } else { "fail" };
    let report = EntryReport {
        id: CORPUS_ENTRY_ID.to_string(),
        status: status.to_string(),
        reason: if problems.is_empty() { None } else { Some(problems.join("; ")) },
        millis: started.elapsed().as_millis() as u64,
        bounds: Vec::new(),
        notes: vec![(
            "corpus_size".to_string(),
            Json::Int(manifest.witnesses.len() as i128),
        )],
    };
    (report, witnesses, manifest.witnesses.len())
}

/// [`corpus::replay_record`] with panics converted to failures, so one
/// corrupted trace cannot take down the whole gate run.
fn replay_record_guarded(
    dir: &std::path::Path,
    record: &corpus::WitnessRecord,
) -> Result<(), String> {
    match panic::catch_unwind(AssertUnwindSafe(|| corpus::replay_record(dir, record))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("replay panicked: {msg}"))
        }
    }
}

/// Whether a filtered run should still replay the corpus: yes when the
/// filter selects the corpus pseudo-entry itself or any included
/// catalog entry whose evidence lives in the corpus.
fn corpus_selected(filter: &str, included: &[&'static PropertyEntry]) -> bool {
    CORPUS_ENTRY_ID.contains(filter)
        || "corpus" == filter
        || "smoke" == filter
        || included.iter().any(|e| e.requires_witness)
}

/// Execute the gate: every selected catalog entry, then the corpus.
pub fn run_gate(config: &GateConfig) -> GateReport {
    let mut entries = Vec::new();
    let mut included: Vec<&'static PropertyEntry> = Vec::new();
    for entry in catalog::catalog() {
        let selected = config.filter.as_deref().is_none_or(|f| entry.matches(f));
        if selected {
            included.push(entry);
            entries.push(run_entry(entry));
        } else {
            entries.push(EntryReport {
                id: entry.id.to_string(),
                status: "filtered".to_string(),
                reason: None,
                millis: 0,
                bounds: Vec::new(),
                notes: Vec::new(),
            });
        }
    }
    let run_corpus_too = match config.filter.as_deref() {
        None => true,
        Some(f) => corpus_selected(f, &included),
    };
    let (mut witnesses, mut corpus_size) = (Vec::new(), 0);
    if run_corpus_too {
        let (corpus_entry, w, size) = run_corpus(config, &included);
        entries.push(corpus_entry);
        witnesses = w;
        corpus_size = size;
    } else {
        entries.push(EntryReport {
            id: CORPUS_ENTRY_ID.to_string(),
            status: "filtered".to_string(),
            reason: None,
            millis: 0,
            bounds: Vec::new(),
            notes: Vec::new(),
        });
    }
    GateReport { filter: config.filter.clone(), entries, witnesses, corpus_size }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> GateReport {
        GateReport {
            filter: Some("smoke".to_string()),
            entries: vec![EntryReport {
                id: "thm-3.3-bound".to_string(),
                status: "pass".to_string(),
                reason: None,
                millis: 3,
                bounds: vec![catalog::BoundCheck {
                    name: "max_identical_processes(2)".to_string(),
                    observed: 3,
                    required: 3,
                    op: catalog::BoundOp::Eq,
                }],
                notes: vec![("configs".to_string(), Json::Int(209))],
            }],
            witnesses: vec![WitnessReport {
                file: "naive-n3-r1-6steps-abcd1234.jsonl".to_string(),
                property: "thm-3.3-adversary".to_string(),
                protocol: "naive".to_string(),
                passed: true,
                reason: None,
                millis: 1,
            }],
            corpus_size: 1,
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = report.to_json().render();
        let back = GateReport::from_json(&randsync_obs::parse_json(&text).expect("valid JSON"))
            .expect("parses");
        assert_eq!(back, report);
        assert!(back.passed());
    }

    #[test]
    fn any_failing_witness_fails_the_report() {
        let mut report = sample_report();
        report.witnesses[0].passed = false;
        report.witnesses[0].reason = Some("checksum mismatch".to_string());
        assert!(!report.passed());
    }

    #[test]
    fn skipped_entries_fail_but_filtered_do_not() {
        let mut report = sample_report();
        report.entries[0].status = "filtered".to_string();
        assert!(report.passed());
        report.entries[0].status = "skipped".to_string();
        assert!(!report.passed());
    }

    #[test]
    fn bench_json_is_schema_versioned() {
        let bench = sample_report().bench_json("abc1234");
        assert_eq!(
            bench.get("schema_version").and_then(Json::as_u64),
            Some(u64::from(BENCH_SCHEMA_VERSION))
        );
        assert_eq!(bench.get("git_rev").and_then(Json::as_str), Some("abc1234"));
        let text = bench.render();
        assert!(randsync_obs::parse_json(&text).is_ok());
    }
}
