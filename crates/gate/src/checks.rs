//! The executable checks behind the catalog entries.
//!
//! Every check follows the same discipline: build protocols through
//! `consensus::registry` (never ad hoc), bound wall-clock work with the
//! entry's [`CheckContext::deadline`], and report observed values next
//! to the paper's required ones as [`BoundCheck`]s so the gate report
//! shows margins, not just verdicts. Any truncated exploration, failed
//! replay, or missing registry binding is a *failure* — the gate never
//! downgrades an unprovable property to a skip on its own.

use std::time::Duration;

use randsync_consensus::registry::{self, ProtocolEntry};
use randsync_core::attack::attack_for_witness;
use randsync_core::bounds::{
    composition_lower_bound, max_identical_processes, min_historyless_objects,
    min_registers_identical,
};
use randsync_core::combine31::CombineLimits;
use randsync_core::combine35::{ample_pool, attack_historyless, GeneralOutcome};
use randsync_core::witness::InconsistencyWitness;
use randsync_model::runtime::{replay_execution, DynObject, ModelObject, Runtime};
use randsync_model::{
    ExploreConfig, ExploreLimits, Explorer, Protocol, SearchMode,
};
use randsync_objects::bridge;
use randsync_objects::SnapshotCounter;
use randsync_obs::Json;
use randsync_svc::soak::{run_soak, SoakConfig, ThresholdCatalog};
use randsync_svc::{Client, Server, ServerConfig};

use crate::catalog::{BoundOp, CheckContext, CheckOutcome};

/// An explorer whose budgets are generous but whose wall clock is the
/// entry's deadline, so a runaway search truncates instead of hanging
/// the gate (and the truncation fails the check).
fn explorer(ctx: &CheckContext) -> Explorer {
    explorer_with(ctx, |_| {})
}

/// [`explorer`] with extra configuration applied on top.
fn explorer_with(ctx: &CheckContext, tweak: impl FnOnce(&mut ExploreConfig)) -> Explorer {
    let mut config = ExploreConfig {
        limits: ExploreLimits { max_configs: 2_000_000, max_depth: 200_000 },
        deadline: Some(ctx.deadline),
        ..ExploreConfig::default()
    };
    tweak(&mut config);
    Explorer::with_config(config)
}

/// Resolve a registry binding or fail the check — a catalog entry whose
/// protocol vanished from the registry is a regression, not a skip.
fn binding(name: &str) -> Result<&'static ProtocolEntry, CheckOutcome> {
    registry::find(name)
        .ok_or_else(|| CheckOutcome::fail(format!("registry no longer has protocol {name:?}")))
}

/// Verify a witness through the threaded-runtime interpreter over
/// bridged real atomics (the strongest replay this workspace has).
fn verify_on_bridged<P: Protocol>(
    protocol: &P,
    witness: &InconsistencyWitness,
) -> Result<(), String> {
    let objects = bridge::instantiate_all(protocol)
        .map_err(|e| format!("objects do not bridge to atomics: {e}"))?;
    let refs: Vec<&dyn DynObject> = objects.iter().map(AsRef::as_ref).collect();
    witness
        .verify_on(protocol, &refs)
        .map_err(|e| format!("witness failed replay on bridged atomics: {e}"))
}

/// Theorem 3.3, the closed forms: `r² − r + 1` identical processes is
/// the most r registers support, the inversion round-trips, and both
/// directions are monotone.
pub(crate) fn thm_3_3_bound(_ctx: &CheckContext) -> CheckOutcome {
    for r in 1..=64u64 {
        let cap = max_identical_processes(r);
        if cap != r * r - r + 1 {
            return CheckOutcome::fail(format!(
                "max_identical_processes({r}) = {cap}, want r*r-r+1 = {}",
                r * r - r + 1
            ));
        }
        if min_registers_identical(cap) != r {
            return CheckOutcome::fail(format!(
                "min_registers_identical({cap}) = {}, want {r} (inversion broken)",
                min_registers_identical(cap)
            ));
        }
        if min_registers_identical(cap + 1) != r + 1 {
            return CheckOutcome::fail(format!(
                "min_registers_identical({}) should step to {} registers",
                cap + 1,
                r + 1
            ));
        }
    }
    let mut prev = 0;
    for n in 1..=4096u64 {
        let v = min_registers_identical(n);
        if v < prev {
            return CheckOutcome::fail(format!("min_registers_identical not monotone at n={n}"));
        }
        prev = v;
    }
    CheckOutcome::pass()
        .bound("max_identical_processes(2)", i128::from(max_identical_processes(2)), BoundOp::Eq, 3)
        .bound(
            "min_registers_identical(7)",
            i128::from(min_registers_identical(7)),
            BoundOp::Eq,
            3,
        )
}

/// Theorem 3.3 via the Lemma 3.2 adversary: construct, verify (model
/// interpreter *and* bridged atomics), and shrink an inconsistency on
/// each flawed register protocol, within the paper's process bound.
pub(crate) fn thm_3_3_adversary(_ctx: &CheckContext) -> CheckOutcome {
    let mut out = CheckOutcome::pass();
    for name in ["naive", "optimistic"] {
        let entry = match binding(name) {
            Ok(e) => e,
            Err(fail) => return fail,
        };
        let protocol = entry.build_default();
        let r = protocol.objects().len();
        let (witness, _) = match attack_for_witness(&protocol, &CombineLimits::default()) {
            Ok(found) => found,
            Err(e) => return CheckOutcome::fail(format!("{name}: adversary failed: {e}")),
        };
        if let Err(e) = witness.verify(&protocol) {
            return CheckOutcome::fail(format!("{name}: witness failed model replay: {e}"));
        }
        let (minimal, stats) = witness.minimize_report(&protocol);
        if let Err(e) = verify_on_bridged(&protocol, &minimal) {
            return CheckOutcome::fail(format!("{name}: {e}"));
        }
        // Lemma 3.1 bounds the construction by r² − r + 2 processes.
        let cap = max_identical_processes(r as u64) + 1;
        out = out
            .bound(
                format!("{name}.processes_used"),
                minimal.processes_used as i128,
                BoundOp::Le,
                i128::from(cap),
            )
            .note(format!("{name}.witness_steps"), Json::Int(minimal.execution.len() as i128))
            .note(format!("{name}.shrunk_steps"), Json::Int(stats.deleted as i128));
    }
    out
}

/// The identical-process lens on exploration: the symmetry quotient
/// (which models "identical processes" computationally) must preserve
/// every verdict raw exploration reaches.
pub(crate) fn thm_3_3_symmetry(ctx: &CheckContext) -> CheckOutcome {
    let mut out = CheckOutcome::pass();
    for name in ["naive", "walk-counter"] {
        let entry = match binding(name) {
            Ok(e) => e,
            Err(fail) => return fail,
        };
        let protocol = entry.build_default();
        let raw = explorer(ctx).explore(&protocol, entry.default_inputs);
        let canon =
            explorer_with(ctx, |c| c.canonical = true).explore(&protocol, entry.default_inputs);
        if raw.truncated || canon.truncated {
            return CheckOutcome::fail(format!("{name}: exploration truncated; quotient equivalence unproven"));
        }
        if raw.verdict_label() != canon.verdict_label() {
            return CheckOutcome::fail(format!(
                "{name}: raw verdict {} but canonical verdict {}",
                raw.verdict_label(),
                canon.verdict_label()
            ));
        }
        if raw.can_always_reach_termination != canon.can_always_reach_termination
            || raw.infinite_execution_possible != canon.infinite_execution_possible
        {
            return CheckOutcome::fail(format!("{name}: termination facts differ across the quotient"));
        }
        out = out
            .bound(
                format!("{name}.canonical_configs"),
                canon.configs_visited as i128,
                BoundOp::Le,
                raw.configs_visited as i128,
            )
            .note(format!("{name}.verdict"), Json::Str(raw.verdict_label().to_string()));
    }
    out
}

/// Lemma 3.6: the historyless adversary breaks each flawed
/// historyless-object protocol with an ample pool, and the witness
/// survives model and bridged replay plus shrinking.
pub(crate) fn lemma_3_6(_ctx: &CheckContext) -> CheckOutcome {
    let mut out = CheckOutcome::pass();
    for name in ["tasrace", "swapchain", "mixedzigzag"] {
        let entry = match binding(name) {
            Ok(e) => e,
            Err(fail) => return fail,
        };
        let protocol = entry.build_default();
        let r = protocol.objects().len();
        let pool = ample_pool(r);
        let witness =
            match attack_historyless(&protocol, pool, &ExploreLimits::default()) {
                Ok(GeneralOutcome::Inconsistent { witness, .. }) => witness,
                Ok(GeneralOutcome::InvalidExecution { input, decided, .. }) => {
                    return CheckOutcome::fail(format!(
                        "{name}: expected an inconsistency, got a validity violation \
                         (input {input} decided {decided})"
                    ));
                }
                Err(e) => return CheckOutcome::fail(format!("{name}: adversary failed: {e}")),
            };
        if let Err(e) = witness.verify(&protocol) {
            return CheckOutcome::fail(format!("{name}: witness failed model replay: {e}"));
        }
        let (minimal, _) = witness.minimize_report(&protocol);
        if let Err(e) = verify_on_bridged(&protocol, &minimal) {
            return CheckOutcome::fail(format!("{name}: {e}"));
        }
        out = out
            .bound(
                format!("{name}.processes_used"),
                minimal.processes_used as i128,
                BoundOp::Le,
                ample_pool(r) as i128,
            )
            .note(format!("{name}.witness_steps"), Json::Int(minimal.execution.len() as i128));
    }
    out
}

/// The Theorem 4.2 / 4.4 separation, shared shape: the tight-margin
/// walk on one object is safe, always able to terminate, and has the
/// Section 2 infinite executions — with strictly fewer objects than
/// any register implementation for the same process count.
fn walk_separation(ctx: &CheckContext, name: &str) -> CheckOutcome {
    let entry = match binding(name) {
        Ok(e) => e,
        Err(fail) => return fail,
    };
    let protocol = entry.build_default();
    let n = entry.default_n as u64;
    let out = explorer(ctx).explore(&protocol, entry.default_inputs);
    if out.truncated {
        return CheckOutcome::fail(format!("{name}: exploration truncated; facts unproven"));
    }
    if !out.is_safe() {
        return CheckOutcome::fail(format!("{name}: {}", out.verdict_label()));
    }
    if out.can_always_reach_termination != Some(true) {
        return CheckOutcome::fail(format!(
            "{name}: termination not always reachable ({:?})",
            out.can_always_reach_termination
        ));
    }
    if out.infinite_execution_possible != Some(true) {
        return CheckOutcome::fail(format!(
            "{name}: the paper's Section 2 non-terminating executions are missing ({:?})",
            out.infinite_execution_possible
        ));
    }
    let Some(val) = explorer(ctx).valency(&protocol, entry.default_inputs) else {
        return CheckOutcome::fail(format!("{name}: valency analysis exceeded the budget"));
    };
    if !val.envelope_consistent() {
        return CheckOutcome::fail(format!(
            "{name}: valency envelope inconsistent ({} classified of {} configs)",
            val.classified(),
            val.configs
        ));
    }
    if !val.bivalent_cycle {
        return CheckOutcome::fail(format!(
            "{name}: no bivalent cycle — the adversary's forever-undecided loop must exist"
        ));
    }
    if val.stuck != 0 {
        return CheckOutcome::fail(format!("{name}: {} deadlocked configurations", val.stuck));
    }
    CheckOutcome::pass()
        .bound(
            format!("{name}.object_instances"),
            protocol.objects().len() as i128,
            BoundOp::Lt,
            i128::from(min_registers_identical(n)),
        )
        .note(format!("{name}.configs"), Json::Int(out.configs_visited as i128))
        .note(format!("{name}.critical_configs"), Json::Int(val.critical_configs as i128))
}

/// Theorem 4.2: consensus from one bounded counter.
pub(crate) fn thm_4_2(ctx: &CheckContext) -> CheckOutcome {
    walk_separation(ctx, "walk-counter")
}

/// Theorem 4.4: consensus from one fetch&add register.
pub(crate) fn thm_4_4(ctx: &CheckContext) -> CheckOutcome {
    walk_separation(ctx, "walk-fetchadd")
}

/// Theorem 2.1: the composition arithmetic and the shipped
/// counter-from-registers stack that must respect it.
pub(crate) fn bound_2_1(_ctx: &CheckContext) -> CheckOutcome {
    for (g, f, want) in [(7u64, 2u64, 4u64), (6, 3, 2), (1, 1, 1), (10, 4, 3), (9, 3, 3)] {
        let got = composition_lower_bound(g, f);
        if got != want {
            return CheckOutcome::fail(format!(
                "composition_lower_bound({g}, {f}) = {got}, want ceil(g/f) = {want}"
            ));
        }
    }
    let mut out = CheckOutcome::pass();
    for n in [4u64, 16, 64] {
        // f = 1 counter solves consensus (Thm 4.2); g = Ω(√n) historyless
        // objects are required (Thm 3.7); so counter-from-registers
        // needs at least ceil(g/1) registers — and ours uses n.
        let required = composition_lower_bound(min_historyless_objects(n), 1);
        let ours = SnapshotCounter::new(n as usize).num_slots() as u64;
        if ours < required {
            return CheckOutcome::fail(format!(
                "SnapshotCounter({n}) uses {ours} slots, below the Theorem 2.1 bound {required}"
            ));
        }
        if n == 64 {
            out = out.bound(
                "snapshot_counter_slots(n=64)",
                i128::from(ours),
                BoundOp::Ge,
                i128::from(required),
            );
        }
    }
    out
}

/// Soundness of partial-order reduction: same verdict and termination
/// facts, strictly fewer interleavings explored.
pub(crate) fn por_equiv(ctx: &CheckContext) -> CheckOutcome {
    let entry = match binding("localcoin") {
        Ok(e) => e,
        Err(fail) => return fail,
    };
    let protocol = entry.build_default();
    let raw = explorer(ctx).explore(&protocol, entry.default_inputs);
    let por = explorer_with(ctx, |c| c.por = true).explore(&protocol, entry.default_inputs);
    if raw.truncated || por.truncated {
        return CheckOutcome::fail("localcoin: exploration truncated; POR equivalence unproven");
    }
    if raw.verdict_label() != por.verdict_label()
        || raw.can_always_reach_termination != por.can_always_reach_termination
        || raw.infinite_execution_possible != por.infinite_execution_possible
    {
        return CheckOutcome::fail(format!(
            "localcoin: POR changed the verdict ({} vs {})",
            raw.verdict_label(),
            por.verdict_label()
        ));
    }
    CheckOutcome::pass()
        .bound("localcoin.por_configs", por.configs_visited as i128, BoundOp::Le, raw.configs_visited as i128)
        .bound("localcoin.por_pruned", por.por_pruned as i128, BoundOp::Ge, 1)
        .note("localcoin.raw_configs", Json::Int(raw.configs_visited as i128))
}

/// The guided adversary search: best-first finds an inconsistency on a
/// flawed protocol; the witness shrinks to a fixpoint, re-verifies on
/// bridged atomics, and survives a flight-trace round-trip.
pub(crate) fn guided_witness(ctx: &CheckContext) -> CheckOutcome {
    let entry = match binding("naive") {
        Ok(e) => e,
        Err(fail) => return fail,
    };
    let protocol = entry.build_default();
    let (found, truncated) = explorer_with(ctx, |c| c.search = SearchMode::BestFirst)
        .find_violation(&protocol, entry.default_inputs, |c| c.is_inconsistent());
    let Some(execution) = found else {
        return CheckOutcome::fail(if truncated {
            "naive: guided search exhausted its budget without a witness"
        } else {
            "naive: guided search found no inconsistency on a flawed protocol"
        });
    };
    let Some(witness) =
        InconsistencyWitness::from_execution(&protocol, entry.default_inputs, execution)
    else {
        return CheckOutcome::fail("naive: violating execution did not replay to an inconsistency");
    };
    if let Err(e) = witness.verify(&protocol) {
        return CheckOutcome::fail(format!("naive: witness failed model replay: {e}"));
    }
    let (minimal, _) = witness.minimize_report(&protocol);
    let (again, stats) = minimal.minimize_report(&protocol);
    if again.execution.len() != minimal.execution.len() || stats.deleted != 0 {
        return CheckOutcome::fail(format!(
            "naive: minimization is not a fixpoint ({} -> {} steps)",
            minimal.execution.len(),
            again.execution.len()
        ));
    }
    if let Err(e) = verify_on_bridged(&protocol, &minimal) {
        return CheckOutcome::fail(format!("naive: {e}"));
    }
    let trace = minimal.flight_trace(entry.name, entry.default_n, entry.default_r);
    match randsync_obs::ExecutionTrace::from_jsonl(&trace.to_jsonl()) {
        Ok(back) if back == trace => {}
        Ok(_) => return CheckOutcome::fail("naive: flight trace round-trip is not the identity"),
        Err(e) => return CheckOutcome::fail(format!("naive: flight trace does not parse back: {e}")),
    }
    // The minimal naive violation is write, write, read, read, decide,
    // decide — six steps.
    CheckOutcome::pass().bound(
        "naive.minimized_steps",
        minimal.execution.len() as i128,
        BoundOp::Le,
        6,
    )
}

/// One state machine, many interpreters: seeded threaded-runtime
/// executions must replay bit-identically through the model
/// interpreter, deciding one valid value.
pub(crate) fn runtime_model_equiv(_ctx: &CheckContext) -> CheckOutcome {
    let mut out = CheckOutcome::pass();
    let mut executions = 0i128;
    for name in ["cas", "walk-counter"] {
        let entry = match binding(name) {
            Ok(e) => e,
            Err(fail) => return fail,
        };
        for seed in [1u64, 7, 23] {
            let protocol = entry.build_default();
            let inputs = entry.default_inputs.to_vec();
            let objects = match bridge::instantiate_all(&protocol) {
                Ok(o) => o,
                Err(e) => {
                    return CheckOutcome::fail(format!("{name}: objects do not bridge: {e}"))
                }
            };
            let (report, execution) = Runtime::new(seed).run_traced(&protocol, &inputs, &objects);
            let decided: Vec<u8> = report.decisions.iter().filter_map(|d| *d).collect();
            if decided.len() != inputs.len() {
                return CheckOutcome::fail(format!(
                    "{name} seed {seed}: only {} of {} processes decided",
                    decided.len(),
                    inputs.len()
                ));
            }
            if decided.windows(2).any(|w| w[0] != w[1]) {
                return CheckOutcome::fail(format!("{name} seed {seed}: inconsistent decisions"));
            }
            if !inputs.contains(&decided[0]) {
                return CheckOutcome::fail(format!(
                    "{name} seed {seed}: decided {} which nobody proposed",
                    decided[0]
                ));
            }
            let model_objects = ModelObject::instantiate_all(&protocol);
            let refs: Vec<&dyn DynObject> = model_objects.iter().map(AsRef::as_ref).collect();
            match replay_execution(&protocol, &refs, &inputs, &execution) {
                Ok(replayed) if replayed == report.decisions => {}
                Ok(replayed) => {
                    return CheckOutcome::fail(format!(
                        "{name} seed {seed}: model replay decided {replayed:?}, runtime decided {:?}",
                        report.decisions
                    ));
                }
                Err(e) => {
                    return CheckOutcome::fail(format!(
                        "{name} seed {seed}: runtime schedule does not replay: {e}"
                    ));
                }
            }
            executions += 1;
        }
    }
    out = out.bound("replayed_executions", executions, BoundOp::Eq, 6);
    out
}

/// The soak gate: an in-process server under the PR 9 threshold
/// catalog — sustained mixed load at the backpressure boundary with no
/// leaking gauges, p99 under its ceiling, cache hit rate above its
/// floor.
pub(crate) fn svc_soak(_ctx: &CheckContext) -> CheckOutcome {
    let server = match Server::bind("127.0.0.1:0", ServerConfig::default()) {
        Ok(s) => s,
        Err(e) => return CheckOutcome::fail(format!("cannot bind loopback server: {e}")),
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => return CheckOutcome::fail(format!("no local addr: {e}")),
    };
    let handle = std::thread::spawn(move || {
        let _ = server.run();
    });
    let config = SoakConfig {
        duration: Duration::from_secs(2),
        inflight: 8,
        sample_interval: Duration::from_millis(125),
    };
    let catalog = ThresholdCatalog::baked();
    let result = run_soak(&addr.to_string(), &config, &catalog);
    let shutdown = Client::connect(addr).and_then(|mut c| c.shutdown());
    let _ = handle.join();
    let report = match result {
        Ok(r) => r,
        Err(e) => return CheckOutcome::fail(format!("soak run failed: {e}")),
    };
    if let Err(e) = shutdown {
        return CheckOutcome::fail(format!("server did not shut down cleanly: {e}"));
    }
    if report.jobs_ok == 0 {
        return CheckOutcome::fail("soak completed zero jobs — the load loop never ran");
    }
    let mut out = if report.passed() {
        CheckOutcome::pass()
    } else {
        let details: Vec<String> = report
            .violations
            .iter()
            .map(|v| format!("[{}] {}: {}", v.kind, v.metric, v.detail))
            .collect();
        CheckOutcome::fail(details.join("; "))
    };
    out = out
        .bound("threshold_violations", report.violations.len() as i128, BoundOp::Eq, 0)
        .note("jobs_ok", Json::Int(i128::from(report.jobs_ok)))
        .note("rejected", Json::Int(i128::from(report.rejected)));
    if let Some(rate) = report.cache_hit_rate {
        out = out.note("cache_hit_rate", Json::Float(rate));
    }
    out
}
