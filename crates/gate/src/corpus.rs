//! The witness regression corpus: adversary-found inconsistencies,
//! shrunk and filed as checksummed flight traces, replayed on every
//! gate run.
//!
//! A corpus directory holds one `MANIFEST.json` plus one `.jsonl`
//! flight trace per witness. The manifest row records which catalog
//! property the witness substantiates, the protocol instance to
//! rebuild, and an FNV-1a 64 checksum of the trace file's exact bytes.
//! On replay, *everything* is load-bearing: a missing file is a lost
//! witness, a checksum mismatch is tampering, a bad or short JSONL
//! stream is truncation (the trace footer carries the step count), a
//! trace file present on disk but absent from the manifest is an
//! unfiled witness — each is a gate FAILURE, never a skip.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use randsync_consensus::registry::{self, AttackFamily, ProtocolEntry};
use randsync_core::attack::attack_for_witness;
use randsync_core::combine31::CombineLimits;
use randsync_core::combine35::{ample_pool, attack_historyless, GeneralOutcome};
use randsync_core::witness::InconsistencyWitness;
use randsync_model::runtime::DynObject;
use randsync_model::{Execution, ExploreLimits, ProcessId, Protocol, Step};
use randsync_objects::bridge;
use randsync_obs::{ExecutionTrace, Json};

/// Manifest format version, bumped on incompatible change.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// The manifest's filename inside a corpus directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// FNV-1a 64-bit — the same checksum the checkpoint format uses, so
/// the workspace has one integrity primitive.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The checksum as the manifest stores it: 16 lowercase hex digits.
pub fn checksum_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// One filed witness: where it lives, what it proves, how to rebuild
/// the protocol instance, and the bytes it must still hash to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WitnessRecord {
    /// Trace filename, relative to the corpus directory.
    pub file: String,
    /// Catalog property id this witness substantiates.
    pub property: String,
    /// Registry protocol name.
    pub protocol: String,
    /// Processes the instance was built with.
    pub n: usize,
    /// Range parameter the instance was built with.
    pub r: usize,
    /// Steps in the (minimized) execution.
    pub steps: usize,
    /// Distinct processes the execution schedules.
    pub processes_used: usize,
    /// FNV-1a 64 of the trace file's exact bytes, as 16 hex digits.
    pub checksum: String,
}

impl WitnessRecord {
    /// JSON encoding for the manifest.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("file".to_string(), Json::Str(self.file.clone())),
            ("property".to_string(), Json::Str(self.property.clone())),
            ("protocol".to_string(), Json::Str(self.protocol.clone())),
            ("n".to_string(), Json::Int(self.n as i128)),
            ("r".to_string(), Json::Int(self.r as i128)),
            ("steps".to_string(), Json::Int(self.steps as i128)),
            ("processes_used".to_string(), Json::Int(self.processes_used as i128)),
            ("checksum".to_string(), Json::Str(self.checksum.clone())),
        ])
    }

    /// Parse a manifest row.
    pub fn from_json(v: &Json) -> Result<WitnessRecord, String> {
        let s = |field: &str| -> Result<String, String> {
            v.get(field)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest row missing string {field:?}"))
        };
        let u = |field: &str| -> Result<usize, String> {
            v.get(field)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("manifest row missing integer {field:?}"))
        };
        Ok(WitnessRecord {
            file: s("file")?,
            property: s("property")?,
            protocol: s("protocol")?,
            n: u("n")?,
            r: u("r")?,
            steps: u("steps")?,
            processes_used: u("processes_used")?,
            checksum: s("checksum")?,
        })
    }
}

/// The corpus manifest: schema version plus one row per witness.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Manifest {
    /// Rows, in filing order.
    pub witnesses: Vec<WitnessRecord>,
}

impl Manifest {
    /// JSON encoding.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".to_string(), Json::Int(i128::from(MANIFEST_SCHEMA_VERSION))),
            (
                "witnesses".to_string(),
                Json::Arr(self.witnesses.iter().map(WitnessRecord::to_json).collect()),
            ),
        ])
    }

    /// Parse the encoding [`Manifest::to_json`] writes.
    pub fn from_json(v: &Json) -> Result<Manifest, String> {
        match v.get("schema_version").and_then(Json::as_u64) {
            Some(found) if found == u64::from(MANIFEST_SCHEMA_VERSION) => {}
            Some(found) => {
                return Err(format!(
                    "manifest schema version {found}, this build reads {MANIFEST_SCHEMA_VERSION}"
                ))
            }
            None => return Err("manifest has no schema_version".to_string()),
        }
        let rows = v
            .get("witnesses")
            .and_then(Json::as_arr)
            .ok_or("manifest has no \"witnesses\" array")?;
        let witnesses =
            rows.iter().map(WitnessRecord::from_json).collect::<Result<Vec<_>, _>>()?;
        Ok(Manifest { witnesses })
    }

    /// Load `dir/MANIFEST.json`. A corpus directory without a readable,
    /// parseable manifest is an error — the caller decides whether
    /// that means "no corpus configured" or "corpus lost".
    pub fn load(dir: &Path) -> Result<Manifest, String> {
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let json = randsync_obs::parse_json(&text)
            .map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?;
        Manifest::from_json(&json)
    }

    /// Write `dir/MANIFEST.json` (creating `dir` if needed).
    pub fn save(&self, dir: &Path) -> Result<(), String> {
        fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let path = dir.join(MANIFEST_FILE);
        let mut text = self.to_json().render();
        text.push('\n');
        fs::write(&path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Rows attributed to a catalog property.
    pub fn for_property<'a>(&'a self, property: &'a str) -> impl Iterator<Item = &'a WitnessRecord> {
        self.witnesses.iter().filter(move |w| w.property == property)
    }
}

/// Trace files in `dir` that no manifest row claims. An unfiled
/// witness fails the gate: either it was never validated, or a
/// manifest row was deleted to hide a regression.
pub fn stray_files(dir: &Path, manifest: &Manifest) -> Result<Vec<String>, String> {
    let mut strays = Vec::new();
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".jsonl") && !manifest.witnesses.iter().any(|w| w.file == name) {
            strays.push(name);
        }
    }
    strays.sort();
    Ok(strays)
}

/// Replay one filed witness, fail-closed: bytes must hash to the
/// manifest checksum, parse as a complete flight trace matching the
/// row's metadata, rebuild into an execution on the recorded registry
/// protocol, and still decide both values under the model interpreter
/// *and* over bridged real atomics.
pub fn replay_record(dir: &Path, record: &WitnessRecord) -> Result<(), String> {
    let path = dir.join(&record.file);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) => return Err(format!("lost witness: cannot read {}: {e}", path.display())),
    };
    let found = checksum_hex(&bytes);
    if found != record.checksum {
        return Err(format!(
            "checksum mismatch (tampered or corrupted): manifest says {}, file hashes to {found}",
            record.checksum
        ));
    }
    let text = String::from_utf8(bytes).map_err(|_| "trace is not UTF-8".to_string())?;
    // from_jsonl cross-checks the footer's step count, so a truncated
    // file fails here even if each surviving line parses.
    let trace = ExecutionTrace::from_jsonl(&text).map_err(|e| format!("trace invalid: {e}"))?;
    if trace.protocol != record.protocol
        || trace.n != record.n
        || trace.r != record.r
        || trace.steps.len() != record.steps
    {
        return Err(format!(
            "trace header ({} n={} r={} steps={}) disagrees with its manifest row \
             ({} n={} r={} steps={})",
            trace.protocol,
            trace.n,
            trace.r,
            trace.steps.len(),
            record.protocol,
            record.n,
            record.r,
            record.steps
        ));
    }
    let entry = registry::find(&record.protocol)
        .ok_or_else(|| format!("registry no longer has protocol {:?}", record.protocol))?;
    let protocol = (entry.build)(record.n, record.r);
    let witness = rebuild_witness(&protocol, &trace)
        .ok_or("trace no longer witnesses an inconsistency under model replay")?;
    if witness.processes_used != record.processes_used {
        return Err(format!(
            "witness schedules {} distinct processes, manifest says {}",
            witness.processes_used, record.processes_used
        ));
    }
    let objects = bridge::instantiate_all(&protocol)
        .map_err(|e| format!("objects do not bridge to atomics: {e}"))?;
    let refs: Vec<&dyn DynObject> = objects.iter().map(AsRef::as_ref).collect();
    witness
        .verify_on(&protocol, &refs)
        .map_err(|e| format!("witness failed replay on bridged atomics: {e}"))
}

/// Rebuild an [`InconsistencyWitness`] from a flight trace: convert
/// the `(pid, coin)` schedule back to model steps and let the replay
/// find the two deciders (which also model-verifies the trace).
fn rebuild_witness<P: Protocol>(protocol: &P, trace: &ExecutionTrace) -> Option<InconsistencyWitness> {
    let execution = Execution::from_steps(
        trace
            .steps
            .iter()
            .map(|&(pid, coin)| Step::with_coin(ProcessId(pid as usize), coin))
            .collect(),
    );
    InconsistencyWitness::from_execution(protocol, &trace.inputs, execution)
}

/// The catalog property a protocol's witnesses substantiate, by the
/// adversary family that found them.
fn property_for(entry: &ProtocolEntry) -> &'static str {
    match entry.attack {
        AttackFamily::RegisterIdentical => "thm-3.3-adversary",
        AttackFamily::Historyless => "lemma-3.6",
        AttackFamily::NotApplicable => "guided-witness",
    }
}

/// Shrink `witness` and file it under `dir`, updating the manifest.
/// Returns the new record, or `None` if a byte-identical trace (same
/// checksum) is already filed.
fn file_witness(
    dir: &Path,
    manifest: &mut Manifest,
    entry: &ProtocolEntry,
    witness: &InconsistencyWitness,
) -> Result<Option<WitnessRecord>, String> {
    let protocol = entry.build_default();
    if let Err(e) = witness.verify(&protocol) {
        return Err(format!("{}: witness failed model replay: {e}", entry.name));
    }
    let (minimal, _) = witness.minimize_report(&protocol);
    let trace = minimal.flight_trace(entry.name, entry.default_n, entry.default_r);
    let bytes = trace.to_jsonl();
    let checksum = checksum_hex(bytes.as_bytes());
    if manifest.witnesses.iter().any(|w| w.checksum == checksum) {
        return Ok(None);
    }
    let mut file = String::new();
    let _ = write!(
        file,
        "{}-n{}-r{}-{}steps-{}.jsonl",
        entry.name,
        entry.default_n,
        entry.default_r,
        minimal.execution.len(),
        &checksum[..8]
    );
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    fs::write(dir.join(&file), &bytes)
        .map_err(|e| format!("cannot write {}: {e}", dir.join(&file).display()))?;
    let record = WitnessRecord {
        file,
        property: property_for(entry).to_string(),
        protocol: entry.name.to_string(),
        n: entry.default_n,
        r: entry.default_r,
        steps: minimal.execution.len(),
        processes_used: minimal.processes_used,
        checksum,
    };
    manifest.witnesses.push(record.clone());
    manifest.save(dir)?;
    Ok(Some(record))
}

/// Validate, shrink, checksum, and file an externally produced trace
/// (`randsync gate --add-witness`). The trace must parse, name a
/// registry protocol, and replay to an inconsistency; it is then
/// re-minimized and filed with provenance to the catalog property its
/// protocol's adversary family substantiates.
pub fn add_witness(dir: &Path, trace_path: &Path) -> Result<Option<WitnessRecord>, String> {
    let trace = ExecutionTrace::read_from(trace_path)
        .map_err(|e| format!("cannot read {}: {e}", trace_path.display()))?;
    let entry = registry::find(&trace.protocol)
        .ok_or_else(|| format!("registry has no protocol {:?}", trace.protocol))?;
    let protocol = (entry.build)(trace.n, trace.r);
    let witness = rebuild_witness(&protocol, &trace).ok_or_else(|| {
        format!(
            "{} does not witness an inconsistency (the replay never decides both values)",
            trace_path.display()
        )
    })?;
    // File against the registry default instance: witnesses the gate
    // replays forever should pin the canonical (n, r), and every
    // adversary target's default is the flawed instance.
    if (trace.n, trace.r) != (entry.default_n, entry.default_r) {
        return Err(format!(
            "trace was recorded on {} with n={} r={}, but the corpus pins the registry default \
             n={} r={}",
            entry.name, trace.n, trace.r, entry.default_n, entry.default_r
        ));
    }
    let mut manifest = match Manifest::load(dir) {
        Ok(m) => m,
        Err(_) if !dir.join(MANIFEST_FILE).exists() => Manifest::default(),
        Err(e) => return Err(e),
    };
    file_witness(dir, &mut manifest, entry, &witness)
}

/// Build the corpus from scratch: run each registry adversary target's
/// family adversary, shrink the witness, and file it. Idempotent —
/// already-filed (byte-identical) witnesses are skipped.
pub fn seed_corpus(dir: &Path) -> Result<Vec<WitnessRecord>, String> {
    let mut manifest = match Manifest::load(dir) {
        Ok(m) => m,
        Err(_) if !dir.join(MANIFEST_FILE).exists() => Manifest::default(),
        Err(e) => return Err(e),
    };
    let mut added = Vec::new();
    for entry in registry::adversary_targets() {
        let protocol = entry.build_default();
        let witness = match entry.attack {
            AttackFamily::RegisterIdentical => {
                match attack_for_witness(&protocol, &CombineLimits::default()) {
                    Ok((w, _)) => w,
                    Err(e) => return Err(format!("{}: adversary failed: {e}", entry.name)),
                }
            }
            AttackFamily::Historyless => {
                // Pool sized to the object count, as Lemma 3.6 requires
                // (one plain register is ample_pool(1); mixedzigzag
                // spans four historyless objects).
                let pool = ample_pool(protocol.objects().len());
                match attack_historyless(&protocol, pool, &ExploreLimits::default()) {
                    Ok(GeneralOutcome::Inconsistent { witness, .. }) => witness,
                    Ok(GeneralOutcome::InvalidExecution { .. }) => {
                        return Err(format!(
                            "{}: adversary produced a validity violation, not an inconsistency",
                            entry.name
                        ))
                    }
                    Err(e) => return Err(format!("{}: adversary failed: {e}", entry.name)),
                }
            }
            AttackFamily::NotApplicable => continue,
        };
        if let Some(record) = file_witness(dir, &mut manifest, entry, &witness)? {
            added.push(record);
        }
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(checksum_hex(b"foobar"), "85944171f73967e8");
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = Manifest {
            witnesses: vec![WitnessRecord {
                file: "naive-n3-r1-6steps-deadbeef.jsonl".to_string(),
                property: "thm-3.3-adversary".to_string(),
                protocol: "naive".to_string(),
                n: 3,
                r: 1,
                steps: 6,
                processes_used: 2,
                checksum: "deadbeefdeadbeef".to_string(),
            }],
        };
        let text = m.to_json().render();
        let back =
            Manifest::from_json(&randsync_obs::parse_json(&text).expect("valid JSON")).expect("parses");
        assert_eq!(back, m);
        assert_eq!(back.for_property("thm-3.3-adversary").count(), 1);
        assert_eq!(back.for_property("lemma-3.6").count(), 0);
    }

    #[test]
    fn manifest_rejects_wrong_schema_version() {
        let v = randsync_obs::parse_json("{\"schema_version\":99,\"witnesses\":[]}").unwrap();
        assert!(Manifest::from_json(&v).is_err());
    }
}
