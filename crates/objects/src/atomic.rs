//! Hardware-style primitives: thin, linearizable newtypes over
//! `std::sync::atomic`.
//!
//! Every type here uses sequentially consistent orderings. The point of
//! this crate is semantic fidelity to the paper's object types, not
//! squeezing fences; `SeqCst` makes the linearizability arguments
//! trivial (each operation is a single atomic instruction).

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

use crate::traits::{CompareSwap, Counter, FetchAdd, ReadWrite, ResetCounter, Swap, TestAndSet};

const ORD: Ordering = Ordering::SeqCst;

/// A read–write register (the paper's weakest object; historyless).
#[derive(Debug, Default)]
pub struct AtomicRegister {
    cell: AtomicI64,
}

impl AtomicRegister {
    /// A register holding `v`.
    pub fn new(v: i64) -> Self {
        AtomicRegister {
            cell: AtomicI64::new(v),
        }
    }
}

impl ReadWrite for AtomicRegister {
    fn read(&self) -> i64 {
        self.cell.load(ORD)
    }

    fn write(&self, v: i64) {
        self.cell.store(v, ORD);
    }
}

/// A swap register: READ / WRITE / SWAP (historyless; interfering).
#[derive(Debug, Default)]
pub struct SwapRegister {
    cell: AtomicI64,
}

impl SwapRegister {
    /// A swap register holding `v`.
    pub fn new(v: i64) -> Self {
        SwapRegister {
            cell: AtomicI64::new(v),
        }
    }
}

impl ReadWrite for SwapRegister {
    fn read(&self) -> i64 {
        self.cell.load(ORD)
    }

    fn write(&self, v: i64) {
        self.cell.store(v, ORD);
    }
}

impl Swap for SwapRegister {
    fn swap(&self, v: i64) -> i64 {
        self.cell.swap(v, ORD)
    }
}

/// A test&set flag over `{false, true}`, initially `false`
/// (historyless).
#[derive(Debug, Default)]
pub struct TestAndSetFlag {
    flag: AtomicBool,
}

impl TestAndSetFlag {
    /// A cleared flag.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TestAndSet for TestAndSetFlag {
    fn test_and_set(&self) -> bool {
        self.flag.swap(true, ORD)
    }

    fn reset(&self) {
        self.flag.store(false, ORD);
    }

    fn is_set(&self) -> bool {
        self.flag.load(ORD)
    }
}

/// A fetch&add register (commuting, **not** historyless — one instance
/// solves randomized n-process consensus, Theorem 4.4).
#[derive(Debug, Default)]
pub struct FetchAddRegister {
    cell: AtomicI64,
}

impl FetchAddRegister {
    /// A fetch&add register holding `v`.
    pub fn new(v: i64) -> Self {
        FetchAddRegister {
            cell: AtomicI64::new(v),
        }
    }
}

impl FetchAdd for FetchAddRegister {
    fn fetch_add(&self, delta: i64) -> i64 {
        self.cell.fetch_add(delta, ORD)
    }

    fn load(&self) -> i64 {
        self.cell.load(ORD)
    }
}

impl Counter for FetchAddRegister {
    fn inc(&self) {
        self.cell.fetch_add(1, ORD);
    }

    fn dec(&self) {
        self.cell.fetch_add(-1, ORD);
    }

    fn read(&self) -> i64 {
        self.cell.load(ORD)
    }
}

impl ResetCounter for FetchAddRegister {
    fn reset(&self) {
        self.cell.store(0, ORD);
    }
}

/// A fetch&increment register: FETCH&ADD(1) and READ only (see the
/// modeling note on
/// [`ObjectKind::FetchIncrement`](randsync_model::ObjectKind)).
#[derive(Debug, Default)]
pub struct FetchIncRegister {
    cell: AtomicI64,
}

impl FetchIncRegister {
    /// A fetch&increment register holding `v`.
    pub fn new(v: i64) -> Self {
        FetchIncRegister {
            cell: AtomicI64::new(v),
        }
    }

    /// Atomically increment, returning the previous value.
    pub fn fetch_inc(&self) -> i64 {
        self.cell.fetch_add(1, ORD)
    }

    /// Read the value without changing it.
    pub fn load(&self) -> i64 {
        self.cell.load(ORD)
    }
}

/// A fetch&decrement register: FETCH&ADD(-1) and READ only.
#[derive(Debug, Default)]
pub struct FetchDecRegister {
    cell: AtomicI64,
}

impl FetchDecRegister {
    /// A fetch&decrement register holding `v`.
    pub fn new(v: i64) -> Self {
        FetchDecRegister {
            cell: AtomicI64::new(v),
        }
    }

    /// Atomically decrement, returning the previous value.
    pub fn fetch_dec(&self) -> i64 {
        self.cell.fetch_add(-1, ORD)
    }

    /// Read the value without changing it.
    pub fn load(&self) -> i64 {
        self.cell.load(ORD)
    }
}

/// A compare&swap register (deterministically universal; **not**
/// historyless, **not** interfering).
#[derive(Debug, Default)]
pub struct CasRegister {
    cell: AtomicI64,
}

impl CasRegister {
    /// A CAS register holding `v`.
    pub fn new(v: i64) -> Self {
        CasRegister {
            cell: AtomicI64::new(v),
        }
    }
}

impl CompareSwap for CasRegister {
    fn compare_swap(&self, expected: i64, new: i64) -> i64 {
        match self.cell.compare_exchange(expected, new, ORD, ORD) {
            Ok(prev) => prev,
            Err(prev) => prev,
        }
    }

    fn load(&self) -> i64 {
        self.cell.load(ORD)
    }
}

/// An unbounded counter backed by a single atomic word.
#[derive(Debug, Default)]
pub struct AtomicCounter {
    cell: AtomicI64,
}

impl AtomicCounter {
    /// A counter at 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Counter for AtomicCounter {
    fn inc(&self) {
        self.cell.fetch_add(1, ORD);
    }

    fn dec(&self) {
        self.cell.fetch_add(-1, ORD);
    }

    fn read(&self) -> i64 {
        self.cell.load(ORD)
    }
}

impl ResetCounter for AtomicCounter {
    fn reset(&self) {
        self.cell.store(0, ORD);
    }
}

/// A bounded counter over the inclusive range `[lo, hi]`; INC and DEC
/// wrap modulo the range size (the paper's bounded-counter semantics,
/// used by Aspnes's one-counter consensus, Theorem 4.2).
///
/// Implemented with a CAS loop; each individual INC/DEC is lock-free
/// and linearizes at its successful compare-exchange.
#[derive(Debug)]
pub struct BoundedAtomicCounter {
    cell: AtomicI64,
    lo: i64,
    hi: i64,
}

impl BoundedAtomicCounter {
    /// A bounded counter over `[lo, hi]`, initially `0` clamped into
    /// range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "bounded counter range is empty");
        BoundedAtomicCounter {
            cell: AtomicI64::new(0i64.clamp(lo, hi)),
            lo,
            hi,
        }
    }

    /// The inclusive range of representable values.
    pub fn range(&self) -> (i64, i64) {
        (self.lo, self.hi)
    }

    fn add_wrapping(&self, delta: i64) {
        let size = self.hi - self.lo + 1;
        let mut cur = self.cell.load(ORD);
        loop {
            let next = self.lo + (cur - self.lo + delta).rem_euclid(size);
            match self.cell.compare_exchange_weak(cur, next, ORD, ORD) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }
}

impl Counter for BoundedAtomicCounter {
    fn inc(&self) {
        self.add_wrapping(1);
    }

    fn dec(&self) {
        self.add_wrapping(-1);
    }

    fn read(&self) -> i64 {
        self.cell.load(ORD)
    }
}

impl ResetCounter for BoundedAtomicCounter {
    fn reset(&self) {
        self.cell.store(0i64.clamp(self.lo, self.hi), ORD);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn register_read_write() {
        let r = AtomicRegister::new(3);
        assert_eq!(r.read(), 3);
        r.write(-9);
        assert_eq!(r.read(), -9);
    }

    #[test]
    fn swap_returns_previous() {
        let r = SwapRegister::new(1);
        assert_eq!(r.swap(2), 1);
        assert_eq!(r.swap(3), 2);
        assert_eq!(r.read(), 3);
    }

    #[test]
    fn tas_unique_winner_single_threaded() {
        let f = TestAndSetFlag::new();
        assert!(!f.is_set());
        assert!(!f.test_and_set());
        assert!(f.test_and_set());
        assert!(f.is_set());
        f.reset();
        assert!(!f.test_and_set());
    }

    #[test]
    fn fetch_add_and_counter_views_agree() {
        let fa = FetchAddRegister::new(10);
        assert_eq!(fa.fetch_add(-4), 10);
        assert_eq!(fa.load(), 6);
        fa.inc();
        fa.dec();
        fa.dec();
        assert_eq!(Counter::read(&fa), 5);
        fa.reset();
        assert_eq!(fa.load(), 0);
    }

    #[test]
    fn fetch_inc_dec_registers() {
        let fi = FetchIncRegister::new(0);
        assert_eq!(fi.fetch_inc(), 0);
        assert_eq!(fi.fetch_inc(), 1);
        assert_eq!(fi.load(), 2);
        let fd = FetchDecRegister::new(0);
        assert_eq!(fd.fetch_dec(), 0);
        assert_eq!(fd.load(), -1);
    }

    #[test]
    fn cas_success_and_failure() {
        let c = CasRegister::new(0);
        assert_eq!(c.compare_swap(0, 7), 0, "success returns previous");
        assert_eq!(c.compare_swap(0, 9), 7, "failure returns current");
        assert_eq!(c.load(), 7);
    }

    #[test]
    fn bounded_counter_wraps_both_ways() {
        let c = BoundedAtomicCounter::new(-2, 2);
        assert_eq!(c.range(), (-2, 2));
        for _ in 0..2 {
            c.inc();
        }
        assert_eq!(c.read(), 2);
        c.inc();
        assert_eq!(c.read(), -2, "inc past hi wraps");
        c.dec();
        assert_eq!(c.read(), 2, "dec past lo wraps");
        c.reset();
        assert_eq!(c.read(), 0);
    }

    #[test]
    #[should_panic(expected = "range is empty")]
    fn bounded_counter_rejects_empty_range() {
        let _ = BoundedAtomicCounter::new(3, 2);
    }

    #[test]
    fn concurrent_fetch_add_tickets_are_unique() {
        let fa = FetchAddRegister::new(0);
        let seen = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..100 {
                        let t = fa.fetch_add(1);
                        assert!((0..800).contains(&t));
                        seen.fetch_add(1, ORD);
                    }
                });
            }
        });
        assert_eq!(fa.load(), 800);
        assert_eq!(seen.load(ORD), 800);
    }

    #[test]
    fn concurrent_tas_has_exactly_one_winner() {
        for _ in 0..50 {
            let f = TestAndSetFlag::new();
            let winners = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        if !f.test_and_set() {
                            winners.fetch_add(1, ORD);
                        }
                    });
                }
            });
            assert_eq!(winners.load(ORD), 1);
        }
    }

    #[test]
    fn concurrent_bounded_counter_balances() {
        let c = BoundedAtomicCounter::new(-1000, 1000);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..250 {
                        c.inc();
                    }
                });
                s.spawn(|| {
                    for _ in 0..250 {
                        c.dec();
                    }
                });
            }
        });
        assert_eq!(c.read(), 0);
    }
}
