//! A wait-free counter from n single-writer read–write registers.
//!
//! The paper (Corollary 4.3 and its surrounding discussion) relies on
//! the existence of "deterministic counter implementations using O(n)
//! read-write registers \[9, 30\]". This module provides the classic
//! single-writer construction those citations build on: process `i`
//! records its net contribution in its own register; INC and DEC are a
//! single write to that register; READ is a *collect* — one read of each
//! register — summed.
//!
//! Every operation is wait-free (INC/DEC take one step, READ takes n).
//! The READ is *not* atomic with respect to concurrent INC/DEC by other
//! processes: like the counters of Aspnes–Herlihy \[9\], a read returns a
//! value between the minimum and maximum true count over its interval
//! (each per-process register is read exactly once, so the collect sees
//! each process's contribution at one instant inside the interval).
//! That regularity guarantee is exactly what the randomized-consensus
//! walk protocols need, and it is the reason the paper's O(n)-register
//! upper bounds hold without requiring an atomic snapshot.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use crate::traits::Counter;

const ORD: Ordering = Ordering::SeqCst;

/// A counter distributed across `n` single-writer read–write registers.
#[derive(Debug)]
pub struct RegisterCounter {
    slots: Arc<Vec<AtomicI64>>,
}

impl RegisterCounter {
    /// A counter for `n` processes, all contributions 0.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a counter needs at least one process slot");
        RegisterCounter {
            slots: Arc::new((0..n).map(|_| AtomicI64::new(0)).collect()),
        }
    }

    /// The number of register slots (= supported processes).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// The single-writer handle for process `i`. Only this handle may
    /// increment or decrement slot `i`; cloning the handle and using it
    /// from two threads concurrently would violate the single-writer
    /// discipline (updates could be lost, exactly as with a real
    /// read–write register).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_slots()`.
    pub fn handle(&self, i: usize) -> CounterHandle {
        assert!(i < self.slots.len(), "no slot {i}");
        CounterHandle {
            slots: Arc::clone(&self.slots),
            me: i,
        }
    }

    /// READ: collect every register once and sum.
    pub fn read(&self) -> i64 {
        self.slots.iter().map(|s| s.load(ORD)).sum()
    }
}

/// Process `i`'s handle onto a [`RegisterCounter`].
#[derive(Debug)]
pub struct CounterHandle {
    slots: Arc<Vec<AtomicI64>>,
    me: usize,
}

impl CounterHandle {
    /// INC: one write to the owned register.
    pub fn inc(&self) {
        // Single-writer: a plain load+store of the owned slot is a
        // faithful read–write-register usage (no RMW is needed or used).
        let v = self.slots[self.me].load(ORD);
        self.slots[self.me].store(v + 1, ORD);
    }

    /// DEC: one write to the owned register.
    pub fn dec(&self) {
        let v = self.slots[self.me].load(ORD);
        self.slots[self.me].store(v - 1, ORD);
    }

    /// READ: a collect over all registers.
    pub fn read(&self) -> i64 {
        self.slots.iter().map(|s| s.load(ORD)).sum()
    }

    /// This handle's process index.
    pub fn index(&self) -> usize {
        self.me
    }
}

impl Counter for CounterHandle {
    fn inc(&self) {
        CounterHandle::inc(self);
    }

    fn dec(&self) {
        CounterHandle::dec(self);
    }

    fn read(&self) -> i64 {
        CounterHandle::read(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_counting() {
        let c = RegisterCounter::new(3);
        let h0 = c.handle(0);
        let h2 = c.handle(2);
        h0.inc();
        h0.inc();
        h2.dec();
        assert_eq!(c.read(), 1);
        assert_eq!(h0.read(), 1);
        assert_eq!(h2.index(), 2);
    }

    #[test]
    #[should_panic(expected = "no slot")]
    fn out_of_range_handle_panics() {
        let c = RegisterCounter::new(2);
        let _ = c.handle(2);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_slots_rejected() {
        let _ = RegisterCounter::new(0);
    }

    #[test]
    fn concurrent_single_writer_counting_is_exact_at_quiescence() {
        let c = RegisterCounter::new(8);
        std::thread::scope(|s| {
            for i in 0..8 {
                let h = c.handle(i);
                s.spawn(move || {
                    for k in 0..1000 {
                        if k % 3 == 0 {
                            h.dec();
                        } else {
                            h.inc();
                        }
                    }
                });
            }
        });
        // Each thread: 666 incs, 334 decs → net +332; times 8 threads.
        assert_eq!(c.read(), 8 * (666 - 334));
    }

    #[test]
    fn reads_stay_within_the_true_count_envelope() {
        // With only increments, any collect must return a value between
        // 0 and the final count, and reads by one thread are monotone
        // while others only increment.
        let c = RegisterCounter::new(4);
        let total = 4 * 500;
        std::thread::scope(|s| {
            for i in 0..4 {
                let h = c.handle(i);
                s.spawn(move || {
                    for _ in 0..500 {
                        h.inc();
                    }
                });
            }
            let reader = c.handle(0);
            s.spawn(move || {
                let mut last = 0;
                for _ in 0..200 {
                    let v = reader.read();
                    assert!((0..=total as i64).contains(&v));
                    assert!(v >= last, "increment-only counts are monotone per reader");
                    last = v;
                }
            });
        });
        assert_eq!(c.read(), total as i64);
    }
}
