//! The object bridge: an atomics-backed [`DynObject`] for every
//! bridgeable [`ObjectKind`].
//!
//! The threaded runtime (`randsync_model::runtime`) drives protocol
//! state machines against objects behind the [`DynObject`] trait. This
//! module supplies the production implementations: each [`ObjectSpec`]
//! is mapped to the matching lock-free object from this crate, so a
//! model-checked protocol runs on the very atomics the paper's upper
//! bounds are about.
//!
//! Register-family objects ([`ObjectKind::Register`],
//! [`ObjectKind::SwapRegister`], [`ObjectKind::CompareSwap`]) hold
//! arbitrary model [`Value`]s while the underlying atomics hold a
//! single `i64` word, so those bridges go through a small injective
//! word codec ([`encode_value`]/[`decode_value`]). Equality of encoded
//! words coincides with equality of values, which is all a register,
//! swap, or compare&swap semantics ever asks of its contents. The
//! integer-valued kinds (fetch&add family, counters, test&set) bridge
//! directly.
//!
//! The bridge's soundness contract — every response equals what
//! [`ObjectKind::apply`] prescribes at the linearization point — is
//! exercised by `tests/prop_kind_conformance.rs`.

use randsync_model::runtime::DynObject;
use randsync_model::{ModelError, ObjectKind, ObjectSpec, Operation, Protocol, Response, Value};

use crate::atomic::{
    AtomicCounter, AtomicRegister, BoundedAtomicCounter, CasRegister, FetchAddRegister,
    SwapRegister, TestAndSetFlag,
};
use crate::traits::{CompareSwap, Counter, FetchAdd, ReadWrite, ResetCounter, Swap, TestAndSet};

/// Half-range bound for each component of an encoded [`Value::Pair`].
const PAIR_HALF: i64 = 1 << 29;

/// Encode a model [`Value`] into a single `i64` word.
///
/// The encoding is injective (distinct values get distinct words), so
/// word equality is value equality — the property register, swap and
/// compare&swap semantics rely on. Layout: a 2-bit tag in the low bits
/// (`0` = Int, `1` = Bool, `2` = Pair, `3` = Bottom) under the payload.
///
/// # Panics
///
/// Panics if an `Int` exceeds 61 bits of magnitude or a `Pair`
/// component exceeds ±2²⁹ — far beyond anything a protocol in this
/// workspace stores.
pub fn encode_value(v: &Value) -> i64 {
    match v {
        Value::Int(x) => {
            assert!(
                (-(1 << 60)..(1 << 60)).contains(x),
                "register word overflow encoding {x}"
            );
            x << 2 // tag 0b00
        }
        Value::Bool(b) => ((*b as i64) << 2) | 0b01,
        Value::Pair(a, b) => {
            assert!(
                (-PAIR_HALF..PAIR_HALF).contains(a) && (-PAIR_HALF..PAIR_HALF).contains(b),
                "register word overflow encoding pair ({a}, {b})"
            );
            let packed = (a + PAIR_HALF) | ((b + PAIR_HALF) << 31);
            (packed << 2) | 0b10
        }
        Value::Bottom => 0b11,
    }
}

/// Decode a word produced by [`encode_value`] back into a [`Value`].
pub fn decode_value(w: i64) -> Value {
    match w & 0b11 {
        0b00 => Value::Int(w >> 2),
        0b01 => Value::Bool((w >> 2) != 0),
        0b10 => {
            let packed = w >> 2;
            let a = (packed & ((1 << 31) - 1)) - PAIR_HALF;
            let b = (packed >> 31) - PAIR_HALF;
            Value::Pair(a, b)
        }
        _ => Value::Bottom,
    }
}

fn unsupported(kind: ObjectKind, op: &Operation) -> ModelError {
    ModelError::UnsupportedOperation { kind, op: *op }
}

/// Per-object operation counter feeding `bridge.ops.<kind>` in the
/// global metrics registry.
///
/// The disabled path is one relaxed load and a branch — no atomic
/// write, no registry lookup — which is what keeps the `ops_bridged_dyn`
/// bench delta within noise (EXPERIMENTS.md). The handle resolves
/// lazily on the first counted operation, so merely instantiating
/// objects never registers metrics.
#[derive(Debug, Default)]
struct OpCounter(std::sync::OnceLock<randsync_obs::Counter>);

impl OpCounter {
    #[inline]
    fn hit(&self, kind: ObjectKind) {
        if randsync_obs::metrics_enabled() {
            self.0
                .get_or_init(|| {
                    randsync_obs::global_metrics().counter(&format!("bridge.ops.{}", kind.slug()))
                })
                .inc();
        }
    }
}

/// [`ObjectKind::Register`] over an [`AtomicRegister`] holding encoded
/// words.
#[derive(Debug)]
struct RegisterObject {
    inner: AtomicRegister,
    stats: OpCounter,
}

impl DynObject for RegisterObject {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Register
    }

    fn apply(&self, _process: usize, op: &Operation) -> Result<Response, ModelError> {
        self.stats.hit(self.kind());
        match op {
            Operation::Read => Ok(Response::Value(decode_value(self.inner.read()))),
            Operation::Write(x) => {
                self.inner.write(encode_value(x));
                Ok(Response::Ack)
            }
            other => Err(unsupported(self.kind(), other)),
        }
    }
}

/// [`ObjectKind::SwapRegister`] over a [`SwapRegister`] holding encoded
/// words.
#[derive(Debug)]
struct SwapObject {
    inner: SwapRegister,
    stats: OpCounter,
}

impl DynObject for SwapObject {
    fn kind(&self) -> ObjectKind {
        ObjectKind::SwapRegister
    }

    fn apply(&self, _process: usize, op: &Operation) -> Result<Response, ModelError> {
        self.stats.hit(self.kind());
        match op {
            Operation::Read => Ok(Response::Value(decode_value(self.inner.read()))),
            Operation::Write(x) => {
                self.inner.write(encode_value(x));
                Ok(Response::Ack)
            }
            Operation::Swap(x) => Ok(Response::Value(decode_value(
                self.inner.swap(encode_value(x)),
            ))),
            other => Err(unsupported(self.kind(), other)),
        }
    }
}

/// [`ObjectKind::TestAndSet`] over a [`TestAndSetFlag`].
#[derive(Debug)]
struct TasObject {
    inner: TestAndSetFlag,
    stats: OpCounter,
}

impl DynObject for TasObject {
    fn kind(&self) -> ObjectKind {
        ObjectKind::TestAndSet
    }

    fn apply(&self, _process: usize, op: &Operation) -> Result<Response, ModelError> {
        self.stats.hit(self.kind());
        match op {
            Operation::Read => Ok(Response::Value(Value::Bool(self.inner.is_set()))),
            Operation::TestAndSet => Ok(Response::Value(Value::Bool(self.inner.test_and_set()))),
            Operation::Reset => {
                self.inner.reset();
                Ok(Response::Ack)
            }
            other => Err(unsupported(self.kind(), other)),
        }
    }
}

/// The fetch&add family ([`ObjectKind::FetchAdd`],
/// [`ObjectKind::FetchIncrement`], [`ObjectKind::FetchDecrement`]) over
/// a [`FetchAddRegister`]; the restricted kinds only differ in which
/// deltas [`ObjectKind::supports`] admits, so the same atomic backs all
/// three.
#[derive(Debug)]
struct FetchAddObject {
    kind: ObjectKind,
    inner: FetchAddRegister,
    stats: OpCounter,
}

impl DynObject for FetchAddObject {
    fn kind(&self) -> ObjectKind {
        self.kind
    }

    fn apply(&self, _process: usize, op: &Operation) -> Result<Response, ModelError> {
        self.stats.hit(self.kind);
        if !self.kind.supports(op) {
            return Err(unsupported(self.kind, op));
        }
        match op {
            Operation::Read => Ok(Response::Value(Value::Int(self.inner.load()))),
            Operation::FetchAdd(a) => Ok(Response::Value(Value::Int(self.inner.fetch_add(*a)))),
            other => Err(unsupported(self.kind, other)),
        }
    }
}

/// [`ObjectKind::CompareSwap`] over a [`CasRegister`] holding encoded
/// words.
#[derive(Debug)]
struct CasObject {
    inner: CasRegister,
    stats: OpCounter,
}

impl DynObject for CasObject {
    fn kind(&self) -> ObjectKind {
        ObjectKind::CompareSwap
    }

    fn apply(&self, _process: usize, op: &Operation) -> Result<Response, ModelError> {
        self.stats.hit(self.kind());
        match op {
            Operation::Read => Ok(Response::Value(decode_value(self.inner.load()))),
            Operation::CompareSwap { expected, new } => {
                let old = self
                    .inner
                    .compare_swap(encode_value(expected), encode_value(new));
                Ok(Response::Value(decode_value(old)))
            }
            other => Err(unsupported(self.kind(), other)),
        }
    }
}

/// [`ObjectKind::Counter`] over an [`AtomicCounter`].
#[derive(Debug)]
struct CounterObject {
    inner: AtomicCounter,
    stats: OpCounter,
}

impl DynObject for CounterObject {
    fn kind(&self) -> ObjectKind {
        ObjectKind::Counter
    }

    fn apply(&self, _process: usize, op: &Operation) -> Result<Response, ModelError> {
        self.stats.hit(self.kind());
        match op {
            Operation::Read => Ok(Response::Value(Value::Int(self.inner.read()))),
            Operation::Inc => {
                self.inner.inc();
                Ok(Response::Ack)
            }
            Operation::Dec => {
                self.inner.dec();
                Ok(Response::Ack)
            }
            Operation::Reset => {
                self.inner.reset();
                Ok(Response::Ack)
            }
            other => Err(unsupported(self.kind(), other)),
        }
    }
}

/// [`ObjectKind::BoundedCounter`] over a [`BoundedAtomicCounter`] with
/// the same range (and therefore the same wrap-around semantics).
#[derive(Debug)]
struct BoundedCounterObject {
    inner: BoundedAtomicCounter,
    stats: OpCounter,
}

impl DynObject for BoundedCounterObject {
    fn kind(&self) -> ObjectKind {
        let (lo, hi) = self.inner.range();
        ObjectKind::BoundedCounter { lo, hi }
    }

    fn apply(&self, _process: usize, op: &Operation) -> Result<Response, ModelError> {
        self.stats.hit(self.kind());
        match op {
            Operation::Read => Ok(Response::Value(Value::Int(self.inner.read()))),
            Operation::Inc => {
                self.inner.inc();
                Ok(Response::Ack)
            }
            Operation::Dec => {
                self.inner.dec();
                Ok(Response::Ack)
            }
            Operation::Reset => {
                self.inner.reset();
                Ok(Response::Ack)
            }
            other => Err(unsupported(self.kind(), other)),
        }
    }
}

/// Build the atomics-backed object for `spec`.
///
/// Every [`ObjectKind`] is bridgeable. The integer-valued kinds whose
/// concrete objects fix their own initial value (test&set flags start
/// unset, counters start at the kind's initial) reject specs that ask
/// for a different one with [`ModelError::TypeMismatch`]; the
/// word-codec kinds and the fetch&add family honour any initial value.
///
/// # Errors
///
/// [`ModelError::TypeMismatch`] if `spec.initial` is outside the kind's
/// value space or not representable by the concrete object.
pub fn instantiate(spec: &ObjectSpec) -> Result<Box<dyn DynObject>, ModelError> {
    let mismatch = || ModelError::TypeMismatch {
        kind: spec.kind,
        value: spec.initial,
    };
    Ok(match spec.kind {
        ObjectKind::Register => Box::new(RegisterObject {
            inner: AtomicRegister::new(encode_value(&spec.initial)),
            stats: OpCounter::default(),
        }),
        ObjectKind::SwapRegister => Box::new(SwapObject {
            inner: SwapRegister::new(encode_value(&spec.initial)),
            stats: OpCounter::default(),
        }),
        ObjectKind::CompareSwap => Box::new(CasObject {
            inner: CasRegister::new(encode_value(&spec.initial)),
            stats: OpCounter::default(),
        }),
        ObjectKind::TestAndSet => {
            if spec.initial != Value::Bool(false) {
                return Err(mismatch());
            }
            Box::new(TasObject {
                inner: TestAndSetFlag::new(),
                stats: OpCounter::default(),
            })
        }
        ObjectKind::FetchAdd | ObjectKind::FetchIncrement | ObjectKind::FetchDecrement => {
            let init = spec.initial.as_int().ok_or_else(mismatch)?;
            Box::new(FetchAddObject {
                kind: spec.kind,
                inner: FetchAddRegister::new(init),
                stats: OpCounter::default(),
            })
        }
        ObjectKind::Counter => {
            if spec.initial != Value::Int(0) {
                return Err(mismatch());
            }
            Box::new(CounterObject {
                inner: AtomicCounter::new(),
                stats: OpCounter::default(),
            })
        }
        ObjectKind::BoundedCounter { lo, hi } => {
            if spec.initial != spec.kind.initial_value() {
                return Err(mismatch());
            }
            Box::new(BoundedCounterObject {
                inner: BoundedAtomicCounter::new(lo, hi),
                stats: OpCounter::default(),
            })
        }
    })
}

/// One atomics-backed object per [`ObjectSpec`] of `protocol`, in
/// object-id order — ready to hand to
/// [`Runtime::run`](randsync_model::Runtime::run).
///
/// # Errors
///
/// See [`instantiate`].
pub fn instantiate_all<P: Protocol>(protocol: &P) -> Result<Vec<Box<dyn DynObject>>, ModelError> {
    protocol.objects().iter().map(instantiate).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_and_separates() {
        let values = [
            Value::Bottom,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(0),
            Value::Int(1),
            Value::Int(-1),
            Value::Int(123_456_789),
            Value::Pair(0, 0),
            Value::Pair(-3, 7),
            Value::Pair(PAIR_HALF - 1, -PAIR_HALF),
        ];
        for v in &values {
            assert_eq!(&decode_value(encode_value(v)), v, "round trip {v:?}");
        }
        for (i, a) in values.iter().enumerate() {
            for b in &values[i + 1..] {
                assert_ne!(encode_value(a), encode_value(b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn bottom_and_int_zero_are_distinct_words() {
        // The ⊥-vs-written distinction is what one-CAS consensus hinges
        // on; the codec must never conflate them.
        assert_ne!(encode_value(&Value::Bottom), encode_value(&Value::Int(0)));
    }

    #[test]
    fn every_kind_instantiates_with_default_initial() {
        for kind in ObjectKind::all() {
            let spec = ObjectSpec::new(kind, "o");
            let obj = instantiate(&spec).expect("default initial bridges");
            assert_eq!(obj.kind(), kind);
            // The first read must observe the declared initial value.
            let (_, expect) = kind.apply(&spec.initial, &Operation::Read).unwrap();
            assert_eq!(obj.apply(0, &Operation::Read).unwrap(), expect, "{kind:?}");
        }
    }

    #[test]
    fn register_family_honours_bottom_initials() {
        for kind in [
            ObjectKind::Register,
            ObjectKind::SwapRegister,
            ObjectKind::CompareSwap,
        ] {
            let spec = ObjectSpec::with_initial(kind, Value::Bottom, "o");
            let obj = instantiate(&spec).unwrap();
            assert_eq!(
                obj.apply(0, &Operation::Read).unwrap(),
                Response::Value(Value::Bottom)
            );
        }
    }

    #[test]
    fn fixed_initial_kinds_reject_other_initials() {
        for spec in [
            ObjectSpec::with_initial(ObjectKind::TestAndSet, Value::Bool(true), "o"),
            ObjectSpec::with_initial(ObjectKind::Counter, Value::Int(5), "o"),
            ObjectSpec::with_initial(
                ObjectKind::BoundedCounter { lo: -2, hi: 2 },
                Value::Int(1),
                "o",
            ),
        ] {
            assert!(matches!(
                instantiate(&spec),
                Err(ModelError::TypeMismatch { .. })
            ));
        }
    }

    #[test]
    fn unsupported_operations_are_rejected() {
        let reg = instantiate(&ObjectSpec::new(ObjectKind::Register, "r")).unwrap();
        assert!(matches!(
            reg.apply(0, &Operation::Swap(Value::Int(1))),
            Err(ModelError::UnsupportedOperation { .. })
        ));
        let fi = instantiate(&ObjectSpec::new(ObjectKind::FetchIncrement, "t")).unwrap();
        assert!(matches!(
            fi.apply(0, &Operation::FetchAdd(2)),
            Err(ModelError::UnsupportedOperation { .. })
        ));
    }

    #[test]
    fn cas_object_matches_model_semantics() {
        let spec = ObjectSpec::new(ObjectKind::CompareSwap, "d");
        let obj = instantiate(&spec).unwrap();
        let cas = |e: Value, n: Value| {
            obj.apply(
                0,
                &Operation::CompareSwap {
                    expected: e,
                    new: n,
                },
            )
            .unwrap()
        };
        assert_eq!(
            cas(Value::Bottom, Value::Int(1)),
            Response::Value(Value::Bottom)
        );
        assert_eq!(
            cas(Value::Bottom, Value::Int(0)),
            Response::Value(Value::Int(1))
        );
        assert_eq!(
            obj.apply(0, &Operation::Read).unwrap(),
            Response::Value(Value::Int(1)),
            "failed CAS must not overwrite"
        );
    }

    #[test]
    fn metrics_count_bridged_operations_only_when_enabled() {
        // Counters are process-global: assert on before/after deltas so
        // concurrently running tests cannot interfere (none of them
        // enables metrics).
        let obj = instantiate(&ObjectSpec::new(ObjectKind::SwapRegister, "s")).unwrap();
        obj.apply(0, &Operation::Read).unwrap();
        let before = randsync_obs::global_metrics()
            .snapshot()
            .counter("bridge.ops.swap")
            .unwrap_or(0);
        randsync_obs::set_metrics_enabled(true);
        obj.apply(0, &Operation::Swap(Value::Int(4))).unwrap();
        obj.apply(1, &Operation::Read).unwrap();
        randsync_obs::set_metrics_enabled(false);
        obj.apply(0, &Operation::Read).unwrap();
        let after = randsync_obs::global_metrics()
            .snapshot()
            .counter("bridge.ops.swap")
            .unwrap_or(0);
        assert_eq!(after - before, 2, "only the enabled-window ops count");
    }
}
