//! The double-collect snapshot.
//!
//! The paper uses "the simple snapshot algorithm following Observation 1
//! in \[3\]" (Afek et al.) as its example separating *nondeterministic
//! solo termination* from (randomized) wait-freedom: a scanner that
//! repeatedly collects all n single-writer segments until two successive
//! collects are identical. Running solo, the second collect always
//! matches — the algorithm satisfies nondeterministic solo termination —
//! but an adversary that keeps updating can starve the scanner forever,
//! so it is not wait-free.
//!
//! Each segment stores `(sequence number, value)` packed into one atomic
//! word, so a collect distinguishes "same value rewritten" from
//! "untouched".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const ORD: Ordering = Ordering::SeqCst;

fn pack(seq: u32, value: i32) -> u64 {
    ((seq as u64) << 32) | (value as u32 as u64)
}

fn unpack(word: u64) -> (u32, i32) {
    ((word >> 32) as u32, word as u32 as i32)
}

/// An n-segment single-writer snapshot object.
#[derive(Debug)]
pub struct SnapshotArray {
    segments: Arc<Vec<AtomicU64>>,
}

impl SnapshotArray {
    /// A snapshot object with `n` segments, all 0.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a snapshot needs at least one segment");
        SnapshotArray {
            segments: Arc::new((0..n).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// UPDATE: process `i` installs `value` in its segment, bumping the
    /// sequence number. Single-writer: only process `i` may call this
    /// for segment `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn update(&self, i: usize, value: i32) {
        let (seq, _) = unpack(self.segments[i].load(ORD));
        self.segments[i].store(pack(seq.wrapping_add(1), value), ORD);
    }

    /// One *collect*: read every segment once.
    fn collect(&self) -> Vec<u64> {
        self.segments.iter().map(|s| s.load(ORD)).collect()
    }

    /// SCAN by double collect: loop until two successive collects agree,
    /// then return the common values.
    ///
    /// Termination: guaranteed when the scanner runs alone (the paper's
    /// nondeterministic solo termination), and with probability 1 under
    /// schedulers that eventually pause the writers — but **not**
    /// wait-free: a sufficiently adversarial writer starves this loop.
    /// Use [`SnapshotArray::try_scan`] when a bound is needed.
    pub fn scan(&self) -> Vec<i32> {
        loop {
            if let Some(v) = self.scan_once() {
                return v;
            }
        }
    }

    /// A bounded scan: at most `attempts` double collects.
    /// Returns `None` if every attempt observed interference.
    pub fn try_scan(&self, attempts: usize) -> Option<Vec<i32>> {
        (0..attempts).find_map(|_| self.scan_once())
    }

    fn scan_once(&self) -> Option<Vec<i32>> {
        let c1 = self.collect();
        let c2 = self.collect();
        (c1 == c2).then(|| c1.into_iter().map(|w| unpack(w).1).collect())
    }
}

impl Clone for SnapshotArray {
    fn clone(&self) -> Self {
        SnapshotArray {
            segments: Arc::clone(&self.segments),
        }
    }
}

/// A counter built from `n` single-writer registers whose READ is an
/// atomic snapshot scan.
///
/// Process `i` keeps its net contribution in segment `i`; INC and DEC
/// are one register write each (wait-free); READ scans by double
/// collect and sums. A scan that returns is **atomic** — identical
/// double collects mean every segment was simultaneously present at the
/// instant between the collects (Observation 1 of Afek et al., which
/// the paper cites as its example of nondeterministic solo
/// termination) — so the combined object is a linearizable counter.
/// READ is not wait-free: interference can starve the scan, but running
/// solo the very first double collect agrees.
///
/// This is the O(n)-read–write-register counter substrate behind the
/// paper's register upper bounds (Section 1, Corollary 4.3).
#[derive(Debug, Clone)]
pub struct SnapshotCounter {
    snap: SnapshotArray,
}

impl SnapshotCounter {
    /// A snapshot counter for `n` processes, all contributions 0.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        SnapshotCounter {
            snap: SnapshotArray::new(n),
        }
    }

    /// Number of single-writer register slots.
    pub fn num_slots(&self) -> usize {
        self.snap.num_segments()
    }

    fn contribution(&self, i: usize) -> i32 {
        unpack(self.snap.segments[i].load(ORD)).1
    }

    /// INC by process `i`: one write to its own segment.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn inc(&self, i: usize) {
        self.snap.update(i, self.contribution(i) + 1);
    }

    /// DEC by process `i`: one write to its own segment.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn dec(&self, i: usize) {
        self.snap.update(i, self.contribution(i) - 1);
    }

    /// Atomic READ: scan and sum. Loops until a double collect agrees.
    pub fn read(&self) -> i64 {
        self.snap.scan().into_iter().map(|v| v as i64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trips() {
        for (s, v) in [(0u32, 0i32), (1, -1), (u32::MAX, i32::MIN), (7, 42)] {
            assert_eq!(unpack(pack(s, v)), (s, v));
        }
    }

    #[test]
    fn solo_scan_terminates_immediately() {
        let snap = SnapshotArray::new(4);
        snap.update(2, 9);
        snap.update(0, -3);
        // Running alone: the very first double collect must agree.
        assert_eq!(snap.try_scan(1), Some(vec![-3, 0, 9, 0]));
    }

    #[test]
    fn rewriting_the_same_value_is_visible_via_sequence_numbers() {
        let snap = SnapshotArray::new(1);
        snap.update(0, 5);
        let before = snap.segments[0].load(ORD);
        snap.update(0, 5);
        let after = snap.segments[0].load(ORD);
        assert_ne!(before, after, "same value, different sequence number");
        assert_eq!(unpack(before).1, unpack(after).1);
    }

    #[test]
    fn concurrent_scans_return_consistent_vectors() {
        // Writers keep segment i equal to segment i+1 at quiescent
        // points by writing pairs; scans that succeed must never see a
        // torn pair from a single writer's two sequential updates...
        // Here we check the weaker, precise property: a returned scan
        // equals some collect that was stable across two passes — i.e.
        // all returned values were simultaneously present.
        let snap = SnapshotArray::new(2);
        std::thread::scope(|s| {
            let w = snap.clone();
            s.spawn(move || {
                for k in 0..2000i32 {
                    // Keep the invariant: segment1 = -segment0, updated
                    // 0 then 1.
                    w.update(0, k);
                    w.update(1, -k);
                }
            });
            let r = snap.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    if let Some(v) = r.try_scan(64) {
                        // Either the writer was between the two updates
                        // (v[1] == -(v[0]-1)) or at a quiescent point
                        // (v[1] == -v[0]).
                        assert!(v[1] == -v[0] || v[1] == -(v[0] - 1), "torn snapshot: {v:?}");
                    }
                }
            });
        });
    }

    #[test]
    fn scan_after_writers_finish_sees_final_values() {
        let snap = SnapshotArray::new(3);
        std::thread::scope(|s| {
            for i in 0..3 {
                let w = snap.clone();
                s.spawn(move || {
                    for k in 0..100 {
                        w.update(i, k * (i as i32 + 1));
                    }
                });
            }
        });
        assert_eq!(snap.scan(), vec![99, 198, 297]);
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn zero_segments_rejected() {
        let _ = SnapshotArray::new(0);
    }

    #[test]
    fn snapshot_counter_sequential_semantics() {
        let c = SnapshotCounter::new(3);
        assert_eq!(c.num_slots(), 3);
        c.inc(0);
        c.inc(0);
        c.dec(2);
        assert_eq!(c.read(), 1);
    }

    #[test]
    fn snapshot_counter_concurrent_balance() {
        let c = SnapshotCounter::new(6);
        std::thread::scope(|s| {
            for i in 0..6 {
                let c = c.clone();
                s.spawn(move || {
                    for k in 0..400 {
                        if (k + i) % 2 == 0 {
                            c.inc(i);
                        } else {
                            c.dec(i);
                        }
                    }
                });
            }
        });
        assert_eq!(c.read(), 0);
    }

    #[test]
    fn snapshot_counter_reads_are_snapshots() {
        // Writer keeps slots 0 and 1 opposite; an atomic read must
        // always sum to 0 or the one-off mid-update value (+1).
        let c = SnapshotCounter::new(2);
        std::thread::scope(|s| {
            let w = c.clone();
            s.spawn(move || {
                for _ in 0..1500 {
                    w.inc(0);
                    w.dec(1);
                }
            });
            let r = c.clone();
            s.spawn(move || {
                for _ in 0..300 {
                    let v = r.read();
                    assert!(v == 0 || v == 1, "non-atomic counter read: {v}");
                }
            });
        });
    }
}
