//! # randsync-objects
//!
//! Real, threaded implementations of every shared-object type the paper
//! discusses, all linearizable, plus the register-based constructions
//! its separation results rely on:
//!
//! * **hardware-style primitives** ([`atomic`]): read–write registers,
//!   swap registers, test&set flags, fetch&add / fetch&increment /
//!   fetch&decrement registers, compare&swap registers, and (bounded)
//!   counters, each a thin newtype over `std::sync::atomic` with the
//!   exact sequential semantics of the corresponding
//!   [`ObjectKind`](randsync_model::ObjectKind);
//! * **the O(n)-register counter** ([`register_counter`]): a wait-free
//!   counter built from n single-writer read–write registers — the
//!   upper-bound substrate behind Corollary 4.3's O(n) side (the
//!   counter constructions cited as [9, 30] in the paper);
//! * **the double-collect snapshot** ([`snapshot`]): the paper's example
//!   of an algorithm that satisfies *nondeterministic solo termination*
//!   but is not wait-free;
//! * **history recorders** ([`recorder`]): wrappers that log each
//!   operation's invocation/response interval so concurrent runs can be
//!   validated with the model crate's Wing–Gong linearizability checker.
//!
//! ## Example
//!
//! ```
//! use randsync_objects::{FetchAddRegister, TestAndSetFlag};
//! use randsync_objects::traits::{FetchAdd, TestAndSet};
//!
//! let fa = FetchAddRegister::new(0);
//! assert_eq!(fa.fetch_add(5), 0);
//! assert_eq!(fa.load(), 5);
//!
//! let flag = TestAndSetFlag::new();
//! assert!(!flag.test_and_set(), "first caller wins");
//! assert!(flag.test_and_set(), "subsequent callers lose");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomic;
pub mod bridge;
pub mod locks;
pub mod recorder;
pub mod register_counter;
pub mod snapshot;
pub mod traits;

pub use atomic::{
    AtomicCounter, AtomicRegister, BoundedAtomicCounter, CasRegister, FetchAddRegister,
    FetchDecRegister, FetchIncRegister, SwapRegister, TestAndSetFlag,
};
pub use bridge::{decode_value, encode_value, instantiate, instantiate_all};
pub use locks::{PetersonLock, TasLock};
pub use recorder::Recorder;
pub use register_counter::{CounterHandle, RegisterCounter};
pub use snapshot::{SnapshotArray, SnapshotCounter};
