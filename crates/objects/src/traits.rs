//! Operation traits for threaded shared objects.
//!
//! Each trait corresponds to the operation set of one
//! [`ObjectKind`](randsync_model::ObjectKind). Values are `i64` words
//! (the model's `Value::Int`); consensus protocols encode richer records
//! into words exactly as hardware programs do. All traits require
//! `Send + Sync` so objects can be shared across threads by reference.

/// READ / WRITE — the operation set of a read–write register.
pub trait ReadWrite: Send + Sync {
    /// Respond with the current value (trivial: never changes it).
    fn read(&self) -> i64;
    /// Set the value to `v`.
    fn write(&self, v: i64);
}

/// SWAP — writes `v` and responds with the previous value.
pub trait Swap: ReadWrite {
    /// Atomically set the value to `v`, returning the value it replaced.
    fn swap(&self, v: i64) -> i64;
}

/// TEST&SET over `{false, true}`.
pub trait TestAndSet: Send + Sync {
    /// Atomically set the flag, returning the **previous** value: the
    /// unique caller that observes `false` "wins" the flag.
    fn test_and_set(&self) -> bool;
    /// Clear the flag.
    fn reset(&self);
    /// Read the flag without changing it (trivial).
    fn is_set(&self) -> bool;
}

/// FETCH&ADD — the paper's fetch&add register.
pub trait FetchAdd: Send + Sync {
    /// Atomically add `delta`, returning the previous value.
    fn fetch_add(&self, delta: i64) -> i64;
    /// Read the value without changing it (= the information content of
    /// `fetch_add(0)`).
    fn load(&self) -> i64;
}

/// COMPARE&SWAP.
pub trait CompareSwap: Send + Sync {
    /// If the value equals `expected`, set it to `new`. Returns the
    /// previous value in either case (success iff the return equals
    /// `expected`).
    fn compare_swap(&self, expected: i64, new: i64) -> i64;
    /// Read the value without changing it (trivial).
    fn load(&self) -> i64;
}

/// INC / DEC / READ — the paper's counter, minus RESET (see
/// [`ResetCounter`]).
pub trait Counter: Send + Sync {
    /// Increment the count.
    fn inc(&self);
    /// Decrement the count.
    fn dec(&self);
    /// Respond with the current count (trivial).
    fn read(&self) -> i64;
}

/// RESET for counters that support it. Split out because the
/// O(n)-register counter construction provides INC/DEC/READ wait-free
/// but no linearizable RESET.
pub trait ResetCounter: Counter {
    /// Set the count to 0.
    fn reset(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traits_are_object_safe() {
        // The separation harness stores heterogeneous objects behind
        // trait objects; these casts must stay legal.
        fn _rw(_: &dyn ReadWrite) {}
        fn _sw(_: &dyn Swap) {}
        fn _ts(_: &dyn TestAndSet) {}
        fn _fa(_: &dyn FetchAdd) {}
        fn _cs(_: &dyn CompareSwap) {}
        fn _ct(_: &dyn Counter) {}
        fn _rc(_: &dyn ResetCounter) {}
    }
}
