//! Spin locks over the paper's primitives — the *mutual exclusion* side
//! of the story.
//!
//! The paper's opening contrast: "Traditionally, the theory of
//! interprocess synchronization has centered around the notion of
//! mutual exclusion … a new class of wait-free algorithms have become
//! the focus." These locks are the traditional side, built from the
//! same objects the wait-free side uses:
//!
//! * [`TasLock`] — a test&set spin lock (one historyless flag): simple,
//!   correct, *not* fault-tolerant (a crashed holder wedges everyone) —
//!   exactly the failure mode wait-free algorithms exist to avoid;
//! * [`PetersonLock`] — Peterson's 2-thread algorithm from three plain
//!   registers, the classical proof that registers alone achieve
//!   2-process mutual exclusion (its model twin is exhaustively
//!   verified in `randsync-consensus`'s `model_protocols::mutex`).
//!
//! Both provide RAII guards.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::traits::TestAndSet;
use crate::TestAndSetFlag;

const ORD: Ordering = Ordering::SeqCst;

/// A test&set spin lock.
#[derive(Debug, Default)]
pub struct TasLock {
    flag: TestAndSetFlag,
}

impl TasLock {
    /// An unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spin until the lock is acquired; the guard releases on drop.
    pub fn lock(&self) -> TasGuard<'_> {
        let mut spins = 0u32;
        // Test-and-test-and-set with capped exponential backoff.
        loop {
            if !self.flag.is_set() && !self.flag.test_and_set() {
                return TasGuard { lock: self };
            }
            for _ in 0..(1u32 << spins.min(8)) {
                std::hint::spin_loop();
            }
            spins += 1;
        }
    }

    /// Try once; `None` if the lock is held.
    pub fn try_lock(&self) -> Option<TasGuard<'_>> {
        if !self.flag.test_and_set() {
            Some(TasGuard { lock: self })
        } else {
            None
        }
    }
}

/// RAII guard for [`TasLock`].
#[derive(Debug)]
pub struct TasGuard<'a> {
    lock: &'a TasLock,
}

impl Drop for TasGuard<'_> {
    fn drop(&mut self) {
        self.lock.flag.reset();
    }
}

/// Peterson's 2-thread lock from three read–write registers.
#[derive(Debug, Default)]
pub struct PetersonLock {
    flags: [AtomicBool; 2],
    turn: AtomicUsize,
}

impl PetersonLock {
    /// An unlocked lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire as thread `me` (0 or 1); the guard releases on drop.
    ///
    /// # Panics
    ///
    /// Panics if `me > 1`.
    pub fn lock(&self, me: usize) -> PetersonGuard<'_> {
        assert!(me < 2, "Peterson's lock serves exactly two threads");
        let other = 1 - me;
        self.flags[me].store(true, ORD);
        self.turn.store(other, ORD);
        while self.flags[other].load(ORD) && self.turn.load(ORD) == other {
            std::hint::spin_loop();
        }
        PetersonGuard { lock: self, me }
    }
}

/// RAII guard for [`PetersonLock`].
#[derive(Debug)]
pub struct PetersonGuard<'a> {
    lock: &'a PetersonLock,
    me: usize,
}

impl Drop for PetersonGuard<'_> {
    fn drop(&mut self) {
        self.lock.flags[self.me].store(false, ORD);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::UnsafeCell;

    /// A deliberately non-atomic counter: lost updates are detectable
    /// if mutual exclusion ever fails.
    struct RacyCounter(UnsafeCell<u64>);
    unsafe impl Sync for RacyCounter {}

    impl RacyCounter {
        fn bump(&self) {
            // SAFETY (of the test): callers hold the lock under test.
            unsafe { *self.0.get() += 1 };
        }

        fn get(&self) -> u64 {
            unsafe { *self.0.get() }
        }
    }

    #[test]
    fn tas_lock_protects_a_racy_counter() {
        let lock = TasLock::new();
        let counter = RacyCounter(UnsafeCell::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (lock, counter) = (&lock, &counter);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        let _g = lock.lock();
                        counter.bump();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 40_000, "no lost updates under the lock");
    }

    #[test]
    fn tas_try_lock_fails_while_held() {
        let lock = TasLock::new();
        let g = lock.try_lock().expect("uncontended");
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn peterson_lock_protects_a_racy_counter() {
        let lock = PetersonLock::new();
        let counter = RacyCounter(UnsafeCell::new(0));
        std::thread::scope(|s| {
            for me in 0..2 {
                let (lock, counter) = (&lock, &counter);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let _g = lock.lock(me);
                        counter.bump();
                    }
                });
            }
        });
        assert_eq!(
            counter.get(),
            40_000,
            "registers alone achieve 2-thread mutex"
        );
    }

    #[test]
    #[should_panic(expected = "exactly two threads")]
    fn peterson_rejects_a_third_thread() {
        let _ = PetersonLock::new().lock(2);
    }

    #[test]
    fn guards_release_on_drop() {
        let lock = PetersonLock::new();
        {
            let _g = lock.lock(0);
        }
        // Re-acquirable by either side after release.
        let _g2 = lock.lock(1);
    }
}
