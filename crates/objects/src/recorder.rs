//! History recording for linearizability validation.
//!
//! A [`Recorder`] stamps each operation with invocation/response
//! timestamps from a shared logical clock and accumulates
//! [`Event`]s. The resulting
//! [`History`] is checked against the
//! [`ObjectKind`](randsync_model::ObjectKind) sequential semantics by
//! the model crate's Wing–Gong checker — this is how the threaded
//! objects in this crate are validated against the *same* semantics the
//! simulator and the lower-bound machinery use.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use randsync_model::{Event, History, Operation, Response, Value};

use crate::traits::{CompareSwap, Counter, FetchAdd, ReadWrite, Swap, TestAndSet};

const ORD: Ordering = Ordering::SeqCst;

/// Records timed operation events against a single object.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock_events(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        // A panic while holding the lock poisons it; recording is
        // append-only, so the data is still coherent — keep going.
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record an arbitrary operation: stamps the invocation, runs `f`,
    /// stamps the response, and logs the event. Returns `f`'s response.
    pub fn record<F>(&self, process: usize, op: Operation, f: F) -> Response
    where
        F: FnOnce() -> Response,
    {
        let invoked_at = self.clock.fetch_add(1, ORD);
        let response = f();
        let responded_at = self.clock.fetch_add(1, ORD);
        self.lock_events().push(Event {
            process,
            op,
            response,
            invoked_at,
            responded_at,
        });
        response
    }

    /// The recorded history so far (a snapshot; recording may continue).
    pub fn history(&self) -> History {
        History::from_events(self.lock_events().clone())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.lock_events().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ----- convenience wrappers per object family -------------------

    /// Record a READ on a read–write register.
    pub fn read(&self, process: usize, reg: &dyn ReadWrite) -> i64 {
        let r = self.record(process, Operation::Read, || {
            Response::Value(Value::Int(reg.read()))
        });
        r.as_int().expect("read response carries an int")
    }

    /// Record a WRITE on a read–write register.
    pub fn write(&self, process: usize, reg: &dyn ReadWrite, v: i64) {
        self.record(process, Operation::Write(Value::Int(v)), || {
            reg.write(v);
            Response::Ack
        });
    }

    /// Record a SWAP.
    pub fn swap(&self, process: usize, reg: &dyn Swap, v: i64) -> i64 {
        let r = self.record(process, Operation::Swap(Value::Int(v)), || {
            Response::Value(Value::Int(reg.swap(v)))
        });
        r.as_int().expect("swap response carries an int")
    }

    /// Record a TEST&SET.
    pub fn test_and_set(&self, process: usize, flag: &dyn TestAndSet) -> bool {
        let r = self.record(process, Operation::TestAndSet, || {
            Response::Value(Value::Bool(flag.test_and_set()))
        });
        r.value()
            .and_then(|v| v.as_bool())
            .expect("test&set response carries a bool")
    }

    /// Record a FETCH&ADD.
    pub fn fetch_add(&self, process: usize, reg: &dyn FetchAdd, delta: i64) -> i64 {
        let r = self.record(process, Operation::FetchAdd(delta), || {
            Response::Value(Value::Int(reg.fetch_add(delta)))
        });
        r.as_int().expect("fetch&add response carries an int")
    }

    /// Record a COMPARE&SWAP.
    pub fn compare_swap(
        &self,
        process: usize,
        reg: &dyn CompareSwap,
        expected: i64,
        new: i64,
    ) -> i64 {
        let op = Operation::CompareSwap {
            expected: Value::Int(expected),
            new: Value::Int(new),
        };
        let r = self.record(process, op, || {
            Response::Value(Value::Int(reg.compare_swap(expected, new)))
        });
        r.as_int().expect("compare&swap response carries an int")
    }

    /// Record an INC on a counter.
    pub fn inc(&self, process: usize, c: &dyn Counter) {
        self.record(process, Operation::Inc, || {
            c.inc();
            Response::Ack
        });
    }

    /// Record a DEC on a counter.
    pub fn dec(&self, process: usize, c: &dyn Counter) {
        self.record(process, Operation::Dec, || {
            c.dec();
            Response::Ack
        });
    }

    /// Record a counter READ.
    pub fn read_counter(&self, process: usize, c: &dyn Counter) -> i64 {
        let r = self.record(process, Operation::Read, || {
            Response::Value(Value::Int(c.read()))
        });
        r.as_int().expect("counter read carries an int")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::{CasRegister, FetchAddRegister, SwapRegister, TestAndSetFlag};
    use randsync_model::{LinearizabilityChecker, ObjectKind};

    #[test]
    fn recorded_sequential_history_is_linearizable() {
        let reg = SwapRegister::new(0);
        let rec = Recorder::new();
        rec.write(0, &reg, 5);
        assert_eq!(rec.swap(0, &reg, 7), 5);
        assert_eq!(rec.read(0, &reg), 7);
        assert_eq!(rec.len(), 3);
        let checker = LinearizabilityChecker::with_initial(ObjectKind::SwapRegister, Value::Int(0));
        assert!(checker.is_linearizable(&rec.history()));
    }

    #[test]
    fn recorder_intervals_are_well_formed_under_concurrency() {
        let fa = FetchAddRegister::new(0);
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for p in 0..4 {
                let (rec, fa) = (&rec, &fa);
                s.spawn(move || {
                    for _ in 0..20 {
                        rec.fetch_add(p, fa, 1);
                    }
                });
            }
        });
        let h = rec.history();
        assert_eq!(h.len(), 80);
        assert!(h.is_well_formed());
    }

    #[test]
    fn concurrent_tas_history_linearizes() {
        let flag = TestAndSetFlag::new();
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for p in 0..4 {
                let (rec, flag) = (&rec, &flag);
                s.spawn(move || {
                    rec.test_and_set(p, flag);
                });
            }
        });
        let checker = LinearizabilityChecker::new(ObjectKind::TestAndSet);
        assert!(checker.is_linearizable(&rec.history()));
        // Exactly one winner in the recorded responses.
        let winners = rec
            .history()
            .events()
            .iter()
            .filter(|e| e.response == Response::Value(Value::Bool(false)))
            .count();
        assert_eq!(winners, 1);
    }

    #[test]
    fn concurrent_cas_history_linearizes() {
        let cas = CasRegister::new(0);
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for p in 0..3 {
                let (rec, cas) = (&rec, &cas);
                s.spawn(move || {
                    rec.compare_swap(p, cas, 0, p as i64 + 1);
                    rec.record(p, Operation::Read, || {
                        Response::Value(Value::Int(cas.load()))
                    });
                });
            }
        });
        let checker = LinearizabilityChecker::with_initial(ObjectKind::CompareSwap, Value::Int(0));
        assert!(checker.is_linearizable(&rec.history()));
    }

    #[test]
    fn empty_recorder() {
        let rec = Recorder::new();
        assert!(rec.is_empty());
        assert!(rec.history().is_empty());
    }
}
