//! Property tests: randomly generated concurrent workloads on every
//! threaded object produce histories that linearize against the model
//! semantics — the objects really are the objects the paper reasons
//! about.

use proptest::prelude::*;
use randsync_model::{LinearizabilityChecker, ObjectKind, Value};
use randsync_objects::traits::{CompareSwap, FetchAdd};
use randsync_objects::{CasRegister, FetchAddRegister, Recorder, SwapRegister, TestAndSetFlag};

/// A small op script per thread; values are kept tiny so the checker's
/// search stays fast.
#[derive(Clone, Copy, Debug)]
enum ScriptOp {
    Read,
    Mutate(i64),
}

fn arb_script() -> impl Strategy<Value = Vec<ScriptOp>> {
    prop::collection::vec(
        prop_oneof![Just(ScriptOp::Read), (0i64..3).prop_map(ScriptOp::Mutate),],
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn swap_register_histories_linearize(
        scripts in prop::collection::vec(arb_script(), 2..4),
    ) {
        let reg = SwapRegister::new(0);
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for (p, script) in scripts.iter().enumerate() {
                let (rec, reg) = (&rec, &reg);
                s.spawn(move || {
                    for op in script {
                        match op {
                            ScriptOp::Read => { rec.read(p, reg); }
                            ScriptOp::Mutate(v) => { rec.swap(p, reg, *v); }
                        }
                    }
                });
            }
        });
        let checker =
            LinearizabilityChecker::with_initial(ObjectKind::SwapRegister, Value::Int(0));
        prop_assert!(checker.is_linearizable(&rec.history()));
    }

    #[test]
    fn fetch_add_histories_linearize(
        scripts in prop::collection::vec(arb_script(), 2..4),
    ) {
        let reg = FetchAddRegister::new(0);
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for (p, script) in scripts.iter().enumerate() {
                let (rec, reg) = (&rec, &reg);
                s.spawn(move || {
                    for op in script {
                        match op {
                            ScriptOp::Read => {
                                rec.record(p, randsync_model::Operation::Read, || {
                                    randsync_model::Response::Value(Value::Int(reg.load()))
                                });
                            }
                            ScriptOp::Mutate(v) => { rec.fetch_add(p, reg, *v); }
                        }
                    }
                });
            }
        });
        let checker =
            LinearizabilityChecker::with_initial(ObjectKind::FetchAdd, Value::Int(0));
        prop_assert!(checker.is_linearizable(&rec.history()));
    }

    #[test]
    fn cas_histories_linearize(
        scripts in prop::collection::vec(arb_script(), 2..4),
    ) {
        let reg = CasRegister::new(0);
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for (p, script) in scripts.iter().enumerate() {
                let (rec, reg) = (&rec, &reg);
                s.spawn(move || {
                    for op in script {
                        match op {
                            ScriptOp::Read => {
                                rec.record(p, randsync_model::Operation::Read, || {
                                    randsync_model::Response::Value(Value::Int(reg.load()))
                                });
                            }
                            ScriptOp::Mutate(v) => {
                                rec.compare_swap(p, reg, *v % 2, *v);
                            }
                        }
                    }
                });
            }
        });
        let checker =
            LinearizabilityChecker::with_initial(ObjectKind::CompareSwap, Value::Int(0));
        prop_assert!(checker.is_linearizable(&rec.history()));
    }

    #[test]
    fn tas_histories_linearize_and_have_one_winner_per_epoch(
        threads in 2usize..5,
    ) {
        let flag = TestAndSetFlag::new();
        let rec = Recorder::new();
        std::thread::scope(|s| {
            for p in 0..threads {
                let (rec, flag) = (&rec, &flag);
                s.spawn(move || {
                    rec.test_and_set(p, flag);
                });
            }
        });
        let h = rec.history();
        let checker = LinearizabilityChecker::new(ObjectKind::TestAndSet);
        prop_assert!(checker.is_linearizable(&h));
        let winners = h
            .events()
            .iter()
            .filter(|e| e.response == randsync_model::Response::Value(Value::Bool(false)))
            .count();
        prop_assert_eq!(winners, 1);
    }
}
