//! Property tests for the Section 2 operation algebra.
//!
//! The classification predicates (`is_trivial`, `overwrites`,
//! `commutes`, `is_historyless`) are decision procedures over sampled
//! value/operation spaces; these properties check that the *definitions*
//! they implement actually hold along randomly generated operation
//! sequences — e.g. that an overwriting pair really yields identical
//! response sequences for every continuation, which is the form in
//! which the lower-bound proofs consume the algebra.

use proptest::prelude::*;
use randsync_model::{ObjectKind, Operation};

fn arb_kind() -> impl Strategy<Value = ObjectKind> {
    prop::sample::select(ObjectKind::all())
}

proptest! {
    /// Applying a trivial operation never changes the value, from any
    /// reachable value.
    #[test]
    fn trivial_ops_never_change_values(
        kind in arb_kind(),
        seed_ops in prop::collection::vec(any::<prop::sample::Index>(), 0..8),
    ) {
        // Reach a random value by applying random ops from the initial
        // value, then check every trivial op.
        let ops = kind.sample_ops();
        let mut v = kind.initial_value();
        for idx in &seed_ops {
            let op = &ops[idx.index(ops.len())];
            if let Ok((next, _)) = kind.apply(&v, op) {
                v = next;
            }
        }
        for op in &ops {
            if kind.is_trivial(op) {
                let (next, _) = kind.apply(&v, op).unwrap();
                prop_assert_eq!(next, v, "{:?} changed {:?}", op, v);
            }
        }
    }

    /// If `f` overwrites `g`, then for every starting value and every
    /// continuation sequence, the value trajectory after `g·f` equals
    /// the trajectory after just `f` — the exact property the block
    /// write exploits ("the values of all the objects in V can be
    /// fixed").
    #[test]
    fn overwrite_makes_prefixes_indistinguishable(
        kind in arb_kind(),
        fi in any::<prop::sample::Index>(),
        gi in any::<prop::sample::Index>(),
        start in any::<prop::sample::Index>(),
        cont in prop::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        let ops = kind.sample_ops();
        let values = kind.sample_values();
        let f = ops[fi.index(ops.len())];
        let g = ops[gi.index(ops.len())];
        prop_assume!(kind.overwrites(&f, &g));
        let x = values[start.index(values.len())];

        let (gx, _) = kind.apply(&x, &g).unwrap();
        let (mut via_gf, _) = kind.apply(&gx, &f).unwrap();
        let (mut via_f, _) = kind.apply(&x, &f).unwrap();
        prop_assert_eq!(via_gf, via_f);
        for idx in &cont {
            let op = &ops[idx.index(ops.len())];
            let (a, ra) = kind.apply(&via_gf, op).unwrap();
            let (b, rb) = kind.apply(&via_f, op).unwrap();
            prop_assert_eq!(ra, rb, "responses diverged after overwrite");
            via_gf = a;
            via_f = b;
        }
    }

    /// Commutation is symmetric and order-independent on values.
    #[test]
    fn commute_is_symmetric(
        kind in arb_kind(),
        fi in any::<prop::sample::Index>(),
        gi in any::<prop::sample::Index>(),
    ) {
        let ops = kind.sample_ops();
        let f = ops[fi.index(ops.len())];
        let g = ops[gi.index(ops.len())];
        prop_assert_eq!(kind.commutes(&f, &g), kind.commutes(&g, &f));
    }

    /// For a historyless kind, the value after any nonempty operation
    /// sequence equals the value produced by its LAST nontrivial
    /// operation alone (applied to any value) — "the value depends only
    /// on the last nontrivial operation".
    #[test]
    fn historyless_value_is_a_function_of_the_last_nontrivial_op(
        kind in arb_kind(),
        seq in prop::collection::vec(any::<prop::sample::Index>(), 1..10),
        other_start in any::<prop::sample::Index>(),
    ) {
        prop_assume!(kind.is_historyless());
        let ops = kind.sample_ops();
        let values = kind.sample_values();
        let mut v = kind.initial_value();
        let mut last_nontrivial: Option<Operation> = None;
        for idx in &seq {
            let op = ops[idx.index(ops.len())];
            let (next, _) = kind.apply(&v, &op).unwrap();
            v = next;
            if !kind.is_trivial(&op) {
                last_nontrivial = Some(op);
            }
        }
        if let Some(op) = last_nontrivial {
            // Applying that op to ANY value yields the same result.
            let y = values[other_start.index(values.len())];
            let (from_y, _) = kind.apply(&y, &op).unwrap();
            prop_assert_eq!(v, from_y, "history leaked through {:?}", op);
        }
    }

    /// Fetch&add operations commute pairwise — the value after a batch
    /// is order-independent (counters likewise).
    #[test]
    fn fetch_add_batches_commute(
        deltas in prop::collection::vec(-5i64..=5, 1..8),
    ) {
        let kind = ObjectKind::FetchAdd;
        let apply_all = |ds: &[i64]| {
            let mut v = kind.initial_value();
            for d in ds {
                let (next, _) = kind.apply(&v, &Operation::FetchAdd(*d)).unwrap();
                v = next;
            }
            v
        };
        let forward = apply_all(&deltas);
        let mut shuffled = deltas.clone();
        shuffled.reverse();
        prop_assert_eq!(forward, apply_all(&shuffled));
    }

    /// Bounded counters always stay within range under any op sequence.
    #[test]
    fn bounded_counter_stays_in_range(
        lo in -10i64..=0,
        span in 0i64..=10,
        seq in prop::collection::vec(0usize..3, 0..40),
    ) {
        let hi = lo + span;
        let kind = ObjectKind::BoundedCounter { lo, hi };
        let ops = [Operation::Inc, Operation::Dec, Operation::Reset];
        let mut v = kind.initial_value();
        for i in seq {
            let (next, _) = kind.apply(&v, &ops[i]).unwrap();
            v = next;
            let x = v.as_int().unwrap();
            prop_assert!((lo..=hi).contains(&x), "{x} escaped [{lo},{hi}]");
        }
    }

    /// Responses of value-returning operations always report the value
    /// *before* the operation.
    #[test]
    fn rmw_responses_report_the_previous_value(
        kind in arb_kind(),
        vi in any::<prop::sample::Index>(),
        oi in any::<prop::sample::Index>(),
    ) {
        let values = kind.sample_values();
        let ops = kind.sample_ops();
        let v = values[vi.index(values.len())];
        let op = ops[oi.index(ops.len())];
        if let Ok((_, resp)) = kind.apply(&v, &op) {
            match op {
                Operation::Read
                | Operation::Swap(_)
                | Operation::TestAndSet
                | Operation::FetchAdd(_)
                | Operation::CompareSwap { .. } => {
                    prop_assert_eq!(resp.value(), Some(v));
                }
                _ => prop_assert_eq!(resp.value(), None),
            }
        }
    }
}
