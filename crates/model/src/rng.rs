//! A small deterministic pseudo-random number generator.
//!
//! The substrate keeps zero mandatory external dependencies, and — more
//! importantly — every randomized run in this workspace must be exactly
//! reproducible from a seed, because the lower-bound machinery replays
//! executions. SplitMix64 is a well-known, statistically solid 64-bit
//! mixer (Steele, Lea & Flood, OOPSLA 2014) that is more than adequate
//! for driving coin flips and schedulers.

/// A seedable SplitMix64 generator.
///
/// ```
/// use randsync_model::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds yield identical
    /// streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniformly distributed value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias
        // for astronomically large n is irrelevant for scheduling.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Derive an independent generator (for per-process streams).
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_is_in_range() {
        let mut r = SplitMix64::new(3);
        for n in 1..50u64 {
            for _ in 0..50 {
                assert!(r.next_below(n) < n);
            }
        }
    }

    #[test]
    fn next_below_hits_every_residue_eventually() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = SplitMix64::new(99);
        let heads = (0..10_000).filter(|_| r.next_bool()).count();
        assert!((4500..5500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut a = SplitMix64::new(5);
        let mut c = a.fork();
        // The fork and the parent continue on different streams.
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
