//! Schedulers: who moves next.
//!
//! Processes are asynchronous — "they can halt or display arbitrary
//! variations in speed" — so the scheduler *is* the adversary. The
//! simulator asks a [`Scheduler`] which active process takes the next
//! step; coin flips are drawn separately (the classic oblivious- vs
//! adaptive-adversary distinction is realized by which scheduler you
//! pick and whether it inspects the public object values offered to it).

use crate::execution::Execution;
use crate::process::ProcessId;
use crate::rng::SplitMix64;
use crate::value::Value;

/// A view of the current configuration offered to schedulers: which
/// processes are active, how many steps have elapsed, and the (public)
/// object values. Schedulers must not see private process states —
/// a strong adaptive adversary in the literature sees operations, not
/// local coins.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// Processes currently able to take a step, in index order.
    pub active: &'a [ProcessId],
    /// Number of steps taken so far in this run.
    pub step_index: usize,
    /// Current shared-object values.
    pub values: &'a [Value],
}

/// Chooses the next process to step.
pub trait Scheduler {
    /// The next process to run, drawn from `view.active`; `None` stops
    /// the run. Returning a non-active process is treated as a stop.
    fn next(&mut self, view: &SchedView<'_>) -> Option<ProcessId>;

    /// A process to crash before the next step, if any. Defaults to no
    /// failures.
    fn crash_now(&mut self, view: &SchedView<'_>) -> Option<ProcessId> {
        let _ = view;
        None
    }
}

/// Fair round-robin over the active processes.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinScheduler {
    cursor: usize,
}

impl RoundRobinScheduler {
    /// A round-robin scheduler starting at process index 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next(&mut self, view: &SchedView<'_>) -> Option<ProcessId> {
        if view.active.is_empty() {
            return None;
        }
        // Choose the first active pid with index >= cursor, wrapping.
        let pick = view
            .active
            .iter()
            .find(|p| p.0 >= self.cursor)
            .or_else(|| view.active.first())
            .copied()?;
        self.cursor = pick.0 + 1;
        Some(pick)
    }
}

/// Uniformly random scheduling from a deterministic seed.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: SplitMix64,
}

impl RandomScheduler {
    /// A random scheduler with the given seed. Equal seeds reproduce
    /// identical schedules.
    pub fn new(seed: u64) -> Self {
        RandomScheduler { rng: SplitMix64::new(seed) }
    }
}

impl Scheduler for RandomScheduler {
    fn next(&mut self, view: &SchedView<'_>) -> Option<ProcessId> {
        if view.active.is_empty() {
            return None;
        }
        let i = self.rng.next_below(view.active.len() as u64) as usize;
        Some(view.active[i])
    }
}

/// Runs a single process alone — the paper's *solo executions*.
#[derive(Clone, Copy, Debug)]
pub struct SoloScheduler {
    pid: ProcessId,
}

impl SoloScheduler {
    /// A scheduler that only ever runs `pid`.
    pub fn new(pid: ProcessId) -> Self {
        SoloScheduler { pid }
    }
}

impl Scheduler for SoloScheduler {
    fn next(&mut self, view: &SchedView<'_>) -> Option<ProcessId> {
        view.active.contains(&self.pid).then_some(self.pid)
    }
}

/// Replays a fixed schedule (ignoring coins — those live in
/// [`Execution`] replay; this scheduler is for driving the simulator
/// down a predetermined process order while coins stay random).
#[derive(Clone, Debug)]
pub struct ScriptScheduler {
    pids: Vec<ProcessId>,
    at: usize,
}

impl ScriptScheduler {
    /// A scheduler that plays out `pids` in order, then stops.
    pub fn new(pids: Vec<ProcessId>) -> Self {
        ScriptScheduler { pids, at: 0 }
    }

    /// Extract the process order of an execution as a script.
    pub fn from_execution(e: &Execution) -> Self {
        Self::new(e.steps().iter().map(|s| s.pid).collect())
    }

    /// A script from flight-recorder trace steps — the `(pid, coin)`
    /// pairs of `randsync_obs::ExecutionTrace::steps`. Coins are
    /// dropped (a scheduler only orders processes; replaying the
    /// recorded coins is [`Execution`] replay's job), so this drives
    /// the *simulator* down an archived schedule while coins stay
    /// random — useful for probing the neighborhood of a shrunk
    /// witness.
    pub fn from_trace_steps(steps: &[(u32, u32)]) -> Self {
        Self::new(steps.iter().map(|&(pid, _)| ProcessId(pid as usize)).collect())
    }
}

impl Scheduler for ScriptScheduler {
    fn next(&mut self, view: &SchedView<'_>) -> Option<ProcessId> {
        let pid = *self.pids.get(self.at)?;
        self.at += 1;
        view.active.contains(&pid).then_some(pid)
    }
}

/// A strong adaptive adversary against counter-walk protocols.
///
/// The adversary may observe shared-object values (not private states
/// or coins). This one attributes each observed change of a watched
/// object's integer value to the process it scheduled last, learns each
/// process's current "direction", and then schedules so as to drag the
/// value toward zero — the worst case for random-walk consensus, whose
/// expected time analyses are exactly about defeating such schedulers.
/// It cannot prevent termination (the walk's drift zones and coin
/// variance win eventually); it only stretches the walk.
#[derive(Clone, Debug)]
pub struct ContrarianScheduler {
    watched: usize,
    last_value: Option<i64>,
    last_pid: Option<ProcessId>,
    /// Last observed per-process deltas, indexed by process id.
    direction: Vec<i64>,
    rng: SplitMix64,
}

impl ContrarianScheduler {
    /// An adversary watching object index `watched`, breaking ties with
    /// the seeded generator.
    pub fn new(watched: usize, seed: u64) -> Self {
        ContrarianScheduler {
            watched,
            last_value: None,
            last_pid: None,
            direction: Vec::new(),
            rng: SplitMix64::new(seed),
        }
    }
}

impl Scheduler for ContrarianScheduler {
    fn next(&mut self, view: &SchedView<'_>) -> Option<ProcessId> {
        if view.active.is_empty() {
            return None;
        }
        // Attribute the last observed delta to the last scheduled pid.
        let current = view.values.get(self.watched).and_then(|v| v.as_int());
        if let (Some(prev), Some(now), Some(pid)) = (self.last_value, current, self.last_pid) {
            let delta = now - prev;
            if delta != 0 {
                if self.direction.len() <= pid.0 {
                    self.direction.resize(pid.0 + 1, 0);
                }
                self.direction[pid.0] = delta;
            }
        }
        self.last_value = current;

        // Prefer a process whose last move opposes the current sign.
        let value = current.unwrap_or(0);
        let pick = view
            .active
            .iter()
            .find(|p| {
                let d = self.direction.get(p.0).copied().unwrap_or(0);
                (value > 0 && d < 0) || (value < 0 && d > 0)
            })
            .copied()
            .unwrap_or_else(|| {
                let i = self.rng.next_below(view.active.len() as u64) as usize;
                view.active[i]
            });
        self.last_pid = Some(pick);
        Some(pick)
    }
}

/// Wraps another scheduler and crashes a fixed set of processes at given
/// step indices — failure injection for wait-freedom tests.
#[derive(Clone, Debug)]
pub struct CrashScheduler<S> {
    inner: S,
    /// `(step_index, pid)` pairs, in any order; each fires once.
    plan: Vec<(usize, ProcessId)>,
}

impl<S: Scheduler> CrashScheduler<S> {
    /// Wrap `inner`, crashing each `(step, pid)` in `plan` when the run
    /// reaches that step index.
    pub fn new(inner: S, plan: Vec<(usize, ProcessId)>) -> Self {
        CrashScheduler { inner, plan }
    }
}

impl<S: Scheduler> Scheduler for CrashScheduler<S> {
    fn next(&mut self, view: &SchedView<'_>) -> Option<ProcessId> {
        self.inner.next(view)
    }

    fn crash_now(&mut self, view: &SchedView<'_>) -> Option<ProcessId> {
        if let Some(i) = self.plan.iter().position(|(s, _)| *s <= view.step_index) {
            let (_, pid) = self.plan.swap_remove(i);
            Some(pid)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(active: &'a [ProcessId], values: &'a [Value], step: usize) -> SchedView<'a> {
        SchedView { active, step_index: step, values }
    }

    #[test]
    fn round_robin_cycles_fairly() {
        let mut s = RoundRobinScheduler::new();
        let active = [ProcessId(0), ProcessId(1), ProcessId(2)];
        let picks: Vec<usize> =
            (0..6).map(|i| s.next(&view(&active, &[], i)).unwrap().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_inactive() {
        let mut s = RoundRobinScheduler::new();
        let active = [ProcessId(0), ProcessId(2)];
        let picks: Vec<usize> =
            (0..4).map(|i| s.next(&view(&active, &[], i)).unwrap().0).collect();
        assert_eq!(picks, vec![0, 2, 0, 2]);
    }

    #[test]
    fn round_robin_stops_when_no_one_is_active() {
        let mut s = RoundRobinScheduler::new();
        assert_eq!(s.next(&view(&[], &[], 0)), None);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let active = [ProcessId(0), ProcessId(1), ProcessId(2)];
        let run = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..20).map(|i| s.next(&view(&active, &[], i)).unwrap().0).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn solo_runs_only_its_process() {
        let mut s = SoloScheduler::new(ProcessId(1));
        let active = [ProcessId(0), ProcessId(1)];
        assert_eq!(s.next(&view(&active, &[], 0)), Some(ProcessId(1)));
        let without = [ProcessId(0)];
        assert_eq!(s.next(&view(&without, &[], 1)), None);
    }

    #[test]
    fn script_plays_in_order_then_stops() {
        let mut s = ScriptScheduler::new(vec![ProcessId(1), ProcessId(0)]);
        let active = [ProcessId(0), ProcessId(1)];
        assert_eq!(s.next(&view(&active, &[], 0)), Some(ProcessId(1)));
        assert_eq!(s.next(&view(&active, &[], 1)), Some(ProcessId(0)));
        assert_eq!(s.next(&view(&active, &[], 2)), None);
    }

    #[test]
    fn contrarian_learns_directions_and_opposes_the_sign() {
        let mut s = ContrarianScheduler::new(0, 1);
        let both = [ProcessId(0), ProcessId(1)];
        let only0 = [ProcessId(0)];
        let only1 = [ProcessId(1)];
        // Force P0 to be scheduled, then show it the value rising: the
        // +1 is attributed to P0.
        assert_eq!(s.next(&view(&only0, &[Value::Int(0)], 0)), Some(ProcessId(0)));
        // Force P1, attribute the following -1 to it.
        assert_eq!(s.next(&view(&only1, &[Value::Int(1)], 1)), Some(ProcessId(1)));
        assert_eq!(s.next(&view(&only0, &[Value::Int(0)], 2)), Some(ProcessId(0)));
        // (The -1 from 1→0 was attributed to P1; the pick was P0.)
        // Value strongly positive now (+2 attributed to P0): the
        // adversary must deterministically choose the known
        // decrementer P1 to drag the value back down.
        assert_eq!(s.next(&view(&both, &[Value::Int(2)], 3)), Some(ProcessId(1)));
    }

    #[test]
    fn contrarian_stops_when_no_one_is_active() {
        let mut s = ContrarianScheduler::new(0, 7);
        assert_eq!(s.next(&view(&[], &[], 0)), None);
    }

    #[test]
    fn script_from_trace_steps_plays_the_recorded_order() {
        let mut s = ScriptScheduler::from_trace_steps(&[(1, 7), (0, 0), (1, 3)]);
        let active = [ProcessId(0), ProcessId(1)];
        assert_eq!(s.next(&view(&active, &[], 0)), Some(ProcessId(1)));
        assert_eq!(s.next(&view(&active, &[], 1)), Some(ProcessId(0)));
        assert_eq!(s.next(&view(&active, &[], 2)), Some(ProcessId(1)));
        assert_eq!(s.next(&view(&active, &[], 3)), None, "script exhausted");
    }

    #[test]
    fn crash_scheduler_fires_each_plan_entry_once() {
        let mut s = CrashScheduler::new(RoundRobinScheduler::new(), vec![(2, ProcessId(0))]);
        let active = [ProcessId(0), ProcessId(1)];
        assert_eq!(s.crash_now(&view(&active, &[], 0)), None);
        assert_eq!(s.crash_now(&view(&active, &[], 2)), Some(ProcessId(0)));
        assert_eq!(s.crash_now(&view(&active, &[], 3)), None);
    }
}
