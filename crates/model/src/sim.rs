//! The simulator: drive a protocol under a scheduler with seeded coins.

use core::fmt;
use core::hash::Hash;

use crate::config::Configuration;
use crate::error::ModelError;
use crate::execution::{Execution, StepRecord};
use crate::process::ProcessId;
use crate::protocol::{Decision, Protocol};
use crate::rng::SplitMix64;
use crate::sched::{SchedView, Scheduler};

/// The result of driving a protocol run.
#[derive(Clone, Debug)]
pub struct RunOutcome<S> {
    /// The final configuration.
    pub config: Configuration<S>,
    /// What happened at each step, in order.
    pub records: Vec<StepRecord>,
    /// Whether all non-faulty processes finished (decided) before the
    /// step budget ran out or the scheduler stopped.
    pub all_decided: bool,
    /// Number of steps taken.
    pub steps: usize,
}

impl<S> RunOutcome<S> {
    /// The executed schedule, replayable with [`Execution::replay`].
    pub fn execution(&self) -> Execution {
        self.records.iter().map(|r| r.to_step()).collect()
    }

    /// Distinct decided values in the final configuration.
    pub fn decided_values(&self) -> Vec<Decision>
    where
        S: Clone + Eq + Hash + fmt::Debug,
    {
        self.config.decided_values()
    }
}

/// Drives protocols to completion (or to a step budget) under a
/// pluggable scheduler, with coin flips drawn from a seeded generator.
#[derive(Clone, Debug)]
pub struct Simulator {
    max_steps: usize,
    coin_rng: SplitMix64,
}

impl Simulator {
    /// A simulator with the given step budget and coin seed.
    pub fn new(max_steps: usize, coin_seed: u64) -> Self {
        Simulator { max_steps, coin_rng: SplitMix64::new(coin_seed) }
    }

    /// Run `protocol` from its initial configuration with the given
    /// inputs.
    ///
    /// # Errors
    ///
    /// Propagates any [`ModelError`] raised while stepping (a correct
    /// protocol/scheduler pair never raises one).
    pub fn run<P, Sch>(
        &mut self,
        protocol: &P,
        inputs: &[Decision],
        scheduler: &mut Sch,
    ) -> Result<RunOutcome<P::State>, ModelError>
    where
        P: Protocol,
        Sch: Scheduler + ?Sized,
    {
        let config = Configuration::initial(protocol, inputs);
        self.run_from(protocol, config, scheduler)
    }

    /// Run `protocol` starting from an arbitrary configuration.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run`].
    pub fn run_from<P, Sch>(
        &mut self,
        protocol: &P,
        mut config: Configuration<P::State>,
        scheduler: &mut Sch,
    ) -> Result<RunOutcome<P::State>, ModelError>
    where
        P: Protocol,
        Sch: Scheduler + ?Sized,
    {
        let mut records = Vec::new();
        let mut steps = 0usize;
        loop {
            let active = config.active_processes();
            if active.is_empty() {
                break;
            }
            if steps >= self.max_steps {
                return Ok(RunOutcome { config, records, all_decided: false, steps });
            }
            let view = SchedView { active: &active, step_index: steps, values: &config.values };
            if let Some(victim) = scheduler.crash_now(&view) {
                config.crash(victim);
                continue;
            }
            let Some(pid) = scheduler.next(&view) else { break };
            if !active.contains(&pid) {
                break;
            }
            let rng = &mut self.coin_rng;
            let record =
                config.step_with(protocol, pid, |domain| rng.next_below(domain as u64) as u32)?;
            records.push(record);
            steps += 1;
        }
        let all_decided = config
            .procs
            .iter()
            .all(|p| !matches!(p, crate::config::ProcState::Active(_)));
        // One flush per run, not per step: a run is the natural batch.
        if randsync_obs::metrics_enabled() {
            let m = randsync_obs::global_metrics();
            m.counter("sim.runs").inc();
            m.counter("sim.steps").add(steps as u64);
            if all_decided {
                m.counter("sim.decided_runs").inc();
            }
        }
        Ok(RunOutcome { config, records, all_decided, steps })
    }

    /// Run `pid` alone from `config` until it decides or the step budget
    /// is exhausted — a *solo execution* with random coins.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run`].
    pub fn run_solo<P>(
        &mut self,
        protocol: &P,
        config: Configuration<P::State>,
        pid: ProcessId,
    ) -> Result<RunOutcome<P::State>, ModelError>
    where
        P: Protocol,
    {
        let mut solo = crate::sched::SoloScheduler::new(pid);
        let mut outcome = self.run_from(protocol, config, &mut solo)?;
        // A solo run "terminates" when the solo process is done, even if
        // others are still active.
        outcome.all_decided = !outcome.config.is_active(pid);
        Ok(outcome)
    }
}

/// Minimum seeds per worker before [`monte_carlo`] spawns threads: a
/// typical trial runs in tens of microseconds, so a worker must batch a
/// handful of them to amortize its spawn/join cost.
pub const MIN_SEEDS_PER_WORKER: usize = 16;

/// Fan a Monte Carlo seed range out across scoped worker threads.
///
/// `job` is invoked exactly once per seed in `seeds`; the returned
/// vector holds the results **in seed order**, so the output is
/// bit-identical to the sequential loop `seeds.map(job).collect()` for
/// every `threads` setting (`0` means
/// [`std::thread::available_parallelism`]). Each job should derive all
/// of its randomness from its seed — e.g. a [`Simulator`] and scheduler
/// built on per-seed [`SplitMix64`] streams — so that runs are
/// independent and reproducible regardless of which worker executes
/// them.
///
/// Workers take contiguous seed sub-ranges and write into disjoint
/// slices of the result vector; there is no channel, no locking, and no
/// per-seed allocation beyond the job's own.
///
/// Spawning is amortized: when the host has a single hardware thread,
/// or the range is so short that each worker would get fewer than
/// [`MIN_SEEDS_PER_WORKER`] seeds, the loop runs sequentially — thread
/// spawn and join would cost more than the parallelism buys (the output
/// is identical either way).
pub fn monte_carlo<T, F>(seeds: std::ops::Range<u64>, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let count = usize::try_from(seeds.end.saturating_sub(seeds.start))
        .expect("seed range length exceeds usize");
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = if threads == 0 { host } else { threads };
    // More workers than cores never helps a CPU-bound trial loop; on a
    // single-core host extra workers are pure spawn overhead.
    let workers = threads.min(host).min(count.div_ceil(MIN_SEEDS_PER_WORKER));
    if randsync_obs::metrics_enabled() {
        let m = randsync_obs::global_metrics();
        m.counter("sim.mc.batches").inc();
        m.counter("sim.mc.trials").add(count as u64);
        m.gauge("sim.mc.workers").record_max(workers.max(1) as i64);
    }
    if workers <= 1 {
        return seeds.map(job).collect();
    }
    let mut out: Vec<Option<T>> = Vec::with_capacity(count);
    out.resize_with(count, || None);
    let chunk = count.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, slots) in out.chunks_mut(chunk).enumerate() {
            let base = seeds.start + (w * chunk) as u64;
            let job = &job;
            scope.spawn(move || {
                for (k, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(job(base + k as u64));
                }
            });
        }
    });
    out.into_iter().map(|t| t.expect("every seed slot is filled")).collect()
}

/// Aggregate statistics over a batch of Monte Carlo trials, including
/// the **per-decision-value histogram**: how many process-decisions
/// landed on each value across the whole batch.
///
/// Produced by [`monte_carlo_summary`]; mergeable with
/// [`McSummary::absorb`] so callers can run a seed range in slices
/// (e.g. to check a cancellation deadline between slices) and still
/// report one summary. All fields are deterministic functions of the
/// protocol, the seed range, and the step budget — thread counts never
/// change them.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct McSummary {
    /// Number of trials run.
    pub trials: u64,
    /// Trials in which every process decided within the step budget.
    pub decided_runs: u64,
    /// Trials whose deciders all agreed on a single value.
    pub consistent_runs: u64,
    /// Total steps taken across all trials.
    pub total_steps: u64,
    /// Largest single-trial step count.
    pub max_steps: u64,
    /// The per-decision-value histogram: `(value, count)` pairs,
    /// ascending by value, counting every *process* decision across
    /// every trial (one process deciding `v` adds one to `v`'s bucket).
    pub decision_counts: Vec<(Decision, u64)>,
    /// Processes still undecided when their trial ended.
    pub undecided_processes: u64,
}

impl McSummary {
    /// Fold one run outcome into the summary.
    pub fn record<S>(&mut self, outcome: &RunOutcome<S>)
    where
        S: Clone + Eq + Hash + fmt::Debug,
    {
        self.trials += 1;
        self.total_steps += outcome.steps as u64;
        self.max_steps = self.max_steps.max(outcome.steps as u64);
        if outcome.all_decided {
            self.decided_runs += 1;
        }
        let decisions = outcome.config.decisions();
        let distinct = outcome.decided_values();
        if outcome.all_decided && distinct.len() <= 1 {
            self.consistent_runs += 1;
        }
        for (_, d) in decisions {
            self.count_decision(d, 1);
        }
        self.undecided_processes += outcome.config.active_processes().len() as u64;
    }

    /// Merge another summary into this one (histograms add bucketwise).
    pub fn absorb(&mut self, other: &McSummary) {
        self.trials += other.trials;
        self.decided_runs += other.decided_runs;
        self.consistent_runs += other.consistent_runs;
        self.total_steps += other.total_steps;
        self.max_steps = self.max_steps.max(other.max_steps);
        self.undecided_processes += other.undecided_processes;
        for &(d, n) in &other.decision_counts {
            self.count_decision(d, n);
        }
    }

    /// Total process decisions recorded (the histogram's mass).
    pub fn decisions_total(&self) -> u64 {
        self.decision_counts.iter().map(|(_, n)| n).sum()
    }

    /// Mean steps per trial (`0.0` when empty).
    pub fn mean_steps(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.total_steps as f64 / self.trials as f64
        }
    }

    fn count_decision(&mut self, d: Decision, n: u64) {
        match self.decision_counts.binary_search_by_key(&d, |&(v, _)| v) {
            Ok(i) => self.decision_counts[i].1 += n,
            Err(i) => self.decision_counts.insert(i, (d, n)),
        }
    }
}

/// Run one simulator trial per seed in `seeds` — each under a
/// seed-derived [`RandomScheduler`](crate::sched::RandomScheduler) and
/// coin stream — and summarize them, fanning the range out across
/// `threads` workers via [`monte_carlo`].
///
/// Trial `s` uses `Simulator::new(max_steps, h(s))` and a scheduler
/// seeded from an independent mix of `s`, so the result — including the
/// [`McSummary::decision_counts`] histogram — is a pure function of
/// `(protocol, inputs, seeds, max_steps)`, identical at every thread
/// count.
pub fn monte_carlo_summary<P>(
    protocol: &P,
    inputs: &[Decision],
    seeds: std::ops::Range<u64>,
    threads: usize,
    max_steps: usize,
) -> McSummary
where
    P: Protocol + Sync,
    P::State: Send,
{
    let per_seed = monte_carlo(seeds, threads, |seed| {
        let mut sim = Simulator::new(max_steps, seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        let mut sched =
            crate::sched::RandomScheduler::new(seed.wrapping_mul(0x85EB_CA6B).wrapping_add(3));
        let mut one = McSummary::default();
        match sim.run(protocol, inputs, &mut sched) {
            Ok(out) => one.record(&out),
            Err(_) => one.trials += 1,
        }
        one
    });
    let mut total = McSummary::default();
    for s in &per_seed {
        total.absorb(s);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::ObjectKind;
    use crate::op::{Operation, Response};
    use crate::process::ObjectId;
    use crate::protocol::{Action, ObjectSpec};
    use crate::sched::{CrashScheduler, RandomScheduler, RoundRobinScheduler};

    /// Consensus from one compare&swap register (Herlihy): CAS(⊥ → my
    /// input), decide whatever the register then holds.
    #[derive(Debug)]
    pub struct CasConsensus {
        n: usize,
    }

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    pub enum St {
        Try(Decision),
        Done(Decision),
    }

    impl Protocol for CasConsensus {
        type State = St;

        fn objects(&self) -> Vec<ObjectSpec> {
            vec![ObjectSpec::new(ObjectKind::CompareSwap, "decision")]
        }

        fn num_processes(&self) -> usize {
            self.n
        }

        fn initial_state(&self, _pid: ProcessId, input: Decision) -> St {
            St::Try(input)
        }

        fn action(&self, s: &St) -> Action {
            match s {
                St::Try(d) => Action::Invoke {
                    object: ObjectId(0),
                    op: Operation::CompareSwap {
                        expected: crate::value::Value::Bottom,
                        new: crate::value::Value::Int(*d as i64),
                    },
                },
                St::Done(d) => Action::Decide(*d),
            }
        }

        fn transition(&self, s: &St, resp: &Response, _coin: u32) -> St {
            match s {
                St::Try(d) => match resp.value() {
                    Some(v) if v.is_bottom() => St::Done(*d),
                    Some(v) => St::Done(v.as_int().unwrap_or(0) as Decision),
                    None => St::Done(*d),
                },
                other => other.clone(),
            }
        }
    }

    #[test]
    fn cas_consensus_is_consistent_under_round_robin() {
        let p = CasConsensus { n: 4 };
        let mut sim = Simulator::new(1000, 1);
        let out = sim.run(&p, &[0, 1, 1, 0], &mut RoundRobinScheduler::new()).unwrap();
        assert!(out.all_decided);
        assert_eq!(out.decided_values().len(), 1);
        // Round-robin: P0 CASes first, so everyone decides 0.
        assert_eq!(out.decided_values(), vec![0]);
    }

    #[test]
    fn cas_consensus_is_consistent_under_random_schedules() {
        let p = CasConsensus { n: 5 };
        for seed in 0..50 {
            let mut sim = Simulator::new(1000, seed);
            let mut sched = RandomScheduler::new(seed * 31 + 7);
            let out = sim.run(&p, &[1, 0, 1, 0, 1], &mut sched).unwrap();
            assert!(out.all_decided, "seed {seed}");
            let vals = out.decided_values();
            assert_eq!(vals.len(), 1, "seed {seed}: inconsistent {vals:?}");
        }
    }

    #[test]
    fn executions_recorded_by_the_simulator_replay_identically() {
        let p = CasConsensus { n: 3 };
        let mut sim = Simulator::new(1000, 5);
        let mut sched = RandomScheduler::new(17);
        let out = sim.run(&p, &[0, 1, 0], &mut sched).unwrap();
        let exec = out.execution();
        let start = Configuration::initial(&p, &[0, 1, 0]);
        let (replayed, _) = exec.replay(&p, &start).unwrap();
        assert_eq!(replayed, out.config);
    }

    #[test]
    fn crash_injection_still_lets_survivors_decide() {
        let p = CasConsensus { n: 3 };
        let mut sim = Simulator::new(1000, 2);
        // Crash P0 before anyone moves.
        let mut sched =
            CrashScheduler::new(RoundRobinScheduler::new(), vec![(0, ProcessId(0))]);
        let out = sim.run(&p, &[0, 1, 1], &mut sched).unwrap();
        let vals = out.decided_values();
        assert_eq!(vals.len(), 1);
        assert_eq!(vals, vec![1], "P0 (input 0) crashed; P1 won the CAS");
    }

    #[test]
    fn step_budget_halts_runs() {
        let p = CasConsensus { n: 2 };
        let mut sim = Simulator::new(1, 0);
        let out = sim.run(&p, &[0, 1], &mut RoundRobinScheduler::new()).unwrap();
        assert!(!out.all_decided);
        assert_eq!(out.steps, 1);
    }

    #[test]
    fn monte_carlo_matches_sequential_order_at_any_thread_count() {
        let p = CasConsensus { n: 4 };
        let run_one = |seed: u64| {
            let mut sim = Simulator::new(1000, seed.wrapping_mul(7).wrapping_add(1));
            let mut sched = RandomScheduler::new(seed.wrapping_mul(131).wrapping_add(3));
            let out = sim.run(&p, &[0, 1, 1, 0], &mut sched).unwrap();
            (out.steps, out.decided_values())
        };
        let sequential: Vec<_> = (0..40).map(run_one).collect();
        for threads in [1, 2, 4, 9] {
            let batched = monte_carlo(0..40, threads, run_one);
            assert_eq!(sequential, batched, "threads={threads}");
        }
    }

    #[test]
    fn monte_carlo_handles_degenerate_ranges() {
        let empty: Vec<u64> = monte_carlo(5..5, 4, |s| s);
        assert!(empty.is_empty());
        let one = monte_carlo(7..8, 4, |s| s * 2);
        assert_eq!(one, vec![14]);
        let offset = monte_carlo(100..108, 3, |s| s);
        assert_eq!(offset, (100..108).collect::<Vec<_>>());
    }

    #[test]
    fn monte_carlo_sequential_fallback_is_exact() {
        // Ranges too short to amortize a spawn (fewer than
        // MIN_SEEDS_PER_WORKER seeds per would-be worker) run on the
        // caller's thread; output must be indistinguishable.
        let short = MIN_SEEDS_PER_WORKER - 1;
        let seq: Vec<u64> = (0..short as u64).map(|s| s * 3).collect();
        assert_eq!(monte_carlo(0..short as u64, 8, |s| s * 3), seq);
        // Just past one batch, with enough threads requested that each
        // worker would starve: still exact.
        let n = (MIN_SEEDS_PER_WORKER + 3) as u64;
        let seq: Vec<u64> = (0..n).map(|s| s + 7).collect();
        assert_eq!(monte_carlo(0..n, 64, |s| s + 7), seq);
    }

    #[test]
    fn monte_carlo_summary_histogram_is_thread_invariant_and_adds_up() {
        let p = CasConsensus { n: 4 };
        let inputs = [0, 1, 1, 0];
        let base = monte_carlo_summary(&p, &inputs, 0..60, 1, 1000);
        assert_eq!(base.trials, 60);
        assert_eq!(base.decided_runs, 60, "CAS consensus is wait-free");
        assert_eq!(base.consistent_runs, 60);
        assert_eq!(base.undecided_processes, 0);
        // Every process decides once per trial, on some input value.
        assert_eq!(base.decisions_total(), 4 * 60);
        assert!(base.decision_counts.iter().all(|&(d, _)| inputs.contains(&d)));
        assert!(base.decision_counts.windows(2).all(|w| w[0].0 < w[1].0), "ascending");
        // The schedule picks winners, so over 60 random schedules both
        // values should win at least once.
        assert_eq!(base.decision_counts.len(), 2);
        assert!(base.mean_steps() > 0.0);
        for threads in [2, 4, 9] {
            assert_eq!(base, monte_carlo_summary(&p, &inputs, 0..60, threads, 1000));
        }
    }

    #[test]
    fn mc_summary_absorb_matches_one_shot() {
        let p = CasConsensus { n: 3 };
        let inputs = [0, 1, 0];
        let whole = monte_carlo_summary(&p, &inputs, 0..40, 2, 500);
        let mut sliced = monte_carlo_summary(&p, &inputs, 0..13, 2, 500);
        sliced.absorb(&monte_carlo_summary(&p, &inputs, 13..29, 3, 500));
        sliced.absorb(&monte_carlo_summary(&p, &inputs, 29..40, 1, 500));
        assert_eq!(whole, sliced, "seed-range slicing must be invisible");
    }

    #[test]
    fn mc_summary_counts_undecided_processes() {
        let p = CasConsensus { n: 2 };
        // A one-step budget: at most one process completes its CAS and
        // nobody reaches a decide step.
        let s = monte_carlo_summary(&p, &[0, 1], 0..5, 1, 1);
        assert_eq!(s.trials, 5);
        assert_eq!(s.decided_runs, 0);
        assert_eq!(s.undecided_processes, 10);
        assert_eq!(s.max_steps, 1);
    }

    #[test]
    fn solo_run_decides_alone() {
        let p = CasConsensus { n: 3 };
        let mut sim = Simulator::new(1000, 0);
        let config = Configuration::initial(&p, &[1, 0, 0]);
        let out = sim.run_solo(&p, config, ProcessId(0)).unwrap();
        assert!(out.all_decided);
        assert_eq!(out.config.decisions(), vec![(ProcessId(0), 1)]);
        // Others untouched.
        assert!(out.config.is_active(ProcessId(1)));
    }
}
