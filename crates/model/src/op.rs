//! Operations applicable to shared objects, and their responses.

use core::fmt;

use crate::value::Value;

/// A primitive operation on a shared object.
///
/// Which operations an object accepts is determined by its
/// [`ObjectKind`](crate::ObjectKind); applying an unsupported operation is
/// a [`ModelError::UnsupportedOperation`](crate::ModelError) at
/// application time.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Operation {
    /// READ: respond with the current value; trivial (never changes the
    /// value).
    Read,
    /// WRITE(x): set the value to `x`; respond with an acknowledgement.
    Write(Value),
    /// SWAP(x): set the value to `x`; respond with the previous value.
    Swap(Value),
    /// TEST&SET: respond with the previous value and set the value to
    /// `true`.
    TestAndSet,
    /// RESET: set the value back to the object's reset point (0 for
    /// counters, `false` for test&set flags); respond with an
    /// acknowledgement.
    Reset,
    /// FETCH&ADD(a): add `a` to the integer value; respond with the
    /// previous value.
    FetchAdd(i64),
    /// COMPARE&SWAP(e, n): if the value equals `expected`, set it to
    /// `new`; in either case respond with the previous value.
    CompareSwap {
        /// The value the register must currently hold for the swap to
        /// take effect.
        expected: Value,
        /// The replacement value installed on success.
        new: Value,
    },
    /// INC: increment a counter; respond with an acknowledgement.
    Inc,
    /// DEC: decrement a counter; respond with an acknowledgement.
    Dec,
}

impl Operation {
    /// A short human-readable mnemonic for traces.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Operation::Read => "read",
            Operation::Write(_) => "write",
            Operation::Swap(_) => "swap",
            Operation::TestAndSet => "test&set",
            Operation::Reset => "reset",
            Operation::FetchAdd(_) => "fetch&add",
            Operation::CompareSwap { .. } => "compare&swap",
            Operation::Inc => "inc",
            Operation::Dec => "dec",
        }
    }
}

impl fmt::Debug for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Read => write!(f, "read"),
            Operation::Write(v) => write!(f, "write({v:?})"),
            Operation::Swap(v) => write!(f, "swap({v:?})"),
            Operation::TestAndSet => write!(f, "test&set"),
            Operation::Reset => write!(f, "reset"),
            Operation::FetchAdd(a) => write!(f, "fetch&add({a})"),
            Operation::CompareSwap { expected, new } => {
                write!(f, "compare&swap({expected:?}→{new:?})")
            }
            Operation::Inc => write!(f, "inc"),
            Operation::Dec => write!(f, "dec"),
        }
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The response returned by applying an [`Operation`] to an object.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Response {
    /// A fixed acknowledgement carrying no information (WRITE, INC, DEC,
    /// RESET).
    Ack,
    /// A value-bearing response (READ, SWAP, TEST&SET, FETCH&ADD,
    /// COMPARE&SWAP all return the previous value).
    Value(Value),
}

impl Response {
    /// Returns the carried value, if any.
    pub fn value(&self) -> Option<Value> {
        match self {
            Response::Ack => None,
            Response::Value(v) => Some(*v),
        }
    }

    /// Returns the carried integer, if the response carries
    /// [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        self.value().and_then(|v| v.as_int())
    }
}

impl fmt::Debug for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Ack => write!(f, "ack"),
            Response::Value(v) => write!(f, "{v:?}"),
        }
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_cover_all_operations() {
        let ops = [
            Operation::Read,
            Operation::Write(Value::Int(1)),
            Operation::Swap(Value::Int(1)),
            Operation::TestAndSet,
            Operation::Reset,
            Operation::FetchAdd(2),
            Operation::CompareSwap { expected: Value::Bottom, new: Value::Int(1) },
            Operation::Inc,
            Operation::Dec,
        ];
        for op in ops {
            assert!(!op.mnemonic().is_empty());
            assert!(!format!("{op:?}").is_empty());
        }
    }

    #[test]
    fn response_accessors() {
        assert_eq!(Response::Ack.value(), None);
        assert_eq!(Response::Value(Value::Int(4)).as_int(), Some(4));
        assert_eq!(Response::Value(Value::Bool(true)).as_int(), None);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Operation::Write(Value::Int(3))), "write(3)");
        assert_eq!(
            format!(
                "{:?}",
                Operation::CompareSwap { expected: Value::Bottom, new: Value::Int(1) }
            ),
            "compare&swap(⊥→1)"
        );
        assert_eq!(format!("{:?}", Response::Ack), "ack");
    }
}
