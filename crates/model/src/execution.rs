//! Executions: replayable interleavings of process steps.
//!
//! "An execution is an interleaving of the sequence of steps performed
//! by each process." An [`Execution`] here is a *schedule with coin
//! outcomes*: the pair (process id, coin) per step fully determines the
//! run because protocols are deterministic given their coins. Every
//! witness produced by the lower-bound machinery is an `Execution`, so
//! inconsistency claims can always be re-verified by replay.

use core::fmt;
use core::hash::Hash;

use crate::config::Configuration;
use crate::error::ModelError;
use crate::op::{Operation, Response};
use crate::process::{ObjectId, ProcessId};
use crate::protocol::{Decision, Protocol};

/// One scheduled step: which process moves, and which coin outcome its
/// transition consumes (ignored for deterministic transitions).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Step {
    /// The process allocated this step.
    pub pid: ProcessId,
    /// The coin outcome consumed by the transition, if any.
    pub coin: u32,
}

impl Step {
    /// A step of `pid` with coin outcome 0 (the deterministic case).
    pub fn of(pid: ProcessId) -> Self {
        Step { pid, coin: 0 }
    }

    /// A step of `pid` with an explicit coin outcome.
    pub fn with_coin(pid: ProcessId, coin: u32) -> Self {
        Step { pid, coin }
    }
}

impl fmt::Debug for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.coin == 0 {
            write!(f, "{:?}", self.pid)
        } else {
            write!(f, "{:?}#{}", self.pid, self.coin)
        }
    }
}

/// What actually happened when a step was applied: the operation
/// performed (with its response) or the decision taken.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepRecord {
    /// The process that moved.
    pub pid: ProcessId,
    /// The shared-memory operation performed, if the step was an
    /// invocation: `(object, operation, response)`.
    pub op: Option<(ObjectId, Operation, Response)>,
    /// The decision taken, if the step was a decide.
    pub decided: Option<Decision>,
    /// The coin outcome consumed.
    pub coin: u32,
}

impl StepRecord {
    /// Convert back into the schedule [`Step`] that produced this
    /// record.
    pub fn to_step(&self) -> Step {
        Step { pid: self.pid, coin: self.coin }
    }
}

/// A finite execution: a sequence of scheduled steps.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Execution {
    steps: Vec<Step>,
}

impl Execution {
    /// The empty execution.
    pub fn new() -> Self {
        Execution { steps: Vec::new() }
    }

    /// An execution from a step sequence.
    pub fn from_steps(steps: Vec<Step>) -> Self {
        Execution { steps }
    }

    /// A solo execution: `k` consecutive steps of `pid` with the given
    /// coin outcomes.
    pub fn solo(pid: ProcessId, coins: &[u32]) -> Self {
        Execution { steps: coins.iter().map(|&c| Step::with_coin(pid, c)).collect() }
    }

    /// The number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the execution contains no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The underlying steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Append one step.
    pub fn push(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// Append all steps of `other`.
    pub fn append(&mut self, other: &Execution) {
        self.steps.extend_from_slice(&other.steps);
    }

    /// The concatenation `self · other`.
    pub fn then(&self, other: &Execution) -> Execution {
        let mut steps = self.steps.clone();
        steps.extend_from_slice(&other.steps);
        Execution { steps }
    }

    /// The set of distinct processes taking steps, in first-appearance
    /// order.
    pub fn participants(&self) -> Vec<ProcessId> {
        let mut seen = Vec::new();
        for s in &self.steps {
            if !seen.contains(&s.pid) {
                seen.push(s.pid);
            }
        }
        seen
    }

    /// Apply this execution to `config`, mutating it, and return the
    /// records of what happened.
    ///
    /// # Errors
    ///
    /// Fails (leaving `config` at the failing prefix) if any step is
    /// invalid — e.g. schedules an inactive process or supplies an
    /// out-of-domain coin.
    pub fn apply<P, S>(
        &self,
        protocol: &P,
        config: &mut Configuration<S>,
    ) -> Result<Vec<StepRecord>, ModelError>
    where
        P: Protocol<State = S>,
        S: Clone + Eq + Hash + fmt::Debug,
    {
        let mut records = Vec::with_capacity(self.steps.len());
        for step in &self.steps {
            records.push(config.step(protocol, step.pid, step.coin)?);
        }
        Ok(records)
    }

    /// Replay this execution from a starting configuration without
    /// mutating it; returns the final configuration and the records.
    ///
    /// # Errors
    ///
    /// See [`Execution::apply`].
    pub fn replay<P, S>(
        &self,
        protocol: &P,
        start: &Configuration<S>,
    ) -> Result<(Configuration<S>, Vec<StepRecord>), ModelError>
    where
        P: Protocol<State = S>,
        S: Clone + Eq + Hash + fmt::Debug,
    {
        let mut config = start.clone();
        let records = self.apply(protocol, &mut config)?;
        Ok((config, records))
    }
}

impl fmt::Debug for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{s:?}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<Step> for Execution {
    fn from_iter<T: IntoIterator<Item = Step>>(iter: T) -> Self {
        Execution { steps: iter.into_iter().collect() }
    }
}

impl Extend<Step> for Execution {
    fn extend<T: IntoIterator<Item = Step>>(&mut self, iter: T) {
        self.steps.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::ObjectKind;
    use crate::protocol::{Action, ObjectSpec};
    use crate::value::Value;

    /// One fetch&add each, decide 1 if the fetched value was 0, else 0.
    #[derive(Debug)]
    struct FetchOnce;

    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
    enum St {
        Start,
        Done(Decision),
    }

    impl Protocol for FetchOnce {
        type State = St;

        fn objects(&self) -> Vec<ObjectSpec> {
            vec![ObjectSpec::new(ObjectKind::FetchAdd, "fa")]
        }

        fn num_processes(&self) -> usize {
            2
        }

        fn initial_state(&self, _pid: ProcessId, _input: Decision) -> St {
            St::Start
        }

        fn action(&self, s: &St) -> Action {
            match s {
                St::Start => {
                    Action::Invoke { object: ObjectId(0), op: Operation::FetchAdd(1) }
                }
                St::Done(d) => Action::Decide(*d),
            }
        }

        fn transition(&self, _s: &St, resp: &Response, _coin: u32) -> St {
            St::Done(if resp.as_int() == Some(0) { 1 } else { 0 })
        }
    }

    #[test]
    fn step_constructors_and_debug() {
        assert_eq!(Step::of(ProcessId(1)), Step { pid: ProcessId(1), coin: 0 });
        assert_eq!(format!("{:?}", Step::of(ProcessId(1))), "P1");
        assert_eq!(format!("{:?}", Step::with_coin(ProcessId(0), 2)), "P0#2");
    }

    #[test]
    fn solo_and_concat() {
        let a = Execution::solo(ProcessId(0), &[0, 1]);
        let b = Execution::solo(ProcessId(1), &[0]);
        let c = a.then(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c.participants(), vec![ProcessId(0), ProcessId(1)]);
        assert_eq!(format!("{c:?}"), "⟨P0 P0#1 P1⟩");
    }

    #[test]
    fn replay_is_pure_and_apply_mutates() {
        let p = FetchOnce;
        let start = Configuration::initial(&p, &[0, 1]);
        let e = Execution::from_steps(vec![
            Step::of(ProcessId(0)),
            Step::of(ProcessId(1)),
            Step::of(ProcessId(0)),
            Step::of(ProcessId(1)),
        ]);
        let (end, records) = e.replay(&p, &start).unwrap();
        // `start` untouched:
        assert!(start.is_active(ProcessId(0)));
        assert_eq!(records.len(), 4);
        // P0 fetched 0 → decides 1; P1 fetched 1 → decides 0.
        assert_eq!(end.decisions(), vec![(ProcessId(0), 1), (ProcessId(1), 0)]);
        assert_eq!(end.values[0], Value::Int(2));
    }

    #[test]
    fn records_round_trip_to_steps() {
        let p = FetchOnce;
        let start = Configuration::initial(&p, &[0, 1]);
        let e = Execution::from_steps(vec![Step::of(ProcessId(1)), Step::of(ProcessId(1))]);
        let (_, records) = e.replay(&p, &start).unwrap();
        let back: Execution = records.iter().map(|r| r.to_step()).collect();
        assert_eq!(back, e);
    }

    #[test]
    fn apply_fails_on_inactive_process_and_preserves_prefix() {
        let p = FetchOnce;
        let mut c = Configuration::initial(&p, &[0, 1]);
        // P0 steps twice (fetch, decide); a third P0 step is invalid.
        let e = Execution::solo(ProcessId(0), &[0, 0, 0]);
        let err = e.apply(&p, &mut c).unwrap_err();
        assert_eq!(err, ModelError::ProcessNotActive(ProcessId(0)));
        // The valid prefix was applied.
        assert_eq!(c.decisions(), vec![(ProcessId(0), 1)]);
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut e = Execution::new();
        assert!(e.is_empty());
        e.push(Step::of(ProcessId(0)));
        e.extend([Step::of(ProcessId(1))]);
        let f: Execution = e.steps().iter().copied().collect();
        assert_eq!(f.len(), 2);
    }
}
